//! Property: archiving is invisible to readers. A log whose prefix has
//! been sealed into object-store segments and dropped from the live tiers
//! must read and scan byte-identically to a log that never archived —
//! across 1–4 delay-scheduler shards, mixed colors, and policy rounds
//! fired at arbitrary points in the append stream.

use std::sync::Arc;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::ctrl::ControlPlane;
use flexlog::pm::{ClockMode, DeviceClock};
use flexlog::simnet::NetConfig;
use flexlog::storage::TierConfig;
use flexlog::tier::SimObjectStore;
use proptest::prelude::*;

const COLORS: [ColorId; 2] = [ColorId(1), ColorId(2)];

fn spec(scheduler_shards: usize, seed: u64) -> ClusterSpec {
    ClusterSpec {
        net: NetConfig {
            seed: Some(seed),
            scheduler_shards,
            ..NetConfig::default()
        },
        ..ClusterSpec::single_shard()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 16,
    })]

    #[test]
    fn archived_log_reads_like_an_unarchived_one(
        scheduler_shards in 1usize..=4,
        seed in 0u64..1024,
        ops in proptest::collection::vec((0usize..2, any::<u8>()), 8..40),
        archive_every in 4usize..10,
    ) {
        let store = Arc::new(SimObjectStore::new(DeviceClock::new(ClockMode::Off)));
        let mut tiered_spec = spec(scheduler_shards, seed);
        let mut tier = TierConfig::new(store);
        tier.segment_records = 3; // several segments per round
        tiered_spec.storage.tier = Some(tier);

        let plain = FlexLogCluster::start(spec(scheduler_shards, seed));
        let tiered = FlexLogCluster::start(tiered_spec);
        for color in COLORS {
            plain.add_color(color).unwrap();
            tiered.add_color(color).unwrap();
        }
        let mut hp = plain.handle();
        let mut ht = tiered.handle();
        let mut plane = ControlPlane::new(&tiered);

        // Same append stream into both clusters; the tiered one also runs
        // policy archive rounds (all but the newest record) mid-stream.
        let mut sns_p: [Vec<_>; 2] = [Vec::new(), Vec::new()];
        let mut sns_t: [Vec<_>; 2] = [Vec::new(), Vec::new()];
        let mut bytes: [Vec<Vec<u8>>; 2] = [Vec::new(), Vec::new()];
        for (i, &(ci, byte)) in ops.iter().enumerate() {
            let payload = vec![byte; 24];
            sns_p[ci].push(hp.append(&payload, COLORS[ci]).unwrap());
            sns_t[ci].push(ht.append(&payload, COLORS[ci]).unwrap());
            bytes[ci].push(payload);
            if (i + 1) % archive_every == 0 {
                plane.archive_color(COLORS[ci], 1, u64::MAX, false).unwrap();
            }
        }

        for (ci, &color) in COLORS.iter().enumerate() {
            // Point reads: byte-equal on both clusters, archived or not.
            for ((sp, st), want) in sns_p[ci].iter().zip(&sns_t[ci]).zip(&bytes[ci]) {
                prop_assert_eq!(hp.read(*sp, color).unwrap().as_deref(), Some(&want[..]));
                prop_assert_eq!(ht.read(*st, color).unwrap().as_deref(), Some(&want[..]));
            }
            // Scans: same length, same SNs, same bytes.
            let rp = hp.subscribe(color).unwrap();
            let rt = ht.subscribe(color).unwrap();
            prop_assert_eq!(rp.len(), bytes[ci].len(), "plain scan length");
            prop_assert_eq!(rt.len(), bytes[ci].len(), "tiered scan length");
            for ((a, b), want) in rp.iter().zip(&rt).zip(&bytes[ci]) {
                prop_assert_eq!(a.sn, b.sn, "scan SN order diverged");
                prop_assert_eq!(a.payload.as_slice(), &want[..]);
                prop_assert_eq!(b.payload.as_slice(), &want[..]);
            }
        }
        plain.shutdown();
        tiered.shutdown();
    }
}
