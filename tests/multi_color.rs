//! Integration tests of the multi-color append protocol (§6.4) and its
//! atomicity proof obligations (§7): all-or-nothing across colors, under
//! client crashes and replica power failures.

use std::time::Duration;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::replication::{ClientConfig, DataMsg, FlexLogClient};
use flexlog::simnet::NodeId;
use flexlog::types::{FunctionId, ShardId};

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

fn cluster() -> FlexLogCluster {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    c.add_color(GREEN).unwrap();
    c
}

#[test]
fn multi_append_is_atomic_and_ordered_within_colors() {
    let c = cluster();
    let mut h = c.handle();
    for i in 0..5u32 {
        h.multi_append(&[
            (RED, vec![format!("r{i}").into_bytes()]),
            (GREEN, vec![format!("g{i}").into_bytes(), format!("g{i}b").into_bytes()]),
        ])
        .unwrap();
    }
    let red = h.subscribe(RED).unwrap();
    let green = h.subscribe(GREEN).unwrap();
    assert_eq!(red.len(), 5);
    assert_eq!(green.len(), 10);
    for w in red.windows(2) {
        assert!(w[0].sn < w[1].sn);
    }
    c.shutdown();
}

#[test]
fn client_crash_before_end_leaves_no_trace() {
    // §7: "Since the replicas never receive the special end message, none
    // of the records are appended to any color."
    let c = cluster();
    {
        let ep = c
            .network()
            .register(NodeId::named(NodeId::CLASS_CLIENT, 777));
        let mut dying = FlexLogClient::new(
            ep,
            c.data().topology.clone(),
            ClientConfig {
                fid: FunctionId(777),
                ..Default::default()
            },
        );
        // Phase 1 only: stage into the special color, then "crash".
        dying
            .append(ColorId::MASTER, &[b"staged-but-never-ended".to_vec().into()])
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut h = c.handle();
    assert_eq!(h.subscribe(RED).unwrap().len(), 0);
    assert_eq!(h.subscribe(GREEN).unwrap().len(), 0);
    c.shutdown();
}

#[test]
fn multi_append_survives_replica_power_cycle() {
    let c = cluster();
    let mut h = c.handle();
    h.multi_append(&[
        (RED, vec![b"red-1".to_vec()]),
        (GREEN, vec![b"green-1".to_vec()]),
    ])
    .unwrap();

    // Power-cycle a replica; both colors' records must survive and a new
    // multi-append must still work.
    let victim = c.data().shard_replicas(ShardId(0))[0];
    c.data().crash_replica(c.network(), victim);
    c.data().restart_replica(c.network(), c.directory(), victim);

    h.multi_append(&[
        (RED, vec![b"red-2".to_vec()]),
        (GREEN, vec![b"green-2".to_vec()]),
    ])
    .unwrap();

    let red = h.subscribe(RED).unwrap();
    let green = h.subscribe(GREEN).unwrap();
    assert_eq!(red.len(), 2);
    assert_eq!(green.len(), 2);
    c.shutdown();
}

#[test]
fn duplicate_end_markers_do_not_double_commit() {
    // The replicas replay staged sets idempotently (token dedup), so a
    // retransmitted `end` must not duplicate records.
    let c = cluster();
    let mut h = c.handle();
    h.multi_append(&[(RED, vec![b"only-once".to_vec()])]).unwrap();

    // Hand-send extra MultiEnd markers for the same fid.
    let broker = c.data().shard_replicas(ShardId(0));
    let ep = c
        .network()
        .register(NodeId::named(NodeId::CLASS_CLIENT, 888));
    for req in 1..=3u64 {
        for &r in &broker {
            ep.send(
                r,
                DataMsg::MultiEnd {
                    fid: h.fid(),
                    req: (888 << 32) | req,
                    reply_to: ep.id(),
                }
                .into(),
            )
            .unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        h.subscribe(RED).unwrap().len(),
        1,
        "replayed end markers must not duplicate the set"
    );
    c.shutdown();
}

#[test]
fn interleaved_multi_appends_from_two_functions() {
    let c = cluster();
    let mut f1 = c.handle();
    let mut f2 = c.handle();
    let t1 = std::thread::spawn(move || {
        for i in 0..4u32 {
            f1.multi_append(&[
                (RED, vec![format!("f1-r{i}").into_bytes()]),
                (GREEN, vec![format!("f1-g{i}").into_bytes()]),
            ])
            .unwrap();
        }
    });
    let t2 = std::thread::spawn(move || {
        for i in 0..4u32 {
            f2.multi_append(&[
                (RED, vec![format!("f2-r{i}").into_bytes()]),
                (GREEN, vec![format!("f2-g{i}").into_bytes()]),
            ])
            .unwrap();
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();

    let mut h = c.handle();
    let red = h.subscribe(RED).unwrap();
    let green = h.subscribe(GREEN).unwrap();
    assert_eq!(red.len(), 8, "every set committed exactly once");
    assert_eq!(green.len(), 8);
    c.shutdown();
}

#[test]
fn multi_append_trace_shows_one_sn_per_color() {
    // Each staged set of an atomic multi-append is replayed as exactly one
    // sub-append into its target color: the flight recorder must show one
    // `SeqAssign` color per set, covering both target colors and nothing
    // else (one SN per color, Algorithm 2).
    use flexlog::core::{Stage, Token};
    use std::collections::BTreeSet;

    let c = cluster();
    let mut h = c.handle();
    h.multi_append(&[
        (RED, vec![b"r".to_vec()]),
        (GREEN, vec![b"g".to_vec()]),
    ])
    .unwrap();

    // Phase 1 staged the two sets under the client's tokens 1 and 2; the
    // replica-driven sub-appends derive their tokens by flipping the top
    // bit (deterministic across replicas, disjoint from client tokens).
    let mut seen_colors: BTreeSet<u64> = BTreeSet::new();
    for i in 1..=2u32 {
        let sub = Token(Token::new(h.fid(), i).0 ^ (1 << 63));
        let assigns: Vec<_> = c
            .obs()
            .tracer()
            .events_for(sub)
            .into_iter()
            .filter(|e| e.stage == Stage::SeqAssign)
            .collect();
        assert!(!assigns.is_empty(), "sub-append of set {i} was never ordered");
        let colors: BTreeSet<u64> = assigns.iter().map(|e| e.detail).collect();
        assert_eq!(
            colors.len(),
            1,
            "set {i} must get exactly one SN color, got {colors:?}"
        );
        seen_colors.extend(colors);
    }
    let expected: BTreeSet<u64> = [RED.0 as u64, GREEN.0 as u64].into_iter().collect();
    assert_eq!(seen_colors, expected, "one SN per target color");
    c.shutdown();
}
