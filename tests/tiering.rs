//! End-to-end tests of the tiered storage stack (§5.2) through the full
//! cluster: records flow DRAM cache → PM → SSD as the log grows, stay
//! readable from every tier, and survive power failures wherever they live.

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::pm::ClockMode;
use flexlog::storage::StorageConfig;
use flexlog::types::ShardId;

const RED: ColorId = ColorId(1);

fn tiny_storage_cluster() -> FlexLogCluster {
    // A storage config small enough that a few hundred 1 KiB records spill.
    let spec = ClusterSpec {
        storage: StorageConfig {
            pm_capacity: 1 << 20,
            cache_capacity: 8 << 10,
            pm_watermark: 128 << 10,
            spill_batch: 16,
            clock: ClockMode::Off,
            ..Default::default()
        },
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c
}

#[test]
fn log_spills_to_ssd_and_stays_readable() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..300u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }

    // The replicas must have pushed the oldest prefix to SSD.
    let mut any_spilled = false;
    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        if storage.ssd_resident(RED) > 0 {
            any_spilled = true;
        }
        assert_eq!(storage.record_count(RED), 300);
    }
    assert!(any_spilled, "watermark crossing must spill to SSD");

    // Every record — PM- or SSD-resident — still readable via the API.
    for (i, sn) in sns.iter().enumerate() {
        let v = h.read(*sn, RED).unwrap().unwrap();
        assert_eq!(v, vec![i as u8; 1024], "record {i}");
    }
    c.shutdown();
}

#[test]
fn spilled_records_survive_power_failure() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..200u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }

    for victim in c.data().shard_replicas(ShardId(0)) {
        c.data().crash_replica(c.network(), victim);
        c.data().restart_replica(c.network(), c.directory(), victim);
    }

    for (i, sn) in sns.iter().enumerate() {
        let v = h.read(*sn, RED).unwrap().unwrap();
        assert_eq!(v, vec![i as u8; 1024], "record {i} lost across tiers");
    }
    c.shutdown();
}

#[test]
fn trim_reclaims_across_tiers() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..200u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }
    // Trim 80% of the log — includes the SSD-resident prefix.
    let cut = sns[159];
    h.trim(cut, RED).unwrap();

    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        assert_eq!(storage.record_count(RED), 40);
    }
    assert_eq!(h.read(sns[0], RED).unwrap(), None);
    assert_eq!(h.read(sns[100], RED).unwrap(), None);
    assert!(h.read(sns[199], RED).unwrap().is_some());
    c.shutdown();
}

#[test]
fn cache_serves_hot_records() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let sn = h.append(&vec![7u8; 512], RED).unwrap();

    // Hammer one record; at least one replica must serve from DRAM.
    for _ in 0..30 {
        h.read(sn, RED).unwrap().unwrap();
    }
    let mut cache_hits = 0u64;
    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        cache_hits += storage
            .stats
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed);
    }
    assert!(cache_hits > 0, "hot reads must hit the DRAM cache");
    c.shutdown();
}
