//! End-to-end tests of the tiered storage stack (§5.2) through the full
//! cluster: records flow DRAM cache → PM → SSD as the log grows, stay
//! readable from every tier, and survive power failures wherever they live.
//! With a cold tier configured, trims archive before dropping and the log
//! replays from genesis out of the object store.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::pm::{ClockMode, DeviceClock};
use flexlog::storage::{StorageConfig, TierConfig};
use flexlog::tier::SimObjectStore;
use flexlog::types::ShardId;

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

fn tiny_storage_cluster() -> FlexLogCluster {
    // A storage config small enough that a few hundred 1 KiB records spill.
    let spec = ClusterSpec {
        storage: StorageConfig {
            pm_capacity: 1 << 20,
            cache_capacity: 8 << 10,
            pm_watermark: 128 << 10,
            spill_batch: 16,
            clock: ClockMode::Off,
            ..Default::default()
        },
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c
}

#[test]
fn log_spills_to_ssd_and_stays_readable() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..300u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }

    // The replicas must have pushed the oldest prefix to SSD.
    let mut any_spilled = false;
    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        if storage.ssd_resident(RED) > 0 {
            any_spilled = true;
        }
        assert_eq!(storage.record_count(RED), 300);
    }
    assert!(any_spilled, "watermark crossing must spill to SSD");

    // Every record — PM- or SSD-resident — still readable via the API.
    for (i, sn) in sns.iter().enumerate() {
        let v = h.read(*sn, RED).unwrap().unwrap();
        assert_eq!(v, vec![i as u8; 1024], "record {i}");
    }
    c.shutdown();
}

#[test]
fn spilled_records_survive_power_failure() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..200u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }

    for victim in c.data().shard_replicas(ShardId(0)) {
        c.data().crash_replica(c.network(), victim);
        c.data().restart_replica(c.network(), c.directory(), victim);
    }

    for (i, sn) in sns.iter().enumerate() {
        let v = h.read(*sn, RED).unwrap().unwrap();
        assert_eq!(v, vec![i as u8; 1024], "record {i} lost across tiers");
    }
    c.shutdown();
}

#[test]
fn trim_reclaims_across_tiers() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..200u32 {
        sns.push(h.append(&vec![i as u8; 1024], RED).unwrap());
    }
    // Trim 80% of the log — includes the SSD-resident prefix.
    let cut = sns[159];
    h.trim(cut, RED).unwrap();

    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        assert_eq!(storage.record_count(RED), 40);
    }
    assert_eq!(h.read(sns[0], RED).unwrap(), None);
    assert_eq!(h.read(sns[100], RED).unwrap(), None);
    assert!(h.read(sns[199], RED).unwrap().is_some());
    c.shutdown();
}

fn tiered_cluster() -> (FlexLogCluster, Arc<SimObjectStore>) {
    let store = Arc::new(SimObjectStore::new(DeviceClock::new(ClockMode::Off)));
    let mut tier = TierConfig::new(store.clone());
    tier.segment_records = 32;
    let mut spec = ClusterSpec::single_shard();
    spec.storage.tier = Some(tier);
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c.add_color(GREEN).unwrap();
    (c, store)
}

/// The PR's acceptance bar: archive and trim the *entire* color, then a
/// replay-from-genesis subscribe must return every record in SN order
/// with the original bytes — served purely by archive read-through.
#[test]
fn replay_from_genesis_after_full_archive_and_trim() {
    let (c, store) = tiered_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..120u32 {
        sns.push(h.append(&i.to_le_bytes(), RED).unwrap());
    }
    h.trim(*sns.last().unwrap(), RED).unwrap();

    // Every replica dropped its local copy; the span is durable in the
    // store (the first replica to run the round uploads, peers adopt the
    // shared manifest — so the counter only sums across the shard).
    let mut archived = 0u64;
    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        assert_eq!(storage.record_count(RED), 0, "trim must drop the span");
        archived += storage.stats.archived_records.load(Ordering::Relaxed);
    }
    assert!(archived >= 120, "whole span must be archived: {archived}");
    assert!(store.stats().puts.load(Ordering::Relaxed) > 0);

    // Hot appends on another color keep flowing afterwards.
    for i in 0..20u32 {
        h.append(&i.to_le_bytes(), GREEN).unwrap();
    }

    let records = h.subscribe(RED).unwrap();
    assert_eq!(records.len(), 120, "replay must see the archived span");
    for ((i, rec), sn) in records.iter().enumerate().zip(&sns) {
        assert_eq!(rec.sn, *sn, "record {i} out of order");
        assert_eq!(rec.payload.as_slice(), (i as u32).to_le_bytes(), "record {i} bytes");
    }
    c.shutdown();
}

/// Archive replay streams through the archive buffer, never the DRAM
/// cache stripes: a cold replay-from-genesis must not move the cache
/// counters at all, and a concurrently hot color keeps its hit rate.
#[test]
fn archive_replay_leaves_the_hot_cache_alone() {
    let (c, _store) = tiered_cluster();
    let mut h = c.handle();
    let mut sns = Vec::new();
    for i in 0..100u32 {
        sns.push(h.append(&[i as u8; 64], RED).unwrap());
    }
    let hot: Vec<_> = (0..8u32)
        .map(|i| h.append(&[i as u8; 64], GREEN).unwrap())
        .collect();
    h.trim(*sns.last().unwrap(), RED).unwrap();

    // Warm the hot color on every replica, then baseline.
    for _ in 0..6 {
        for sn in &hot {
            h.read(*sn, GREEN).unwrap().unwrap();
        }
    }
    let counters = |c: &FlexLogCluster| {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for node in c.data().shard_replicas(ShardId(0)) {
            let s = c.data().storage_of(node).unwrap();
            hits += s.stats.cache_hits.load(Ordering::Relaxed);
            misses += s.stats.cache_misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    };
    let (h0, m0) = counters(&c);

    // Cold replays: five full subscribes over the archived span.
    for _ in 0..5 {
        assert_eq!(h.subscribe(RED).unwrap().len(), 100);
    }
    let (h1, m1) = counters(&c);
    assert_eq!((h1, m1), (h0, m0), "archive replay must bypass the cache");

    // The hot color still serves from DRAM.
    for _ in 0..10 {
        for sn in &hot {
            h.read(*sn, GREEN).unwrap().unwrap();
        }
    }
    let (h2, m2) = counters(&c);
    let (dh, dm) = (h2 - h1, m2 - m1);
    let rate = dh as f64 / (dh + dm).max(1) as f64;
    assert!(rate >= 0.9, "hot hit rate {rate} under concurrent replay");
    c.shutdown();
}

#[test]
fn cache_serves_hot_records() {
    let c = tiny_storage_cluster();
    let mut h = c.handle();
    let sn = h.append(&vec![7u8; 512], RED).unwrap();

    // Hammer one record; at least one replica must serve from DRAM.
    for _ in 0..30 {
        h.read(sn, RED).unwrap().unwrap();
    }
    let mut cache_hits = 0u64;
    for node in c.data().shard_replicas(ShardId(0)) {
        let storage = c.data().storage_of(node).unwrap();
        cache_hits += storage
            .stats
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed);
    }
    assert!(cache_hits > 0, "hot reads must hit the DRAM cache");
    c.shutdown();
}
