//! The flight-recorder test harness: every committed append leaves a
//! complete client → sequencer → replica → storage span chain in the
//! cluster tracer, stage latencies respect the simnet link model, and the
//! *logical* trace (the canonical `(stage, node, detail)` chain) is
//! byte-identical across same-seed runs.

use std::time::Duration;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster, Stage, Token};
use flexlog::simnet::{LinkConfig, NetConfig};

const RED: ColorId = ColorId(1);

/// Serial-append tokens are `Token::new(fid, 1..=n)` by construction; the
/// first handle of a cluster gets fid 1.
fn serial_tokens(fid: u32, n: u32) -> Vec<Token> {
    (1..=n)
        .map(|i| Token::new(flexlog::types::FunctionId(fid), i))
        .collect()
}

#[test]
fn committed_tokens_have_complete_span_chains() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut h = c.handle();
    const N: u32 = 25;
    for i in 0..N {
        h.append(format!("r{i}").as_bytes(), RED).unwrap();
    }
    let fid = h.fid().0;
    for token in serial_tokens(fid, N) {
        let trace = c.trace(token);
        assert!(
            trace.is_complete_append(),
            "token {token:?} missing a stage:\n{}",
            trace.render()
        );
        // The chain's first timestamps follow the data-path order. Every
        // stage is stamped from one shared monotonic epoch, and each hop
        // is causally ordered, so first-occurrence times never invert.
        // StorageCommit is stamped inside the replica's commit call, so in
        // wall time it precedes the replica's own commit record.
        let anchors = [
            Stage::ClientSend,
            Stage::ReplicaStaged,
            Stage::SeqAssign,
            Stage::StorageCommit,
            Stage::ReplicaCommit,
            Stage::ClientAck,
        ];
        for pair in anchors.windows(2) {
            let a = trace.first_ns(pair[0]).unwrap();
            let b = trace.first_ns(pair[1]).unwrap();
            assert!(
                a <= b,
                "token {token:?}: {} at {a}ns after {} at {b}ns\n{}",
                pair[0].name(),
                pair[1].name(),
                trace.render()
            );
        }
        // Replication factor 3: all three replicas staged and committed.
        let staged: std::collections::HashSet<u64> = c
            .obs()
            .tracer()
            .events_for(token)
            .into_iter()
            .filter(|e| e.stage == Stage::ReplicaStaged)
            .map(|e| e.node)
            .collect();
        assert_eq!(staged.len(), 3, "token {token:?} staged on {staged:?}");
    }
    c.shutdown();
}

#[test]
fn stage_latencies_respect_the_link_delay() {
    // A fixed-delay, zero-jitter link: every hop of Algorithm 1 costs at
    // least `DELAY`, so the per-stage decomposition has hard lower bounds.
    const DELAY: Duration = Duration::from_micros(200);
    let spec = ClusterSpec {
        net: NetConfig {
            link: LinkConfig::slow(DELAY),
            seed: Some(7),
            ..NetConfig::default()
        },
        // Keep retransmits out of the run: the round trip is < 1 ms.
        client_retry: Duration::from_millis(500),
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    let mut h = c.handle();
    const N: u32 = 8;
    for i in 0..N {
        h.append(format!("r{i}").as_bytes(), RED).unwrap();
    }
    let delay_ns = DELAY.as_nanos() as u64;
    let fid = h.fid().0;
    for token in serial_tokens(fid, N) {
        let trace = c.trace(token);
        assert!(trace.is_complete_append(), "{}", trace.render());
        // Each network hop of the append path: client → replica (stage),
        // replica → sequencer → replica (order), replica → client (ack).
        let hops = [
            (Stage::ClientSend, Stage::ReplicaStaged),
            (Stage::ReplicaStaged, Stage::ReplicaCommit), // OReq + OResp
            (Stage::ReplicaCommit, Stage::ClientAck),
        ];
        let mins = [delay_ns, 2 * delay_ns, delay_ns];
        for ((from, to), min_ns) in hops.iter().zip(mins) {
            let got = trace
                .first_ns(*to)
                .unwrap()
                .saturating_sub(trace.first_ns(*from).unwrap());
            assert!(
                got >= min_ns,
                "token {token:?}: {}→{} took {got}ns < scheduled {min_ns}ns\n{}",
                from.name(),
                to.name(),
                trace.render()
            );
        }
        // End to end: at least the 4 one-way hops, and the hop spans must
        // telescope to (i.e. sum within) the full client-observed span.
        let total = trace.span_ns(Stage::ClientSend, Stage::ClientAck).unwrap();
        assert!(total >= 4 * delay_ns, "end-to-end {total}ns < 4 hops");
        let summed: u64 = hops
            .iter()
            .map(|(from, to)| {
                trace
                    .first_ns(*to)
                    .unwrap()
                    .saturating_sub(trace.first_ns(*from).unwrap())
            })
            .sum();
        assert!(
            summed <= total,
            "stage decomposition {summed}ns exceeds the full span {total}ns"
        );
        // And the latency histogram saw this append.
        assert!(total < Duration::from_secs(5).as_nanos() as u64);
    }
    let snap = c.obs().snapshot();
    let hist = snap.histogram("client.append_ns").expect("client histogram");
    assert_eq!(hist.count, N as u64);
    assert!(hist.p50 >= 4 * delay_ns, "p50 {}ns below link floor", hist.p50);
    c.shutdown();
}

/// One fixed-seed run: a tree topology, serial and pipelined appends, and
/// the concatenated canonical traces of every token in token order.
fn canonical_run(seed: u64) -> Vec<u8> {
    let spec = ClusterSpec {
        net: NetConfig {
            link: LinkConfig::instant(),
            seed: Some(seed),
            ..NetConfig::default()
        },
        ..ClusterSpec::tree(2, 2)
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c.add_color(ColorId(2)).unwrap();
    let mut h = c.handle();
    for i in 0..10u32 {
        h.append(format!("s{i}").as_bytes(), RED).unwrap();
    }
    let mut tokens = serial_tokens(h.fid().0, 10);
    for i in 0..10u32 {
        let t = h
            .append_pipelined(
                &[flexlog::types::Payload::from(format!("p{i}").into_bytes())],
                ColorId(2),
            )
            .unwrap();
        tokens.push(t);
    }
    h.flush_appends().unwrap();
    tokens.sort_unstable();
    let mut out = Vec::new();
    for token in tokens {
        out.extend_from_slice(&c.trace(token).canonical());
    }
    c.shutdown();
    out
}

/// Like [`canonical_run`], but over delayed, jittered links with all four
/// delay-scheduler shards active — the sharded data plane must not leak
/// physical scheduling (which shard thread fired first, jitter draws, batch
/// boundaries) into the logical trace.
fn canonical_run_sharded(seed: u64) -> Vec<u8> {
    let spec = ClusterSpec {
        net: NetConfig {
            link: LinkConfig {
                delay: Duration::from_micros(100),
                jitter: Duration::from_micros(40),
                serialize: Duration::from_micros(2),
            },
            seed: Some(seed),
            scheduler_shards: 4,
        },
        // Keep retransmits out of the run: hops are sub-millisecond.
        client_retry: Duration::from_millis(500),
        ..ClusterSpec::tree(2, 2)
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c.add_color(ColorId(2)).unwrap();
    let mut h = c.handle();
    for i in 0..8u32 {
        h.append(format!("s{i}").as_bytes(), RED).unwrap();
    }
    let mut tokens = serial_tokens(h.fid().0, 8);
    for i in 0..8u32 {
        let t = h
            .append_pipelined(
                &[flexlog::types::Payload::from(format!("p{i}").into_bytes())],
                ColorId(2),
            )
            .unwrap();
        tokens.push(t);
    }
    h.flush_appends().unwrap();
    tokens.sort_unstable();
    let mut out = Vec::new();
    for token in tokens {
        out.extend_from_slice(&c.trace(token).canonical());
    }
    c.shutdown();
    out
}

#[test]
fn pushed_records_carry_subpush_trace_stages() {
    // A standing push subscription extends every committed append's span
    // chain with a `SubPush` stage on the serving replica — the per-stage
    // decomposition of the push path (satellite of the read-path PR).
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut h = c.handle();
    let mut reader = c.handle();
    let sub = reader.subscribe_push(RED).unwrap();
    const N: u32 = 25;
    for i in 0..N {
        h.append(format!("r{i}").as_bytes(), RED).unwrap();
    }
    let t0 = std::time::Instant::now();
    let mut got = 0usize;
    while got < N as usize && t0.elapsed() < Duration::from_secs(10) {
        got += reader
            .poll_subscription(sub, Duration::from_millis(50))
            .unwrap()
            .len();
    }
    assert_eq!(got, N as usize, "push must deliver the full log");
    let fid = h.fid().0;
    for token in serial_tokens(fid, N) {
        let trace = c.trace(token);
        assert!(trace.is_complete_append(), "{}", trace.render());
        assert!(
            trace.has_stage(Stage::SubPush),
            "token {token:?} was never attributed a push:\n{}",
            trace.render()
        );
        // The push is stamped when the committed record leaves the serving
        // replica, so it can never precede the commit itself.
        let commit = trace.first_ns(Stage::ReplicaCommit).unwrap();
        let push = trace.first_ns(Stage::SubPush).unwrap();
        assert!(
            push >= commit,
            "token {token:?}: pushed at {push}ns before commit at {commit}ns\n{}",
            trace.render()
        );
        // And the push-path histogram saw work.
    }
    let snap = c.obs().snapshot();
    assert!(snap.counter("sub.push_records") >= N as u64);
    c.shutdown();
}

/// Like [`canonical_run`], but with a standing push subscriber attached on
/// each color for the whole run.
fn canonical_run_with_subscribers(seed: u64) -> Vec<u8> {
    let spec = ClusterSpec {
        net: NetConfig {
            link: LinkConfig::instant(),
            seed: Some(seed),
            ..NetConfig::default()
        },
        ..ClusterSpec::tree(2, 2)
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    c.add_color(ColorId(2)).unwrap();
    let mut h = c.handle();
    let mut reader = c.handle();
    let sub_red = reader.subscribe_push(RED).unwrap();
    let sub_blue = reader.subscribe_push(ColorId(2)).unwrap();
    for i in 0..10u32 {
        h.append(format!("s{i}").as_bytes(), RED).unwrap();
    }
    let mut tokens = serial_tokens(h.fid().0, 10);
    for i in 0..10u32 {
        let t = h
            .append_pipelined(
                &[flexlog::types::Payload::from(format!("p{i}").into_bytes())],
                ColorId(2),
            )
            .unwrap();
        tokens.push(t);
    }
    h.flush_appends().unwrap();
    // Drain both streams so the pushes actually flow before the snapshot.
    let t0 = std::time::Instant::now();
    let mut got = 0usize;
    while got < 20 && t0.elapsed() < Duration::from_secs(10) {
        got += reader.poll_subscription(sub_red, Duration::from_millis(20)).unwrap().len();
        got += reader.poll_subscription(sub_blue, Duration::from_millis(20)).unwrap().len();
    }
    assert_eq!(got, 20, "subscribers must observe the whole run");
    tokens.sort_unstable();
    let mut out = Vec::new();
    for token in tokens {
        out.extend_from_slice(&c.trace(token).canonical());
    }
    c.shutdown();
    out
}

#[test]
fn subscribers_leave_no_footprint_in_canonical_traces() {
    // `SubPush` is a non-canonical stage: attaching subscribers must not
    // perturb the logical trace — same-seed runs stay byte-identical with
    // and without them, so the determinism harness keeps working when the
    // push path is live.
    let with_a = canonical_run_with_subscribers(42);
    let with_b = canonical_run_with_subscribers(42);
    assert!(!with_a.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&with_a),
        String::from_utf8_lossy(&with_b),
        "canonical traces differ across same-seed subscribed runs"
    );
    let bare = canonical_run(42);
    assert_eq!(
        String::from_utf8_lossy(&with_a),
        String::from_utf8_lossy(&bare),
        "subscribers leaked into the canonical trace"
    );
}

#[test]
fn same_seed_runs_produce_byte_identical_traces() {
    let a = canonical_run(42);
    let b = canonical_run(42);
    assert!(!a.is_empty());
    if a != b {
        // Byte-compare failed: show the first differing token line.
        let (sa, sb) = (String::from_utf8_lossy(&a), String::from_utf8_lossy(&b));
        for (la, lb) in sa.lines().zip(sb.lines()) {
            assert_eq!(la, lb, "canonical trace line differs across same-seed runs");
        }
        panic!("canonical traces differ in line count");
    }
    // The chain is logical: every token shows all 6 canonical append
    // stages somewhere in its line.
    let text = String::from_utf8(a).unwrap();
    assert_eq!(text.lines().count(), 20);
    for line in text.lines() {
        for stage in ["client_send", "replica_staged", "seq_assign", "replica_commit", "storage_commit", "client_ack"] {
            assert!(line.contains(stage), "{stage} missing from {line}");
        }
    }
}

#[test]
fn same_seed_sharded_scheduler_runs_are_byte_identical() {
    let a = canonical_run_sharded(42);
    let b = canonical_run_sharded(42);
    assert!(!a.is_empty());
    if a != b {
        let (sa, sb) = (String::from_utf8_lossy(&a), String::from_utf8_lossy(&b));
        for (la, lb) in sa.lines().zip(sb.lines()) {
            assert_eq!(
                la, lb,
                "canonical trace line differs across same-seed sharded runs"
            );
        }
        panic!("canonical traces differ in line count");
    }
    // And a different seed must actually reach the jitter RNGs — otherwise
    // this test would pass vacuously with the scheduler dark.
    let c = canonical_run_sharded(43);
    assert!(!c.is_empty());
    let text = String::from_utf8(a).unwrap();
    assert_eq!(text.lines().count(), 16);
}
