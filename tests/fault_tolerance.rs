//! Failure-injection integration tests spanning the whole stack: replica
//! power failures, sequencer fail-overs, partitions — §6.3's recovery
//! machinery exercised end to end.

use std::time::Duration;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::simnet::NetConfig;
use flexlog::types::{Epoch, SeqNum, ShardId};

const RED: ColorId = ColorId(1);

fn resilient_spec() -> ClusterSpec {
    ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        net: NetConfig::instant(),
        ..ClusterSpec::single_shard()
    }
}

#[test]
fn data_survives_replica_power_cycles() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();

    let mut sns = Vec::new();
    for i in 0..10u32 {
        sns.push(h.append(format!("pre-{i}").as_bytes(), RED).unwrap());
    }

    // Power-cycle each replica in turn (not concurrently: appends need all
    // replicas, so we restart one before killing the next).
    for victim in cluster.data().shard_replicas(ShardId(0)) {
        cluster.data().crash_replica(cluster.network(), victim);
        cluster
            .data()
            .restart_replica(cluster.network(), cluster.directory(), victim);
        // Appends resume after the sync phase.
        sns.push(h.append(b"during-cycles", RED).unwrap());
    }

    for (i, sn) in sns.iter().enumerate() {
        assert!(
            h.read(*sn, RED).unwrap().is_some(),
            "record {i} lost after power cycles"
        );
    }
    cluster.shutdown();
}

#[test]
fn appends_during_downtime_complete_after_restart() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    h.append(b"baseline", RED).unwrap();

    let victim = cluster.data().shard_replicas(ShardId(0))[1];
    cluster.data().crash_replica(cluster.network(), victim);

    // This append blocks on the dead replica (write-all). Run it in a
    // thread; it must complete once the replica returns and syncs.
    let blocked = {
        let mut h2 = cluster.handle();
        std::thread::spawn(move || h2.append(b"blocked", RED).unwrap())
    };
    std::thread::sleep(Duration::from_millis(300));
    assert!(!blocked.is_finished(), "append must block while a replica is down");

    cluster
        .data()
        .restart_replica(cluster.network(), cluster.directory(), victim);
    let sn = blocked.join().expect("append completes after recovery");
    assert_eq!(h.read(sn, RED).unwrap().unwrap(), b"blocked");
    cluster.shutdown();
}

#[test]
fn sequencer_failover_preserves_sn_monotonicity() {
    let cluster = FlexLogCluster::start(resilient_spec());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();

    let mut last = SeqNum::ZERO;
    let mut epochs = std::collections::BTreeSet::new();
    for round in 0..3 {
        for i in 0..5 {
            let sn = h.append(format!("r{round}-{i}").as_bytes(), RED).unwrap();
            assert!(sn > last, "SN regressed across fail-over: {sn:?} !> {last:?}");
            last = sn;
            epochs.insert(sn.epoch());
        }
        if round < 2 {
            cluster
                .ordering()
                .crash_leader(cluster.network(), flexlog::ordering::RoleId(0));
        }
    }
    assert!(
        epochs.len() >= 3,
        "each fail-over must bump the epoch: saw {epochs:?}"
    );
    // Everything ever appended is still readable.
    let log = h.subscribe(RED).unwrap();
    assert_eq!(log.len(), 15);
    cluster.shutdown();
}

#[test]
fn reads_keep_working_while_appends_block() {
    // CAP choice (§4): replica failure sacrifices append availability, but
    // local reads on the surviving replicas still serve committed data.
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    let sn = h.append(b"committed", RED).unwrap();

    let victim = cluster.data().shard_replicas(ShardId(0))[2];
    cluster.data().crash_replica(cluster.network(), victim);

    for _ in 0..10 {
        assert_eq!(h.read(sn, RED).unwrap().unwrap(), b"committed");
    }
    let log = h.subscribe(RED).unwrap();
    assert_eq!(log.len(), 1);
    cluster.shutdown();
}

#[test]
fn partitioned_replica_catches_up_after_heal() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    h.append(b"before-partition", RED).unwrap();

    // Partition one replica away from everyone.
    let victim = cluster.data().shard_replicas(ShardId(0))[0];
    cluster.network().isolate(victim);

    // Appends block (they need the partitioned replica). Reads still work.
    let blocked = {
        let mut h2 = cluster.handle();
        std::thread::spawn(move || h2.append(b"during-partition", RED).unwrap())
    };
    std::thread::sleep(Duration::from_millis(200));
    assert!(!blocked.is_finished());

    cluster.network().heal();
    let sn = blocked.join().expect("append completes after heal");
    // The previously partitioned replica eventually holds the record too —
    // check via its storage directly.
    let storage = cluster.data().storage_of(victim).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while storage.get(RED, sn).is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "partitioned replica never received the append"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}

#[test]
fn failover_during_inflight_appends_loses_nothing_acknowledged() {
    // Kill the sequencer while a writer hammers the log; every append the
    // client saw complete must be durable, holes are allowed (§6.3).
    let cluster = FlexLogCluster::start(resilient_spec());
    cluster.add_color(RED).unwrap();

    let writer = {
        let mut h = cluster.handle();
        std::thread::spawn(move || {
            let mut acked = Vec::new();
            for i in 0..40u32 {
                if let Ok(sn) = h.append(format!("x{i}").as_bytes(), RED) {
                    acked.push((sn, format!("x{i}").into_bytes()));
                }
            }
            acked
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    cluster
        .ordering()
        .crash_leader(cluster.network(), flexlog::ordering::RoleId(0));
    let acked = writer.join().expect("writer");
    assert!(!acked.is_empty());

    let mut reader = cluster.handle();
    for (sn, payload) in &acked {
        assert_eq!(
            reader.read(*sn, RED).unwrap().as_deref(),
            Some(payload.as_slice()),
            "acknowledged append at {sn:?} lost in fail-over"
        );
    }
    cluster.shutdown();
}

#[test]
fn epoch_failover_keeps_per_color_isolation() {
    // A fail-over of one leaf must not disturb another leaf's color.
    let mut spec = ClusterSpec::tree(2, 1);
    spec.backups_per_sequencer = 2;
    spec.delta = Duration::from_millis(80);
    let cluster = FlexLogCluster::start(spec);
    let leaves = cluster.leaf_roles();
    let a = ColorId(11);
    let b = ColorId(12);
    cluster.colors().add_color_at(a, leaves[0]).unwrap();
    cluster.colors().add_color_at(b, leaves[1]).unwrap();

    let mut h = cluster.handle();
    h.append(b"a1", a).unwrap();
    h.append(b"b1", b).unwrap();

    cluster.ordering().crash_leader(cluster.network(), leaves[0]);

    let sn_a = h.append(b"a2", a).unwrap();
    let sn_b = h.append(b"b2", b).unwrap();
    assert!(sn_a.epoch() > Epoch(1), "failed leaf must re-elect");
    assert_eq!(sn_b.epoch(), Epoch(1), "other leaf must be unaffected");
    cluster.shutdown();
}
