//! Model-based tests of the §7 correctness properties against a live
//! cluster: arbitrary operation sequences are applied both to FlexLog and
//! to a sequential model of a shared-log object, and the observable results
//! must agree (the sequential specification of a linearizable object under
//! a single client, plus the paper's P1–P3 under concurrency).

use std::collections::BTreeMap;

use proptest::prelude::*;

use flexlog::core::{ClusterSpec, ColorId, FlexLogCluster};
use flexlog::types::SeqNum;

const COLORS: [ColorId; 2] = [ColorId(1), ColorId(2)];

/// A client-visible operation.
#[derive(Clone, Debug)]
enum Op {
    Append { color: u8, payload: Vec<u8> },
    /// Read the record appended by the i-th preceding append (if any).
    ReadBack { color: u8, back: u8 },
    Subscribe { color: u8 },
    /// Trim at the SN of the i-th appended record of the color.
    TrimAt { color: u8, idx: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..2, proptest::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(color, payload)| Op::Append { color, payload }),
        3 => (0u8..2, any::<u8>()).prop_map(|(color, back)| Op::ReadBack { color, back }),
        2 => (0u8..2).prop_map(|color| Op::Subscribe { color }),
        1 => (0u8..2, any::<u8>()).prop_map(|(color, idx)| Op::TrimAt { color, idx }),
    ]
}

/// Sequential model: per color, SN → payload, plus the trim floor.
#[derive(Default)]
struct Model {
    logs: [BTreeMap<SeqNum, Vec<u8>>; 2],
    heads: [Option<SeqNum>; 2],
    appended: [Vec<SeqNum>; 2],
}

impl Model {
    fn append(&mut self, color: usize, sn: SeqNum, payload: Vec<u8>) {
        self.logs[color].insert(sn, payload);
        self.appended[color].push(sn);
    }

    fn read(&self, color: usize, sn: SeqNum) -> Option<&Vec<u8>> {
        if self.heads[color].is_some_and(|h| sn <= h) {
            return None;
        }
        self.logs[color].get(&sn)
    }

    fn visible(&self, color: usize) -> Vec<(SeqNum, &Vec<u8>)> {
        self.logs[color]
            .iter()
            .filter(|(&sn, _)| self.heads[color].is_none_or(|h| sn > h))
            .map(|(&sn, v)| (sn, v))
            .collect()
    }

    fn trim(&mut self, color: usize, sn: SeqNum) {
        let prev = self.heads[color].unwrap_or(SeqNum::ZERO);
        self.heads[color] = Some(sn.max(prev));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 64,
    })]

    /// Single-client sequential specification: every FlexLog response must
    /// equal the model's.
    #[test]
    fn flexlog_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        for c in COLORS {
            cluster.add_color(c).unwrap();
        }
        let mut h = cluster.handle();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Append { color, payload } => {
                    let c = color as usize;
                    let sn = h.append(&payload, COLORS[c]).unwrap();
                    // SNs must strictly increase within a color.
                    if let Some(&last) = model.appended[c].last() {
                        prop_assert!(sn > last, "append SN regressed: {sn:?} after {last:?}");
                    }
                    model.append(c, sn, payload);
                }
                Op::ReadBack { color, back } => {
                    let c = color as usize;
                    if model.appended[c].is_empty() {
                        continue;
                    }
                    let idx = model.appended[c].len().saturating_sub(1 + back as usize % model.appended[c].len());
                    let sn = model.appended[c][idx];
                    let got = h.read(sn, COLORS[c]).unwrap().map(|p| p.to_vec());
                    let want = model.read(c, sn).cloned();
                    prop_assert_eq!(got, want, "read({:?}) diverged", sn);
                }
                Op::Subscribe { color } => {
                    let c = color as usize;
                    let got = h.subscribe(COLORS[c]).unwrap();
                    let want = model.visible(c);
                    prop_assert_eq!(got.len(), want.len(), "subscribe length diverged");
                    for (g, (sn, v)) in got.iter().zip(&want) {
                        prop_assert_eq!(g.sn, *sn);
                        prop_assert_eq!(&g.payload, *v);
                    }
                }
                Op::TrimAt { color, idx } => {
                    let c = color as usize;
                    if model.appended[c].is_empty() {
                        continue;
                    }
                    let sn = model.appended[c][idx as usize % model.appended[c].len()];
                    h.trim(sn, COLORS[c]).unwrap();
                    model.trim(c, sn);
                }
            }
        }
        cluster.shutdown();
    }

    /// P1/P2 (consistency + stability): two subscribes with appends between
    /// them — the earlier snapshot is a prefix of the later one.
    #[test]
    fn subscribe_snapshots_are_prefix_ordered(
        batches in proptest::collection::vec(1usize..4, 1..5)
    ) {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        cluster.add_color(COLORS[0]).unwrap();
        let mut writer = cluster.handle();
        let mut observer = cluster.handle();
        let mut prev: Vec<SeqNum> = Vec::new();
        for (round, n) in batches.into_iter().enumerate() {
            for i in 0..n {
                writer.append(format!("r{round}-{i}").as_bytes(), COLORS[0]).unwrap();
            }
            let snap: Vec<SeqNum> = observer
                .subscribe(COLORS[0])
                .unwrap()
                .iter()
                .map(|r| r.sn)
                .collect();
            prop_assert!(snap.len() >= prev.len(), "snapshot shrank");
            prop_assert_eq!(&snap[..prev.len()], prev.as_slice(), "prefix violated");
            prev = snap;
        }
        cluster.shutdown();
    }
}

/// P3 under concurrency: appends from several threads; once an append
/// returns, every reader sees it (append-visibility in real time).
#[test]
fn concurrent_append_visibility() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(COLORS[0]).unwrap();

    let mut writers = Vec::new();
    for w in 0..3 {
        let mut h = cluster.handle();
        writers.push(std::thread::spawn(move || {
            let mut sns = Vec::new();
            for i in 0..10 {
                let payload = format!("w{w}-{i}").into_bytes();
                let sn = h.append(&payload, COLORS[0]).unwrap();
                sns.push((sn, payload));
            }
            sns
        }));
    }
    let all: Vec<(SeqNum, Vec<u8>)> = writers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();

    // Every completed append is visible to a fresh reader, with the right
    // payload, and SNs are unique.
    let mut reader = cluster.handle();
    let mut seen = std::collections::HashSet::new();
    for (sn, payload) in &all {
        assert!(seen.insert(*sn), "duplicate SN {sn:?}");
        assert_eq!(
            reader.read(*sn, COLORS[0]).unwrap().as_deref(),
            Some(payload.as_slice()),
            "completed append invisible at {sn:?}"
        );
    }
    let log = reader.subscribe(COLORS[0]).unwrap();
    assert_eq!(log.len(), all.len());
    cluster.shutdown();
}

/// The real-time ordering of non-overlapping appends is respected even
/// across clients: if append A completes before append B starts, then
/// sn(A) < sn(B).
#[test]
fn real_time_order_across_clients() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(COLORS[0]).unwrap();
    let mut a = cluster.handle();
    let mut b = cluster.handle();
    for i in 0..10 {
        let sn_a = a.append(format!("a{i}").as_bytes(), COLORS[0]).unwrap();
        let sn_b = b.append(format!("b{i}").as_bytes(), COLORS[0]).unwrap();
        assert!(sn_b > sn_a, "real-time order violated: {sn_b:?} !> {sn_a:?}");
    }
    cluster.shutdown();
}
