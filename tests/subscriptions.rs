//! Integration tests of the push read path: standing subscriptions served
//! by `SubPushBatch` (server push instead of client polling), read-only
//! replicas following the quorum via the §6.3 sync protocol, and the
//! pull-path regressions that must keep holding next to the new machinery
//! (trim semantics, destroyed colors).

use std::time::Duration;

use proptest::prelude::*;

use flexlog::core::{
    ClientError, ClusterSpec, ColorId, CommittedRecord, FlexLog, FlexLogCluster, Subscription,
};
use flexlog::ctrl::ControlPlane;
use flexlog::simnet::NetConfig;
use flexlog::types::SeqNum;

const RED: ColorId = ColorId(1);

/// Polls `sub` until `want` records arrived or `deadline` elapsed.
fn drain(
    h: &mut FlexLog,
    sub: Subscription,
    want: usize,
    deadline: Duration,
) -> Vec<CommittedRecord> {
    let t0 = std::time::Instant::now();
    let mut got = Vec::new();
    while got.len() < want && t0.elapsed() < deadline {
        got.extend(
            h.poll_subscription(sub, Duration::from_millis(50))
                .expect("live subscription"),
        );
    }
    got
}

/// Push and pull must agree exactly: same records, same order, no
/// duplicates, no gaps.
fn assert_matches_pull(h: &mut FlexLog, color: ColorId, pushed: &[CommittedRecord]) {
    let pulled = h.subscribe_from(color, SeqNum::ZERO).expect("pull");
    if pushed.len() != pulled.len() {
        eprintln!("pushed: {:?}", pushed.iter().map(|r| r.sn).collect::<Vec<_>>());
        eprintln!("pulled: {:?}", pulled.iter().map(|r| r.sn).collect::<Vec<_>>());
    }
    assert_eq!(
        pushed.len(),
        pulled.len(),
        "push delivered {} records, pull sees {}",
        pushed.len(),
        pulled.len()
    );
    for (a, b) in pushed.iter().zip(pulled.iter()) {
        assert_eq!(a.sn, b.sn, "push/pull SN order diverged");
        assert_eq!(a.payload.as_ref(), b.payload.as_ref(), "payload mismatch at {:?}", a.sn);
    }
}

#[test]
fn push_subscription_delivers_every_record_in_order() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut writer = c.handle();
    let mut reader = c.handle();

    let sub = reader.subscribe_push(RED).unwrap();
    const N: usize = 60;
    for i in 0..N {
        writer.append(format!("r{i}").as_bytes(), RED).unwrap();
    }
    let pushed = drain(&mut reader, sub, N, Duration::from_secs(10));
    assert_matches_pull(&mut writer, RED, &pushed);

    // The delivery really went over the push path.
    let snap = c.obs().snapshot();
    assert!(
        snap.counter("sub.push_records") >= N as u64,
        "push counters dark: {:?}",
        snap.counter("sub.push_records")
    );
    reader.unsubscribe(sub);
    c.shutdown();
}

#[test]
fn push_subscription_from_midpoint_resumes_exactly() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut writer = c.handle();
    let mut reader = c.handle();

    let mut mid = SeqNum::ZERO;
    for i in 0..20 {
        let sn = writer.append(format!("a{i}").as_bytes(), RED).unwrap();
        if i == 9 {
            mid = sn;
        }
    }
    let sub = reader.subscribe_push_from(RED, mid).unwrap();
    for i in 20..40 {
        writer.append(format!("a{i}").as_bytes(), RED).unwrap();
    }
    let pushed = drain(&mut reader, sub, 30, Duration::from_secs(10));
    let pulled = writer.subscribe_from(RED, mid).unwrap();
    assert_eq!(pushed.len(), pulled.len(), "strictly-above-mid span");
    for (a, b) in pushed.iter().zip(pulled.iter()) {
        assert_eq!(a.sn, b.sn);
        assert!(a.sn > mid, "record at or below the subscription start");
    }
    c.shutdown();
}

#[test]
fn many_subscribers_converge_to_identical_streams() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut writer = c.handle();

    const SUBS: usize = 8;
    const N: usize = 40;
    let mut readers: Vec<(FlexLog, Subscription)> = (0..SUBS)
        .map(|_| {
            let mut h = c.handle();
            let sub = h.subscribe_push(RED).unwrap();
            (h, sub)
        })
        .collect();
    for i in 0..N {
        writer.append(format!("x{i}").as_bytes(), RED).unwrap();
    }
    for (h, sub) in &mut readers {
        let pushed = drain(h, *sub, N, Duration::from_secs(10));
        assert_matches_pull(h, RED, &pushed);
    }
    c.shutdown();
}

#[test]
fn read_replica_serves_reads_and_pushes() {
    let spec = ClusterSpec {
        read_replicas_per_shard: 1,
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    let mut writer = c.handle();
    let mut reader = c.handle();

    let sub = reader.subscribe_push(RED).unwrap();
    const N: usize = 30;
    let mut sns = Vec::new();
    for i in 0..N {
        sns.push(writer.append(format!("rr{i}").as_bytes(), RED).unwrap());
    }
    let pushed = drain(&mut reader, sub, N, Duration::from_secs(10));
    assert_matches_pull(&mut writer, RED, &pushed);

    // Point reads are routed to the read replica first (read-through on
    // misses keeps them correct even just after the append ack).
    let mut point = c.handle();
    for (i, &sn) in sns.iter().enumerate() {
        let got = point.read(sn, RED).unwrap().expect("committed record");
        assert_eq!(got.as_ref(), format!("rr{i}").as_bytes());
    }

    // The read replica actually did the serving: its modelled busy counter
    // and the sync pull both ran.
    let snap = c.obs().snapshot();
    let rreplica_busy: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("node.busy_ns.rreplica."))
        .map(|(_, &v)| v)
        .sum();
    assert!(rreplica_busy > 0, "read replica never billed any work");
    c.shutdown();
}

#[test]
fn read_replica_survives_crash_and_subscribers_reattach() {
    let spec = ClusterSpec {
        read_replicas_per_shard: 1,
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    let mut writer = c.handle();
    let mut reader = c.handle();

    let sub = reader.subscribe_push(RED).unwrap();
    for i in 0..10 {
        writer.append(format!("pre{i}").as_bytes(), RED).unwrap();
    }
    let before = drain(&mut reader, sub, 10, Duration::from_secs(10));
    assert_eq!(before.len(), 10);

    // Kill the read replica mid-stream. The client's silence detector must
    // re-attach the stream to the quorum and deliver the rest exactly once.
    let rr = c.data().read_replicas()[0];
    c.data().crash_read_replica(c.network(), rr);
    for i in 0..10 {
        writer.append(format!("post{i}").as_bytes(), RED).unwrap();
    }
    let after = drain(&mut reader, sub, 10, Duration::from_secs(15));
    let mut all = before;
    all.extend(after);
    assert_matches_pull(&mut writer, RED, &all);

    // And a restarted read replica resumes pulling + serving.
    c.data().restart_read_replica(c.network(), rr);
    for i in 10..15 {
        writer.append(format!("post{i}").as_bytes(), RED).unwrap();
    }
    let more = drain(&mut reader, sub, 5, Duration::from_secs(15));
    all.extend(more);
    assert_matches_pull(&mut writer, RED, &all);
    c.shutdown();
}

#[test]
fn subscribe_from_below_trim_head_returns_exactly_head_to_tail() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut h = c.handle();

    let mut sns = Vec::new();
    for i in 0..30 {
        sns.push(h.append(format!("t{i}").as_bytes(), RED).unwrap());
    }
    let (head, tail) = h.trim(sns[9], RED).unwrap();
    let head = head.expect("records remain after trim");
    let tail = tail.expect("records remain after trim");
    assert_eq!(head, sns[9], "trim head is the durable trim mark");
    assert_eq!(tail, sns[29]);

    // A pull from far below the trim head silently clamps: exactly the
    // surviving (head, tail] span, no error, no phantom records.
    let got = h.subscribe_from(RED, SeqNum::ZERO).unwrap();
    assert_eq!(got.len(), 20);
    assert_eq!(got.first().unwrap().sn, sns[10], "starts just above the trim mark");
    assert_eq!(got.last().unwrap().sn, tail);
    for w in got.windows(2) {
        assert!(w[0].sn < w[1].sn, "pull span out of order");
    }

    // A push subscription from below the trim head starts at the head too.
    let mut reader = c.handle();
    let sub = reader.subscribe_push(RED).unwrap();
    let pushed = drain(&mut reader, sub, 20, Duration::from_secs(10));
    assert_eq!(pushed.len(), 20);
    assert_eq!(pushed.first().unwrap().sn, sns[10]);
    assert_eq!(pushed.last().unwrap().sn, tail);
    c.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 32,
    })]

    /// The delivery-equivalence property of the push path: for every
    /// subscriber — no matter when it attached or how the delay scheduler
    /// is sharded — the concatenation of its pushed batches after
    /// quiescence equals one `subscribe_from(color, ZERO)` pull: same
    /// records, same order, no duplicates, no gaps.
    #[test]
    fn pushed_batches_concatenate_to_the_pull_snapshot(
        scheduler_shards in 1usize..=4,
        seed in 0u64..1024,
        batches in proptest::collection::vec((0usize..2, 1usize..6), 2..8),
        subscribers in 1usize..4,
    ) {
        let colors = [ColorId(1), ColorId(2)];
        let spec = ClusterSpec {
            net: NetConfig {
                seed: Some(seed),
                scheduler_shards,
                ..NetConfig::default()
            },
            ..ClusterSpec::single_shard()
        };
        let c = FlexLogCluster::start(spec);
        for color in colors {
            c.add_color(color).unwrap();
        }
        let mut writer = c.handle();

        // Subscribers attach staggered through the run (always from ZERO):
        // early ones ride the live pushes, late ones start with a backlog.
        let mut readers: Vec<(FlexLog, Subscription, ColorId)> = Vec::new();
        let mut attach_at: Vec<usize> =
            (0..subscribers).map(|i| i * batches.len() / subscribers).collect();
        attach_at.sort_unstable();
        let mut counts = [0usize; 2];
        for (bi, &(ci, n)) in batches.iter().enumerate() {
            while attach_at.first() == Some(&bi) {
                attach_at.remove(0);
                let color = colors[readers.len() % 2];
                let mut h = c.handle();
                let sub = h.subscribe_push(color).unwrap();
                readers.push((h, sub, color));
            }
            for i in 0..n {
                writer.append(format!("b{bi}-{i}").as_bytes(), colors[ci]).unwrap();
            }
            counts[ci] += n;
        }
        while !attach_at.is_empty() {
            attach_at.remove(0);
            let color = colors[readers.len() % 2];
            let mut h = c.handle();
            let sub = h.subscribe_push(color).unwrap();
            readers.push((h, sub, color));
        }

        for (h, sub, color) in &mut readers {
            let want = counts[(color.0 - 1) as usize];
            let pushed = drain(h, *sub, want, Duration::from_secs(15));
            let pulled = h.subscribe_from(*color, SeqNum::ZERO).unwrap();
            prop_assert_eq!(
                pushed.len(), pulled.len(),
                "subscriber on {:?}: push delivered {} records, pull sees {}",
                color, pushed.len(), pulled.len()
            );
            for (a, b) in pushed.iter().zip(pulled.iter()) {
                prop_assert_eq!(a.sn, b.sn, "order/dup/gap divergence on {:?}", color);
                prop_assert_eq!(
                    a.payload.as_ref(), b.payload.as_ref(),
                    "payload mismatch at {:?}", a.sn
                );
            }
        }
        c.shutdown();
    }
}

#[test]
fn dropped_color_terminates_subscriptions_with_a_terminal_error() {
    let c = FlexLogCluster::start(ClusterSpec::single_shard());
    c.add_color(RED).unwrap();
    let mut writer = c.handle();
    let mut reader = c.handle();

    let sub = reader.subscribe_push(RED).unwrap();
    for i in 0..5 {
        writer.append(format!("d{i}").as_bytes(), RED).unwrap();
    }
    let pushed = drain(&mut reader, sub, 5, Duration::from_secs(10));
    assert_eq!(pushed.len(), 5);

    // Destroy the color: every replica fences it and redirects its
    // subscribers with the terminal `Dropped` reason.
    let mut plane = ControlPlane::new(&c);
    plane.destroy_color(RED).unwrap();

    let t0 = std::time::Instant::now();
    let err = loop {
        match reader.poll_subscription(sub, Duration::from_millis(50)) {
            Err(e) => break e,
            Ok(_) if t0.elapsed() > Duration::from_secs(10) => {
                panic!("subscription never observed the drop")
            }
            Ok(_) => {}
        }
    };
    assert_eq!(err, ClientError::UnknownColor(RED), "terminal reason");
    // The error is sticky: polling again keeps reporting it rather than
    // pretending the stream recovered.
    assert_eq!(
        reader.poll_subscription(sub, Duration::from_millis(10)),
        Err(ClientError::UnknownColor(RED))
    );
    c.shutdown();
}
