#!/usr/bin/env bash
# CI gate: release build, full test suite, two bounded nemesis smoke runs
# (fixed seed, ~5 s of injected faults under load — once on the instant
# network, once over delayed links with 4 delay-scheduler shards), bench
# smokes (datapath + elasticity, --quick, JSON shape + scaling-ratio
# checks), one migration-crash and one controller-crash nemesis scenario,
# and a zero-warning clippy pass over the whole workspace.
#
# Replay a failing smoke run with: FLEXLOG_CHAOS_SEED=<seed> scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> nemesis smoke (bounded chaos run, fixed seed)"
cargo run --release -p flexlog-chaos --example nemesis_smoke

echo "==> nemesis smoke over delayed links (4 delay-scheduler shards)"
FLEXLOG_NEMESIS_NET=datacenter cargo run --release -p flexlog-chaos --example nemesis_smoke

echo "==> datapath bench smoke (--quick, JSON shape check)"
cargo run --release -p flexlog-bench --bin datapath -- --quick --out /tmp/flexlog_datapath_smoke.json
python3 - <<'EOF'
import json
d = json.load(open("/tmp/flexlog_datapath_smoke.json"))
assert d["bench"] == "datapath" and d["quick"] is True
assert {"shards_1", "shards_2", "shards_4"} <= set(d["pre_pr_baseline"])
assert len(d["results"]) == 6, f"expected 6 rows, got {len(d['results'])}"
for r in d["results"]:
    assert r["records"] > 0 and r["records_per_s"] > 0, r
    assert {"p50_us", "p99_us", "cache_hit_rate", "bytes_appended", "bytes_read"} <= set(r), r
    # Modelled capacity metric (virtual-clock substitution, see DESIGN.md):
    # every row must name its bottleneck node and carry a positive rate.
    assert r["records_per_s_modelled"] > 0, r
    assert r["busiest_node"].startswith("node.busy_ns."), r
    assert r["busiest_node_busy_ms"] > 0, r
    # Per-stage latency decomposition from the flight recorder: every
    # stage must have been exercised (non-zero percentiles and counts).
    stages = r["stages"]
    assert set(stages) == {"client", "sequencer", "replica", "storage"}, r
    for name, s in stages.items():
        assert s["count"] > 0, f"stage {name} recorded nothing: {r}"
        assert s["p50_us"] > 0 and s["p99_us"] > 0, f"stage {name} has zero percentiles: {r}"
        assert s["p50_us"] <= s["p99_us"], f"stage {name} p50 > p99: {r}"
# Scaling-curve gate: modelled pipelined throughput at 4 shards must beat
# 1 shard by >= 1.5x even in the short, noisy --quick run (the tracked
# full-mode BENCH_datapath.json targets >= 2.0).
assert d["scaling_4x_over_1x"] >= 1.5, f"scaling_4x_over_1x regressed: {d['scaling_4x_over_1x']}"
print(f"datapath smoke JSON OK (incl. per-stage percentiles, scaling {d['scaling_4x_over_1x']:.2f}x)")
EOF

echo "==> elasticity bench smoke (--quick, JSON shape check)"
cargo run --release -p flexlog-bench --bin elasticity -- --quick --out /tmp/flexlog_elasticity_smoke.json
python3 - <<'EOF'
import json
d = json.load(open("/tmp/flexlog_elasticity_smoke.json"))
assert d["bench"] == "elasticity" and d["quick"] is True
assert d["failed_appends"] == 0, d
assert d["ctrl"]["migrations"] == 1 and d["ctrl"]["epoch_bumps"] >= 1, d
p = d["phases"]
assert set(p) == {"before", "during", "after"}
assert p["before"]["records"] > 0 and p["after"]["records"] > 0, p
# Incremental migration: the bulk ships in catch-up rounds while the
# source still serves, so the client-visible stall is the freeze window
# over the residual sliver only — independent of span size. The quick run
# is short and noisy, so the gate is 60 ms (full mode asserts < 10 ms in
# the bench itself), but it must never regress toward the old O(span)
# freeze-the-whole-copy behaviour (~90 ms even in --quick).
assert 0 < d["cutover_stall_ms"] < 60, d["cutover_stall_ms"]
assert d["catchup_rounds"] >= 1, d
assert "final_sliver_records" in d, d
# Controller-crash recovery drill: a successor controller attaches to the
# intent WAL, fences the dead generation and rolls the orphaned migration
# back. Recovery is a handful of fenced rounds on the instant network —
# the gate catches it regressing toward a span-sized or retry-bound scan.
assert 0 < d["controller_recovery_ms"] < 250, d["controller_recovery_ms"]
# Throughput must recover after the cutover: within 2x of the warm-up rate.
assert p["after"]["records_per_s"] > p["before"]["records_per_s"] / 2, p
print("elasticity smoke JSON OK (bounded stall, catch-up rounds ran, throughput recovered)")
EOF

echo "==> fanout bench smoke (--quick, JSON shape + goodput gate)"
cargo run --release -p flexlog-bench --bin fanout -- --quick --out /tmp/flexlog_fanout_smoke.json
python3 - <<'EOF'
import json
d = json.load(open("/tmp/flexlog_fanout_smoke.json"))
assert d["bench"] == "fanout" and d["quick"] is True
assert len(d["mixed"]) == 2, d["mixed"]
for r in d["mixed"]:
    assert r["appends"] > 0 and r["reads"] > 0 and r["ops_per_s"] > 0, r
    assert r["ops_per_s_modelled"] > 0 and r["busiest_node"].startswith("node.busy_ns."), r
# With a read replica per shard the follower must actually absorb read
# work (its modelled busy time is non-zero); without one it must be idle.
by_rr = {r["read_replicas_per_shard"]: r for r in d["mixed"]}
assert by_rr[0]["rreplica_busy_ms"] == 0, by_rr[0]
assert by_rr[1]["rreplica_busy_ms"] > 0, by_rr[1]
rows = {(r["mode"], r["subscribers"]): r for r in d["fanout"]}
assert set(rows) == {("poll", 1), ("push", 1), ("push", 100)}, rows
for r in d["fanout"]:
    assert r["goodput_rec_sub_per_s"] > 0, r
# Push subscriptions must actually push (batches + per-batch latency).
push100 = rows[("push", 100)]
assert push100["push_batches"] > 0 and push100["push_records"] > 0, push100
assert 0 < push100["push_p50_us"] <= push100["push_p99_us"], push100
# The fan-out gate: 100-subscriber push goodput >= 20x the
# single-subscriber polling baseline.
assert d["goodput_100x_over_poll"] >= 20, f"fan-out goodput regressed: {d['goodput_100x_over_poll']}x"
print(f"fanout smoke JSON OK (goodput {d['goodput_100x_over_poll']:.1f}x over the polling baseline)")
EOF

echo "==> tiering bench smoke (--quick, JSON shape + hot-append gate)"
cargo run --release -p flexlog-bench --bin tiering -- --quick --out /tmp/flexlog_tiering_smoke.json
python3 - <<'EOF'
import json
d = json.load(open("/tmp/flexlog_tiering_smoke.json"))
assert d["bench"] == "tiering" and d["quick"] is True
a = d["archive"]
assert a["records"] > 0 and a["records_per_s"] > 0 and a["mib_per_s"] > 0, a
assert a["store_puts"] > 0 and a["store_objects"] > 0, a
r = d["reads"]
assert r["cold_p50_us"] > 0 and r["cold_p99_us"] >= r["cold_p50_us"], r
assert r["ssd_p50_us"] > 0 and r["ssd_p99_us"] >= r["ssd_p50_us"], r
# The modelled device gap: archive segment fetches are ms-scale, SSD
# block reads are tens of us. If cold reads come out cheaper than SSD
# the read-through is sneaking through the wrong tier.
assert r["cold_p50_us"] > r["ssd_p50_us"], r
h = d["hot_append"]
# The archiver must have genuinely run during the hot phase...
assert h["archived_during_hot_phase"] > 0, h
assert h["without_archiver_ops_per_s"] > 0 and h["with_archiver_ops_per_s"] > 0, h
# ...and cost the hot append path at most 10% of its throughput.
assert h["hot_append_ratio"] >= 0.9, f"hot appends degraded by the archiver: {h['hot_append_ratio']}"
print(f"tiering smoke JSON OK (hot-append ratio {h['hot_append_ratio']:.2f}, "
      f"cold read p50 {r['cold_p50_us']:.0f} us vs SSD {r['ssd_p50_us']:.1f} us)")
EOF

echo "==> tiering nemesis (storage crash + store outage during archive rounds)"
cargo test --release -q -p flexlog-chaos --test tiering_nemesis

echo "==> subscription nemesis (read replica dies mid-push)"
cargo test --release -q -p flexlog-chaos --test subscription_nemesis subscribers_survive_read_replica_crash_mid_push

echo "==> migration-crash nemesis (source replica dies mid-migration)"
cargo test --release -q -p flexlog-chaos --test migration_nemesis source_replica_crash_mid_migration

echo "==> controller-crash nemesis (controller dies mid-catch-up round)"
cargo test --release -q -p flexlog-chaos --test controller_nemesis controller_crash_mid_catchup_round

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
