#!/usr/bin/env bash
# CI gate: release build, full test suite, a bounded nemesis smoke run
# (fixed seed, ~5 s of injected faults under load), and a zero-warning
# clippy pass over the chaos crate.
#
# Replay a failing smoke run with: FLEXLOG_CHAOS_SEED=<seed> scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> nemesis smoke (bounded chaos run, fixed seed)"
cargo run --release -p flexlog-chaos --example nemesis_smoke

echo "==> cargo clippy -p flexlog-chaos (deny warnings)"
cargo clippy -p flexlog-chaos --all-targets -- -D warnings

echo "CI green."
