#!/usr/bin/env bash
# Regenerates the tracked benchmark artifacts (BENCH_datapath.json,
# BENCH_elasticity.json, BENCH_fanout.json, BENCH_tiering.json) with
# full-length runs, then
# sanity-checks the results. Commit the refreshed JSON together with any
# data-path or control-plane change so the history of the numbers tracks
# the history of the code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p flexlog-bench --bin datapath"
cargo build --release -p flexlog-bench --bin datapath

echo "==> datapath (full run, writes BENCH_datapath.json)"
./target/release/datapath --out BENCH_datapath.json

python3 - <<'EOF'
import json
d = json.load(open("BENCH_datapath.json"))
base = d["pre_pr_baseline"]
rows = {(r["shards"], r["mode"]): r for r in d["results"]}
print(f"{'shards':>6} {'mode':>10} {'rec/s':>10} {'p50 us':>9} {'p99 us':>9} {'vs baseline':>12}")
for (shards, mode), r in sorted(rows.items()):
    b = base[f"shards_{shards}"]
    print(f"{shards:>6} {mode:>10} {r['records_per_s']:>10.0f} {r['p50_us']:>9.1f} "
          f"{r['p99_us']:>9.1f} {r['records_per_s'] / b:>11.2f}x")
speedup = rows[(4, "pipelined")]["records_per_s"] / base["shards_4"]
if speedup < 2.0:
    print(f"WARNING: 4-shard pipelined speedup {speedup:.2f}x is below the 2x target "
          "(noisy host? rerun before committing)")
EOF

echo "==> cargo build --release -p flexlog-bench --bin elasticity"
cargo build --release -p flexlog-bench --bin elasticity

echo "==> elasticity (full run, writes BENCH_elasticity.json)"
./target/release/elasticity --out BENCH_elasticity.json

python3 - <<'EOF'
import json
d = json.load(open("BENCH_elasticity.json"))
p = d["phases"]
print(f"{'phase':>8} {'records':>9} {'secs':>7} {'rec/s':>10}")
for name in ("before", "during", "after"):
    r = p[name]
    print(f"{name:>8} {r['records']:>9} {r['secs']:>7.3f} {r['records_per_s']:>10.1f}")
print(f"migration {d['migration_ms']:.1f} ms, cutover stall {d['cutover_stall_ms']:.1f} ms, "
      f"{d['failed_appends']} failed appends")
if p["after"]["records_per_s"] < p["before"]["records_per_s"] / 2:
    print("WARNING: post-migration throughput did not recover to half the warm-up rate "
          "(noisy host? rerun before committing)")
EOF

echo "==> cargo build --release -p flexlog-bench --bin fanout"
cargo build --release -p flexlog-bench --bin fanout

echo "==> fanout (full run, writes BENCH_fanout.json)"
./target/release/fanout --out BENCH_fanout.json

python3 - <<'EOF2'
import json
d = json.load(open("BENCH_fanout.json"))
print(f"{'mode':>6} {'subs':>5} {'goodput rec·sub/s':>18} {'push p50/p99 us':>16}")
for r in d["fanout"]:
    print(f"{r['mode']:>6} {r['subscribers']:>5} {r['goodput_rec_sub_per_s']:>18.0f} "
          f"{r['push_p50_us']:>7.0f}/{r['push_p99_us']:.0f}")
ratio = d["goodput_100x_over_poll"]
print(f"fan-out goodput {ratio:.1f}x over the single-subscriber polling baseline")
if ratio < 20:
    print("WARNING: fan-out goodput below the 20x gate (noisy host? rerun before committing)")
EOF2

echo "==> cargo build --release -p flexlog-bench --bin tiering"
cargo build --release -p flexlog-bench --bin tiering

echo "==> tiering (full run, writes BENCH_tiering.json)"
./target/release/tiering --out BENCH_tiering.json

python3 - <<'EOF'
import json
d = json.load(open("BENCH_tiering.json"))
a, r, h = d["archive"], d["reads"], d["hot_append"]
print(f"archive: {a['records']} records at {a['records_per_s']:.0f} rec/s "
      f"({a['mib_per_s']:.1f} MiB/s modelled), {a['store_objects']} objects")
print(f"reads:   cold p50/p99 {r['cold_p50_us']:.0f}/{r['cold_p99_us']:.0f} us, "
      f"SSD {r['ssd_p50_us']:.1f}/{r['ssd_p99_us']:.1f} us "
      f"({r['cold_over_ssd_p50']:.0f}x)")
print(f"hot appends: {h['without_archiver_ops_per_s']:.0f}/s archiver-off, "
      f"{h['with_archiver_ops_per_s']:.0f}/s archiver-on "
      f"(ratio {h['hot_append_ratio']:.2f}, {h['archived_during_hot_phase']} archived)")
if h["hot_append_ratio"] < 0.9:
    print("WARNING: hot-append ratio below the 0.9 gate "
          "(noisy host? rerun before committing)")
EOF
