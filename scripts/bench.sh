#!/usr/bin/env bash
# Regenerates the tracked data-path benchmark artifact (BENCH_datapath.json)
# with a full-length run, then sanity-checks the result against the embedded
# pre-PR baseline. Commit the refreshed JSON together with any data-path
# change so the history of the numbers tracks the history of the code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p flexlog-bench --bin datapath"
cargo build --release -p flexlog-bench --bin datapath

echo "==> datapath (full run, writes BENCH_datapath.json)"
./target/release/datapath --out BENCH_datapath.json

python3 - <<'EOF'
import json
d = json.load(open("BENCH_datapath.json"))
base = d["pre_pr_baseline"]
rows = {(r["shards"], r["mode"]): r for r in d["results"]}
print(f"{'shards':>6} {'mode':>10} {'rec/s':>10} {'p50 us':>9} {'p99 us':>9} {'vs baseline':>12}")
for (shards, mode), r in sorted(rows.items()):
    b = base[f"shards_{shards}"]
    print(f"{shards:>6} {mode:>10} {r['records_per_s']:>10.0f} {r['p50_us']:>9.1f} "
          f"{r['p99_us']:>9.1f} {r['records_per_s'] / b:>11.2f}x")
speedup = rows[(4, "pipelined")]["records_per_s"] / base["shards_4"]
if speedup < 2.0:
    print(f"WARNING: 4-shard pipelined speedup {speedup:.2f}x is below the 2x target "
          "(noisy host? rerun before committing)")
EOF
