//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`] (a splitmix64/xoshiro-style deterministic
//! generator), the [`Rng`] extension trait with `gen_range`/`gen_bool`, the
//! [`SeedableRng`] constructor trait, and the free [`random`] function.
//! Deterministic replay from a `u64` seed is the property FlexLog's chaos
//! harness depends on; statistical quality beyond "good enough for
//! simulation" is a non-goal.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// A type that can be sampled from a numeric range.
///
/// The blanket impls over `Range<T>` / `RangeInclusive<T>` mirror real
/// rand's structure so that `rng.gen_range(0..100) < some_u32` still
/// infers the literal's type from the comparison.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

/// Per-type uniform sampling over `[start, end)` or `[start, end]`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_span(start: Self, end: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_span(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_span(start, end, true, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut dyn FnMut() -> u64,
            ) -> Self {
                // Two's-complement wrapping arithmetic keeps the span
                // correct for signed types as well.
                let span = (end as u128)
                    .wrapping_sub(start as u128)
                    .wrapping_add(inclusive as u128);
                let wide = ((rng)() as u128) << 64 | (rng)() as u128;
                if span == 0 {
                    // Only reachable for full-width inclusive u128 ranges.
                    return wide as $t;
                }
                start.wrapping_add((wide % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_span(start: Self, end: Self, _inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self {
        let unit = ((rng)() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut || self.next_u64())
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The "standard" distribution: what `rng.gen()` / `rand::random()` sample.
pub trait Standard {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
                (rng)() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        ((rng)() as u128) << 64 | (rng)() as u128
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng)() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        ((rng)() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One value from the standard distribution, seeded from process entropy.
pub fn random<T: Standard>() -> T {
    let mut seed = entropy_seed();
    T::sample(&mut || {
        seed = splitmix64(&mut seed);
        seed
    })
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    let c = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut s = t ^ c ^ (std::process::id() as u64).rotate_left(32);
    splitmix64(&mut s)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** seeded via splitmix64, like the
    /// real `rand::rngs::StdRng` contract — same seed, same stream, forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{random, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x = rng.gen_range(0u64..=5);
            assert!(x <= 5);
            let y = rng.gen_range(0..30u128);
            assert!(y < 30);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn random_is_callable() {
        let a: u64 = random();
        let b: u64 = random();
        // Not a determinism guarantee — just exercise both paths.
        let _ = (a, b);
    }
}
