//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — an unbounded MPMC channel with the same
//! disconnect semantics crossbeam has: `recv` fails once the queue is empty
//! *and* every `Sender` is gone; `send` fails once every `Receiver` is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cond: Condvar,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.cond.notify_one();
            Ok(())
        }

        /// Enqueues a whole batch under one lock acquisition with one
        /// receiver wake-up, preserving the batch's order. Returns the
        /// values if every receiver is gone (mirroring [`Sender::send`]).
        pub fn send_batch(&self, values: Vec<T>) -> Result<(), SendError<Vec<T>>> {
            if values.is_empty() {
                return Ok(());
            }
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(values));
            }
            st.queue.extend(values);
            drop(st);
            // One wake-up for the whole burst; a multi-receiver channel
            // re-notifies from `recv_batch_timeout`/`recv` as items remain.
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .cond
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
        }

        /// Blocks until at least one value is available (or `timeout`
        /// elapses), then drains up to `max` queued values into `out` under
        /// a single lock acquisition. Returns how many were appended.
        ///
        /// If values remain queued after the drain, one more waiter is
        /// notified so a multi-receiver channel never strands a burst
        /// delivered by [`Sender::send_batch`]'s single wake-up.
        pub fn recv_batch_timeout(
            &self,
            timeout: Duration,
            max: usize,
            out: &mut Vec<T>,
        ) -> Result<usize, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !st.queue.is_empty() {
                    let n = st.queue.len().min(max.max(1));
                    out.extend(st.queue.drain(..n));
                    let leftover = !st.queue.is_empty();
                    drop(st);
                    if leftover {
                        self.shared.cond.notify_one();
                    }
                    return Ok(n);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    // ------------------------------------------------------------ errors ----

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 100);
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_on_all_senders_dropped() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1), "queued values drain first");
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receiver() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(9).is_err());
        }

        #[test]
        fn batch_send_and_batch_recv_preserve_order() {
            let (tx, rx) = unbounded();
            tx.send_batch((0..10).collect::<Vec<_>>()).unwrap();
            tx.send(10).unwrap();
            let mut out = Vec::new();
            // Bounded drain: only `max` items come out per call.
            let n = rx
                .recv_batch_timeout(Duration::from_secs(1), 4, &mut out)
                .unwrap();
            assert_eq!(n, 4);
            let n = rx
                .recv_batch_timeout(Duration::from_secs(1), 100, &mut out)
                .unwrap();
            assert_eq!(n, 7);
            assert_eq!(out, (0..=10).collect::<Vec<_>>());
        }

        #[test]
        fn batch_recv_times_out_and_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let mut out = Vec::new();
            assert_eq!(
                rx.recv_batch_timeout(Duration::from_millis(5), 8, &mut out),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_batch_timeout(Duration::from_millis(5), 8, &mut out),
                Err(RecvTimeoutError::Disconnected)
            );
            assert!(out.is_empty());
        }

        #[test]
        fn batch_send_wakes_blocked_receiver() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                let mut out = Vec::new();
                rx.recv_batch_timeout(Duration::from_secs(5), 64, &mut out)
                    .unwrap();
                out
            });
            std::thread::sleep(Duration::from_millis(10));
            tx.send_batch(vec![1u32, 2, 3]).unwrap();
            assert_eq!(t.join().unwrap(), vec![1, 2, 3]);
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }
    }
}
