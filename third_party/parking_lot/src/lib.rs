//! Vendored stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! (small) API subset FlexLog uses: [`Mutex`], [`RwLock`] and [`Condvar`]
//! with parking_lot's ergonomics — `lock()`/`read()`/`write()` return guards
//! directly and poisoning is transparently ignored (a panicked holder does
//! not poison the lock for everyone else, matching parking_lot semantics).

use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex ----

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar can move the std guard out and back during waits.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

// --------------------------------------------------------------- RwLock ----

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// -------------------------------------------------------------- Condvar ----

#[derive(Default)]
pub struct Condvar(sync::Condvar);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "no poisoning");
    }
}
