//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the subset FlexLog's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), integer-range and `any::<T>()`
//! strategies, tuples, [`Just`], `prop_oneof!` with weights,
//! [`collection::vec`], `prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** On failure the harness prints the seed, the case
//!   index and a `Debug` dump of every generated input, which replays
//!   exactly (set `PROPTEST_SEED=<seed>` to pin the whole run).
//! * **Deterministic by default.** Each test derives its seed from the test
//!   name, so CI runs are reproducible without configuration.

use std::fmt::Debug;
use std::rc::Rc;

// ------------------------------------------------------------ test rng ----

pub mod test_runner {
    /// Run-loop configuration. Only the fields FlexLog's tests set exist.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Per-test seed derivation: stable across runs and across machines.
#[doc(hidden)]
pub fn __default_seed(test_name: &str) -> u64 {
    // FNV-1a over the test name, mixed with a fixed workspace base.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ 0xF1E7_06C0_FFEE_5EED
}

/// The seed for a test: `PROPTEST_SEED` env override, else name-derived.
#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .or_else(|_| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| __default_seed(test_name)),
        Err(_) => __default_seed(test_name),
    }
}

// ----------------------------------------------------------- strategies ----

pub mod strategy {
    use super::*;

    /// A generator of test values. No shrinking: `gen_value` is the whole
    /// contract.
    pub trait Strategy {
        type Value: Debug;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.gen_value(rng)))
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the draw")
        }
    }

    // Integer / bool ranges and `any`.

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    self.start.wrapping_add((wide % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128)
                        .wrapping_sub(start as u128)
                        .wrapping_add(1);
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    start.wrapping_add((wide % span) as $t)
                }
            }

            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Full-range strategy for an [`Arbitrary`] type.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: sample the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    // Tuple strategies (component-wise).

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// --------------------------------------------------------------- macros ----

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test harness macro. Supports an optional leading
/// `#![proptest_config(<expr>)]` followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed: u64 = $crate::__seed_for(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest failure in `{}` (case {}/{})\n\
                         replay with: PROPTEST_SEED={:#x}\ninputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __seed,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..5000 {
            let v = Strategy::gen_value(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weight_shape() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let u = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[Strategy::gen_value(&u, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1], "weight 3 arm dominates: {counts:?}");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..1000 {
            let v = Strategy::gen_value(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(
            crate::__default_seed("some_test"),
            crate::__default_seed("some_test"),
        );
        assert_ne!(
            crate::__default_seed("some_test"),
            crate::__default_seed("other_test"),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

        #[test]
        fn harness_runs_with_config(x in 0u32..10, ys in crate::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!ys.is_empty() && ys.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn harness_runs_with_default_config(t in (any::<u16>(), 0u8..4).prop_map(|(a, b)| (a, b))) {
            prop_assert!(t.1 < 4);
        }
    }
}
