//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the group-based API FlexLog's benches use: `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a plain mean over N samples — no outlier analysis, no
//! HTML reports. Good enough to compare runs by eye; `cargo test` merely
//! compiles benches, so correctness of the API surface is what matters.

use std::fmt;
use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `f` over `budget` samples (one call each, after one warmup).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "  {group}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            self.samples.len()
        );
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Identity wrapper kept for API compatibility with `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        // one warmup + three samples
        assert_eq!(ran, 4);
    }
}
