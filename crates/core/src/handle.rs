//! The per-function FlexLog handle: the FlexLog-API of Table 2.

use std::time::Duration;

use flexlog_replication::{ClientError, FlexLogClient, Subscription};
use flexlog_types::{ColorId, CommittedRecord, FunctionId, Payload, SeqNum, Token};

use crate::{ColorAdmin, ColorError};

/// A serverless function's handle to the shared log.
///
/// Owns a [`FlexLogClient`] (the protocol machinery of §6) plus the shared
/// [`ColorAdmin`] so `AddColor` works directly from application code, as in
/// the paper's Listing 1.
pub struct FlexLog {
    client: FlexLogClient,
    admin: ColorAdmin,
}

impl FlexLog {
    pub(crate) fn new(client: FlexLogClient, admin: ColorAdmin) -> Self {
        FlexLog { client, admin }
    }

    /// This handle's function id (token namespace).
    pub fn fid(&self) -> FunctionId {
        self.client.fid()
    }

    /// `Append(r[], c)`: appends records to the log of color `c`, returning
    /// the SN of the last record once **every** replica of the chosen shard
    /// has committed. Bytes are copied once here into shared [`Payload`]
    /// buffers; everything downstream (broadcast, retransmit, caching) is
    /// zero-copy. Use [`FlexLog::append_payloads`] to skip even that copy.
    pub fn append_batch(
        &mut self,
        records: &[Vec<u8>],
        color: ColorId,
    ) -> Result<SeqNum, ClientError> {
        let payloads: Vec<Payload> = records.iter().map(|r| Payload::copy_from_slice(r)).collect();
        self.client.append(color, &payloads)
    }

    /// [`FlexLog::append_batch`] over pre-built zero-copy payloads.
    pub fn append_payloads(
        &mut self,
        records: &[Payload],
        color: ColorId,
    ) -> Result<SeqNum, ClientError> {
        self.client.append(color, records)
    }

    /// Single-record convenience form of [`FlexLog::append_batch`].
    pub fn append(&mut self, record: &[u8], color: ColorId) -> Result<SeqNum, ClientError> {
        self.client.append(color, &[Payload::copy_from_slice(record)])
    }

    /// Starts an append without waiting for its acks (bounded-window
    /// pipelining); returns its completion token. Collect results with
    /// [`FlexLog::flush_appends`].
    pub fn append_pipelined(
        &mut self,
        records: &[Payload],
        color: ColorId,
    ) -> Result<Token, ClientError> {
        self.client.append_pipelined(color, records)
    }

    /// Drives all pipelined appends to completion; returns `(token, SN)`
    /// pairs in completion order.
    pub fn flush_appends(&mut self) -> Result<Vec<(Token, SeqNum)>, ClientError> {
        self.client.flush()
    }

    /// Number of pipelined appends currently in flight.
    pub fn pending_appends(&self) -> usize {
        self.client.pending_appends()
    }

    /// Pipelined appends completed so far, without blocking (see
    /// [`FlexLog::flush_appends`] for the draining form).
    pub fn take_completed_appends(&mut self) -> Vec<(Token, SeqNum)> {
        self.client.take_completed()
    }

    /// `Read(SN, c)`: the record stored under `sn` in the `c`-colored log,
    /// or `None` if no record holds that SN (a hole, trimmed, or never
    /// written).
    pub fn read(&mut self, sn: SeqNum, color: ColorId) -> Result<Option<Payload>, ClientError> {
        self.client.read(color, sn)
    }

    /// `Subscribe(c)`: all records of the `c`-colored log, in SN order.
    pub fn subscribe(&mut self, color: ColorId) -> Result<Vec<CommittedRecord>, ClientError> {
        self.client.subscribe(color)
    }

    /// Incremental subscribe: records with SN strictly above `from`.
    pub fn subscribe_from(
        &mut self,
        color: ColorId,
        from: SeqNum,
    ) -> Result<Vec<CommittedRecord>, ClientError> {
        self.client.subscribe_from(color, from)
    }

    /// Opens a standing push subscription on `color`: the serving replicas
    /// push committed spans as they land instead of this handle polling.
    /// Drain with [`FlexLog::poll_subscription`].
    pub fn subscribe_push(&mut self, color: ColorId) -> Result<Subscription, ClientError> {
        self.client.subscribe_push(color)
    }

    /// [`FlexLog::subscribe_push`] starting above `from`.
    pub fn subscribe_push_from(
        &mut self,
        color: ColorId,
        from: SeqNum,
    ) -> Result<Subscription, ClientError> {
        self.client.subscribe_push_from(color, from)
    }

    /// Waits up to `wait` for pushed records on `sub` (possibly empty).
    /// Returns [`ClientError::UnknownColor`] once the color is dropped.
    pub fn poll_subscription(
        &mut self,
        sub: Subscription,
        wait: Duration,
    ) -> Result<Vec<CommittedRecord>, ClientError> {
        self.client.poll_subscription(sub, wait)
    }

    /// Closes a push subscription.
    pub fn unsubscribe(&mut self, sub: Subscription) {
        self.client.unsubscribe(sub)
    }

    /// `Trim(SN, c)`: garbage-collects all records with SN ≤ `sn`; returns
    /// the remaining `[head, tail]` span.
    pub fn trim(
        &mut self,
        sn: SeqNum,
        color: ColorId,
    ) -> Result<(Option<SeqNum>, Option<SeqNum>), ClientError> {
        self.client.trim(color, sn)
    }

    /// `AddColor(c, c_p)`: creates the `c`-colored log with `c_p` as its
    /// parent region.
    pub fn add_color(&mut self, color: ColorId, parent: ColorId) -> Result<(), ColorError> {
        self.admin.add_color(color, parent)
    }

    /// The tail (highest SN) of a color, if it has any records — a cheap
    /// way to wait for producers (reads the subscribe path).
    pub fn tail(&mut self, color: ColorId) -> Result<Option<SeqNum>, ClientError> {
        Ok(self.client.subscribe(color)?.last().map(|r| r.sn))
    }

    /// Atomic multi-color append (§6.4): all record sets commit in their
    /// target colors, or none does.
    pub fn multi_append(
        &mut self,
        sets: &[(ColorId, Vec<Vec<u8>>)],
    ) -> Result<(), ClientError> {
        let sets: Vec<(ColorId, Vec<Payload>)> = sets
            .iter()
            .map(|(c, rs)| (*c, rs.iter().map(|r| Payload::copy_from_slice(r)).collect()))
            .collect();
        self.client.multi_append(&sets)
    }

    /// Color administration (existence checks, hierarchy inspection).
    pub fn colors(&self) -> &ColorAdmin {
        &self.admin
    }
}
