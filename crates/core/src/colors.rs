//! The color hierarchy (region tree) and `AddColor` (Table 2).
//!
//! Colors form a tree rooted at the master region (§4): a new color is a
//! sub-region of its parent, ordered by the sequencer that owns the parent
//! and stored on the shards of that sequencer's region. `AddColor` is a
//! metadata operation — it updates the shared [`ColorRegistry`] (consulted
//! by sequencers on every flush) and the shared [`TopologyView`] (consulted
//! by clients when routing), so new colors are usable immediately without
//! any protocol round.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use flexlog_ordering::{ColorRegistry, RoleId};
use flexlog_replication::TopologyView;
use flexlog_types::{ColorId, ShardId};

/// Errors from color administration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorError {
    /// The color already exists.
    AlreadyExists(ColorId),
    /// The parent color does not exist.
    UnknownParent(ColorId),
    /// The owning sequencer's region has no shards.
    EmptyRegion(RoleId),
}

impl fmt::Display for ColorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColorError::AlreadyExists(c) => write!(f, "{c} already exists"),
            ColorError::UnknownParent(c) => write!(f, "parent {c} does not exist"),
            ColorError::EmptyRegion(r) => write!(f, "region of {r:?} has no shards"),
        }
    }
}

impl std::error::Error for ColorError {}

struct Inner {
    /// color → parent color (master has no parent).
    parents: HashMap<ColorId, Option<ColorId>>,
}

/// Shared color administration. Cheap to clone.
#[derive(Clone)]
pub struct ColorAdmin {
    registry: ColorRegistry,
    topology: TopologyView,
    /// Shards of each sequencer's region (the shards of every leaf in its
    /// subtree). Mutable at runtime: elastic scale-out grows a region and
    /// leaf splits introduce new regions.
    region_shards: Arc<RwLock<HashMap<RoleId, Vec<ShardId>>>>,
    inner: Arc<RwLock<Inner>>,
}

impl ColorAdmin {
    /// Builds the admin over a running cluster's shared state. The master
    /// color must already be registered (the cluster spec does this).
    pub fn new(
        registry: ColorRegistry,
        topology: TopologyView,
        region_shards: HashMap<RoleId, Vec<ShardId>>,
    ) -> Self {
        let mut parents = HashMap::new();
        parents.insert(ColorId::MASTER, None);
        ColorAdmin {
            registry,
            topology,
            region_shards: Arc::new(RwLock::new(region_shards)),
            inner: Arc::new(RwLock::new(Inner { parents })),
        }
    }

    /// `AddColor(c, c_p)`: creates the `color` log as a sub-region of
    /// `parent`. The new color inherits the parent's ordering root and is
    /// stored on that region's shards.
    pub fn add_color(&self, color: ColorId, parent: ColorId) -> Result<(), ColorError> {
        let mut inner = self.inner.write();
        if inner.parents.contains_key(&color) || self.registry.contains(color) {
            return Err(ColorError::AlreadyExists(color));
        }
        if !inner.parents.contains_key(&parent) {
            return Err(ColorError::UnknownParent(parent));
        }
        let owner = self
            .registry
            .owner(parent)
            .ok_or(ColorError::UnknownParent(parent))?;
        let shards = self
            .region_shards
            .read()
            .get(&owner)
            .filter(|s| !s.is_empty())
            .cloned()
            .ok_or(ColorError::EmptyRegion(owner))?;
        self.registry.set(color, owner);
        self.topology.set_color_shards(color, shards);
        inner.parents.insert(color, Some(parent));
        Ok(())
    }

    /// Creates `color` as a *locally ordered* region owned directly by
    /// `role` (the FlexLog-P configuration: the leaf is the serialization
    /// point and the root is never consulted, §9.1).
    pub fn add_color_at(&self, color: ColorId, role: RoleId) -> Result<(), ColorError> {
        let mut inner = self.inner.write();
        if inner.parents.contains_key(&color) || self.registry.contains(color) {
            return Err(ColorError::AlreadyExists(color));
        }
        let shards = self
            .region_shards
            .read()
            .get(&role)
            .filter(|s| !s.is_empty())
            .cloned()
            .ok_or(ColorError::EmptyRegion(role))?;
        self.registry.set(color, role);
        self.topology.set_color_shards(color, shards);
        inner.parents.insert(color, Some(ColorId::MASTER));
        Ok(())
    }

    /// The parent of `color` (None for the master region or unknown colors).
    pub fn parent(&self, color: ColorId) -> Option<ColorId> {
        self.inner.read().parents.get(&color).copied().flatten()
    }

    /// True if the color exists.
    pub fn exists(&self, color: ColorId) -> bool {
        self.inner.read().parents.contains_key(&color)
    }

    /// All known colors, sorted.
    pub fn colors(&self) -> Vec<ColorId> {
        let mut v: Vec<ColorId> = self.inner.read().parents.keys().copied().collect();
        v.sort();
        v
    }

    /// The sequencer role ordering `color`.
    pub fn owner(&self, color: ColorId) -> Option<RoleId> {
        self.registry.owner(color)
    }

    pub(crate) fn register_master(&self, owner: RoleId, shards: Vec<ShardId>) {
        self.registry.set(ColorId::MASTER, owner);
        self.topology.set_color_shards(ColorId::MASTER, shards);
    }

    /// Records a newly spawned shard as part of `role`'s region, so
    /// colors created there afterwards land on it.
    pub fn add_region_shard(&self, role: RoleId, shard: ShardId) {
        let mut regions = self.region_shards.write();
        let shards = regions.entry(role).or_default();
        if !shards.contains(&shard) {
            shards.push(shard);
        }
    }

    /// Replaces (or introduces) the full shard list of `role`'s region —
    /// used when a leaf split carves out a new region.
    pub fn set_region(&self, role: RoleId, shards: Vec<ShardId>) {
        self.region_shards.write().insert(role, shards);
    }

    /// The shards of `role`'s region.
    pub fn region_of(&self, role: RoleId) -> Vec<ShardId> {
        self.region_shards
            .read()
            .get(&role)
            .cloned()
            .unwrap_or_default()
    }

    /// Forgets `color` entirely (destroy): removes it from the registry,
    /// the topology is left to the control plane (which must fence the
    /// replicas first). Children of the color are re-parented to its
    /// parent so the tree stays connected.
    pub fn remove_color(&self, color: ColorId) -> Result<(), ColorError> {
        if color == ColorId::MASTER {
            return Err(ColorError::UnknownParent(color));
        }
        let mut inner = self.inner.write();
        let Some(parent) = inner.parents.remove(&color) else {
            return Err(ColorError::UnknownParent(color));
        };
        for p in inner.parents.values_mut() {
            if *p == Some(color) {
                *p = parent;
            }
        }
        self.registry.remove(color);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admin() -> ColorAdmin {
        let registry = ColorRegistry::new();
        let topology = TopologyView::new();
        topology.add_shard(flexlog_replication::ShardInfo {
            id: ShardId(0),
            replicas: vec![flexlog_simnet::NodeId(1)],
            leaf: RoleId(1),
            read_replicas: Vec::new(),
        });
        let mut regions = HashMap::new();
        regions.insert(RoleId(0), vec![ShardId(0)]);
        regions.insert(RoleId(1), vec![ShardId(0)]);
        let a = ColorAdmin::new(registry, topology, regions);
        a.register_master(RoleId(0), vec![ShardId(0)]);
        a
    }

    #[test]
    fn add_color_inherits_parent_owner() {
        let a = admin();
        a.add_color(ColorId(1), ColorId::MASTER).unwrap();
        assert_eq!(a.owner(ColorId(1)), Some(RoleId(0)));
        assert_eq!(a.parent(ColorId(1)), Some(ColorId::MASTER));
        // Grandchild inherits transitively.
        a.add_color(ColorId(2), ColorId(1)).unwrap();
        assert_eq!(a.owner(ColorId(2)), Some(RoleId(0)));
    }

    #[test]
    fn duplicate_color_rejected() {
        let a = admin();
        a.add_color(ColorId(1), ColorId::MASTER).unwrap();
        assert_eq!(
            a.add_color(ColorId(1), ColorId::MASTER),
            Err(ColorError::AlreadyExists(ColorId(1)))
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let a = admin();
        assert_eq!(
            a.add_color(ColorId(5), ColorId(99)),
            Err(ColorError::UnknownParent(ColorId(99)))
        );
    }

    #[test]
    fn leaf_local_color() {
        let a = admin();
        a.add_color_at(ColorId(7), RoleId(1)).unwrap();
        assert_eq!(a.owner(ColorId(7)), Some(RoleId(1)));
        assert!(a.exists(ColorId(7)));
    }

    #[test]
    fn colors_listing() {
        let a = admin();
        a.add_color(ColorId(3), ColorId::MASTER).unwrap();
        a.add_color(ColorId(1), ColorId::MASTER).unwrap();
        assert_eq!(a.colors(), vec![ColorId::MASTER, ColorId(1), ColorId(3)]);
    }
}
