//! Whole-deployment assembly and fault injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flexlog_obs::{ObsHandle, Trace};
use flexlog_ordering::{
    ColorRegistry, Directory, OrderingHandle, OrderingService, RoleId, RouteTable, TreeSpec,
};
use flexlog_replication::{
    ClientConfig, ClusterMsg, DataLayerHandle, DataLayerService, DataLayerSpec, FlexLogClient,
    ReplicaConfig, ShardInfo,
};
use flexlog_pm::{PmDevice, PmDeviceConfig, PmPool};
use flexlog_simnet::{NetConfig, Network, NodeId};
use flexlog_storage::StorageConfig;
use flexlog_types::{ColorId, Epoch, FunctionId, ShardId, Token};

use crate::{ColorAdmin, FlexLog};

/// Declarative description of a FlexLog deployment.
#[derive(Clone)]
pub struct ClusterSpec {
    /// Leaf sequencers under the root (0 = a single root sequencer orders
    /// everything and shards attach to it directly).
    pub leaves: usize,
    /// Shards attached to each leaf (or to the root when `leaves == 0`).
    pub shards_per_leaf: usize,
    /// Replicas per shard (paper default 3).
    pub replication_factor: usize,
    /// Read-only replicas attached to each shard (0 = the write quorum
    /// serves reads). Read replicas follow the quorum via the sync path
    /// and absorb the read/subscription fan-out.
    pub read_replicas_per_shard: usize,
    /// Backups per sequencer position (the paper's 2f; 0 disables
    /// fail-over machinery for benchmarks).
    pub backups_per_sequencer: usize,
    /// Network characteristics.
    pub net: NetConfig,
    /// Per-replica storage stack configuration.
    pub storage: StorageConfig,
    /// Sequencer batching interval (paper default 1 µs).
    pub batch_interval: Duration,
    /// Failure-detection bound Δ.
    pub delta: Duration,
    /// Client initial retransmit backoff / backoff cap / overall deadline.
    pub client_retry: Duration,
    pub client_max_retry: Duration,
    pub client_deadline: Duration,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            leaves: 0,
            shards_per_leaf: 1,
            replication_factor: 3,
            read_replicas_per_shard: 0,
            backups_per_sequencer: 0,
            net: NetConfig::instant(),
            storage: StorageConfig::default(),
            batch_interval: Duration::from_micros(1),
            delta: Duration::from_millis(100),
            client_retry: Duration::from_millis(150),
            client_max_retry: Duration::from_secs(2),
            client_deadline: Duration::from_secs(30),
        }
    }
}

impl ClusterSpec {
    /// The paper's minimal linearizable setup: one root sequencer, one
    /// shard of 3 replicas (§9.2).
    pub fn single_shard() -> Self {
        ClusterSpec::default()
    }

    /// Root + `leaves` leaf sequencers, `shards_per_leaf` shards each —
    /// the standard scalable topology (§9.3).
    pub fn tree(leaves: usize, shards_per_leaf: usize) -> Self {
        ClusterSpec {
            leaves,
            shards_per_leaf,
            ..Default::default()
        }
    }
}

/// A running FlexLog deployment.
pub struct FlexLogCluster {
    net: Network<ClusterMsg>,
    directory: Directory,
    admin: ColorAdmin,
    data: DataLayerHandle,
    ordering: OrderingHandle<ClusterMsg>,
    spec: ClusterSpec,
    next_client: AtomicU64,
    obs: ObsHandle,
    registry: ColorRegistry,
    routes: RouteTable,
    /// The controller's durable PM device, surfaced as a shared pool. It
    /// models hardware that outlives any one controller process: a
    /// controller crash kills the controller's *node* (and its volatile
    /// state), never this pool.
    ctrl_wal: Arc<PmPool>,
    /// Highest controller generation that has attached to this cluster.
    ctrl_gen: AtomicU64,
    /// Highest controller generation whose node has been crashed.
    ctrl_killed: AtomicU64,
}

impl FlexLogCluster {
    /// Builds and starts every component of `spec`.
    pub fn start(spec: ClusterSpec) -> Self {
        // One observability surface for the whole deployment: every layer
        // (clients, sequencers, replicas, storage, network) reports into it.
        let obs = ObsHandle::new();
        let mut spec = spec;
        spec.storage.obs = obs.clone();
        let net: Network<ClusterMsg> = Network::new(spec.net.clone());
        net.attach_obs(&obs);
        let directory = Directory::new();

        // --- data layer -------------------------------------------------
        let leaf_roles: Vec<RoleId> = if spec.leaves == 0 {
            vec![RoleId(0)]
        } else {
            (1..=spec.leaves as u32).map(RoleId).collect()
        };
        let n_shards = spec.shards_per_leaf * leaf_roles.len();
        let routes = RouteTable::new();
        let mut data_spec =
            DataLayerSpec::uniform(n_shards, spec.replication_factor, &leaf_roles);
        data_spec.read_replicas_per_shard = spec.read_replicas_per_shard;
        data_spec.replica = ReplicaConfig {
            storage: spec.storage.clone(),
            read_hold: Duration::from_millis(10),
            oreq_resend: spec.delta,
            sync_timeout: spec.delta * 5,
            routes: routes.clone(),
            ..Default::default()
        };
        let data = DataLayerService::start(&net, &directory, &data_spec);

        // --- ordering layer ----------------------------------------------
        let mut tree = if spec.leaves == 0 {
            TreeSpec::single(&[])
        } else {
            TreeSpec::root_and_leaves(&[], &vec![Vec::new(); spec.leaves])
        };
        tree.obs = obs.clone();
        tree.backups_per_position = spec.backups_per_sequencer;
        tree.batch_interval = spec.batch_interval;
        tree.delta = spec.delta;
        tree.heartbeat_interval = (spec.delta / 5).max(Duration::from_millis(5));
        tree.election_window = spec.delta / 2;
        let ordering = OrderingService::start_with_directory(
            &net,
            &tree,
            &data.replicas_by_leaf_role(),
            directory.clone(),
        );

        // --- colors -------------------------------------------------------
        // Region shards: a leaf's region = its own shards; the root's
        // region = every shard.
        let mut region_shards: HashMap<RoleId, Vec<ShardId>> = HashMap::new();
        let all: Vec<ShardId> = data.topology.all_shards().iter().map(|s| s.id).collect();
        region_shards.insert(RoleId(0), all.clone());
        for role in &leaf_roles {
            let shards: Vec<ShardId> = data
                .topology
                .all_shards()
                .iter()
                .filter(|s| s.leaf == *role)
                .map(|s| s.id)
                .collect();
            region_shards.insert(*role, shards);
        }
        let admin = ColorAdmin::new(tree.registry.clone(), data.topology.clone(), region_shards);
        // Master region: owned by the root, stored anywhere.
        admin.register_master(RoleId(0), all);

        let registry = tree.registry.clone();
        let ctrl_wal = Arc::new(PmPool::create(Arc::new(PmDevice::new(PmDeviceConfig {
            capacity: 256 * 1024,
            ..Default::default()
        }))));
        FlexLogCluster {
            net,
            directory,
            admin,
            data,
            ordering,
            spec,
            next_client: AtomicU64::new(1),
            obs,
            registry,
            routes,
            ctrl_wal,
            ctrl_gen: AtomicU64::new(0),
            ctrl_killed: AtomicU64::new(0),
        }
    }

    /// A new client handle (a "serverless function" talking to the log).
    pub fn handle(&self) -> FlexLog {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let ep = self.net.register(NodeId::named(NodeId::CLASS_CLIENT, id));
        let client = FlexLogClient::new(
            ep,
            self.data.topology.clone(),
            ClientConfig {
                fid: FunctionId(id as u32),
                retry: self.spec.client_retry,
                max_retry: self.spec.client_max_retry,
                deadline: self.spec.client_deadline,
                obs: self.obs.clone(),
                ..Default::default()
            },
        );
        FlexLog::new(client, self.admin.clone())
    }

    /// Color administration (shared with every handle).
    pub fn colors(&self) -> &ColorAdmin {
        &self.admin
    }

    /// The cluster's network (latency/partition injection).
    pub fn network(&self) -> &Network<ClusterMsg> {
        &self.net
    }

    /// The role directory (who currently leads each sequencer position).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Data-layer handle (replica crash/restart, storage stats).
    pub fn data(&self) -> &DataLayerHandle {
        &self.data
    }

    /// Ordering-layer handle (sequencer crash, stats).
    pub fn ordering(&self) -> &OrderingHandle<ClusterMsg> {
        &self.ordering
    }

    /// The cluster-wide observability surface (shared by every layer).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Human-readable snapshot of every metric across all layers.
    pub fn metrics_report(&self) -> String {
        self.obs.report_text()
    }

    /// The same snapshot as a JSON object (one key per metric).
    pub fn metrics_report_json(&self) -> String {
        self.obs.report_json()
    }

    /// The recorded event chain of one append token, across every layer it
    /// touched (client → sequencer → replicas → storage).
    pub fn trace(&self, token: Token) -> Trace {
        self.obs.trace(token)
    }

    /// Leaf sequencer roles in this deployment, including leaves spawned
    /// at runtime by the control plane. A root-only deployment reports the
    /// root as its sole "leaf".
    pub fn leaf_roles(&self) -> Vec<RoleId> {
        let roles = self.ordering.roles();
        let leaves: Vec<RoleId> = roles.iter().copied().filter(|r| r.0 != 0).collect();
        if leaves.is_empty() {
            vec![RoleId(0)]
        } else {
            leaves
        }
    }

    /// The shared color → owning-sequencer registry (consulted by
    /// sequencers on every flush; rewritten by leaf splits).
    pub fn registry(&self) -> &ColorRegistry {
        &self.registry
    }

    /// The shared per-color OReq route overrides (consulted by replicas;
    /// rewritten by leaf splits).
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Elastic scale-out: spawns a brand-new shard of
    /// `replication_factor` replicas attached to `leaf`, records it in the
    /// leaf's (and the root's) region, and returns it. The shard serves no
    /// colors until one is created there or migrated in.
    pub fn add_shard(&self, leaf: RoleId) -> ShardInfo {
        let info = self
            .data
            .add_shard(&self.net, &self.directory, leaf, self.spec.replication_factor);
        self.admin.add_region_shard(leaf, info.id);
        if leaf != RoleId(0) {
            self.admin.add_region_shard(RoleId(0), info.id);
        }
        info
    }

    /// Attaches one more read-only replica to `shard` at runtime and
    /// registers it as a read target.
    pub fn add_read_replica(&self, shard: ShardId) -> NodeId {
        self.data.add_read_replica(&self.net, shard)
    }

    /// Spawns a brand-new leaf sequencer under `parent` at `epoch`
    /// (sequencer-tree split). The caller (control plane) is responsible
    /// for reassigning colors to it via the registry and route table.
    pub fn spawn_leaf_sequencer(&self, role: RoleId, parent: RoleId, epoch: Epoch) -> NodeId {
        self.ordering.spawn_leaf(&self.net, role, parent, epoch)
    }

    /// The controller's durable intent-WAL pool. Shared: it models the
    /// controller's PM device, which survives controller crashes.
    pub fn ctrl_wal(&self) -> Arc<PmPool> {
        Arc::clone(&self.ctrl_wal)
    }

    /// Records that a controller of `gen` attached (monotonic max).
    pub fn note_ctrl_generation(&self, gen: u64) {
        self.ctrl_gen.fetch_max(gen, Ordering::SeqCst);
    }

    /// Highest controller generation that has attached to this cluster.
    pub fn ctrl_generation(&self) -> u64 {
        self.ctrl_gen.load(Ordering::SeqCst)
    }

    /// Highest controller generation whose node has been crashed.
    pub fn ctrl_killed_generation(&self) -> u64 {
        self.ctrl_killed.load(Ordering::SeqCst)
    }

    /// The network identity of the controller of `gen`. Each generation
    /// gets its own node so a successor's endpoint never receives acks
    /// addressed to a crashed predecessor.
    pub fn ctrl_node(gen: u64) -> NodeId {
        NodeId::named(0, (u64::MAX >> 4) - 1024 - gen)
    }

    /// Kills every controller generation attached so far: their network
    /// nodes are crashed (in-flight messages dropped, endpoints
    /// disconnected). The WAL device is NOT touched — PM survives a
    /// process crash. Returns the highest generation killed.
    pub fn crash_controller(&self) -> u64 {
        let cur = self.ctrl_generation();
        let prev = self.ctrl_killed.fetch_max(cur, Ordering::SeqCst);
        for gen in (prev + 1)..=cur {
            self.net.crash(Self::ctrl_node(gen));
        }
        cur
    }

    /// Convenience: create a color under the master region.
    pub fn add_color(&self, color: ColorId) -> Result<(), crate::ColorError> {
        self.admin.add_color(color, ColorId::MASTER)
    }

    /// Stops every node and joins all threads.
    pub fn shutdown(self) {
        self.data.shutdown();
        self.ordering.shutdown(&self.net);
    }
}
