//! # flexlog-core
//!
//! The top of the FlexLog stack: everything an application touches.
//!
//! * [`FlexLogCluster`] assembles a whole deployment — simulated network,
//!   sequencer tree with backups, shards of PM-backed replicas — from a
//!   declarative [`ClusterSpec`], and exposes fault injection.
//! * [`FlexLog`] is the per-function client handle implementing the
//!   FlexLog-API of Table 2: `Append`, `Read`, `Subscribe`, `Trim`,
//!   `AddColor`, plus the atomic [`FlexLog::multi_append`] of §6.4.
//! * [`ColorAdmin`] maintains the color hierarchy (region tree): a new
//!   color is ordered by the sequencer owning its parent and stored on the
//!   shards of that region.
//! * [`MessageQueue`] is the paper's Listing-1 example — a durable queue
//!   between serverless functions built from one color.
//! * [`Barrier`] and [`DistributedLock`] are the §5.1 coordination recipes
//!   (causality via synchronization primitives on the log).
//!
//! ## Consistency menu (§5.1)
//!
//! * **Linearizability / sequential consistency** — put all appends on one
//!   color; its owning sequencer is the serialization point.
//! * **Causality** — chain phases with [`Barrier`] or [`DistributedLock`]
//!   on a dedicated color (the map-reduce pattern of §5.1).
//! * **Eventual consistency / multi-tenancy** — give every tenant or task
//!   its own color; FlexLog imposes no order between colors.

mod cluster;
mod durable;
mod colors;
mod handle;
mod primitives;
mod queue;

pub use cluster::{ClusterSpec, FlexLogCluster};
pub use colors::{ColorAdmin, ColorError};
pub use durable::DurableMap;
pub use handle::FlexLog;
pub use primitives::{Barrier, DistributedLock, LockError};
pub use queue::MessageQueue;

// Re-export the vocabulary so applications depend on one crate.
pub use flexlog_obs::{
    HistogramSummary, ObsHandle, Snapshot, Stage, Trace, TraceEvent, CTRL_TOKEN, SUB_TOKEN,
    SYNC_TOKEN,
};
pub use flexlog_replication::{ClientError, ClusterMsg, Subscription};
pub use flexlog_types::{ColorId, CommittedRecord, Epoch, FunctionId, SeqNum, Token};

#[cfg(test)]
mod tests;
