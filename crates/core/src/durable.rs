//! Durable objects over the shared log — the §5.1 "high-level data
//! structures, e.g., Durable Objects" use case, in the style of Tango [48]:
//! an in-memory object whose every mutation is an appended log record, so
//! the object is durable, fault-tolerant and shareable between serverless
//! functions by construction.
//!
//! [`DurableMap`] is the canonical such object: a string-keyed map.
//!
//! * **Mutations** append `PUT`/`DEL` records to the object's color; the
//!   color's total order is the object's serialization order (last writer
//!   wins deterministically on every replica of the state).
//! * **Reads** first [`DurableMap::sync`] — replay records past the local
//!   cursor — giving read-your-writes plus monotonic cross-function reads.
//! * **Checkpoints** append a snapshot record and [`FlexLog::trim`] the
//!   prefix it covers, bounding replay cost exactly the way the paper's
//!   Trim API is meant to be used (§6.2).

use std::collections::HashMap;

use flexlog_types::{ColorId, SeqNum};

use crate::{ClientError, ColorError, FlexLog};

const TAG_PUT: u8 = 1;
const TAG_DEL: u8 = 2;
const TAG_CKPT: u8 = 3;
const MAGIC: &[u8; 4] = b"DOB1";

/// See module docs.
pub struct DurableMap {
    handle: FlexLog,
    color: ColorId,
    /// Highest SN applied to `state`.
    cursor: SeqNum,
    state: HashMap<String, Vec<u8>>,
}

impl DurableMap {
    /// Creates the object's color (under `parent`) and an empty map.
    pub fn create(
        mut handle: FlexLog,
        color: ColorId,
        parent: ColorId,
    ) -> Result<Self, ColorError> {
        handle.add_color(color, parent)?;
        Ok(DurableMap {
            handle,
            color,
            cursor: SeqNum::ZERO,
            state: HashMap::new(),
        })
    }

    /// Attaches to an existing object and replays its whole history.
    pub fn attach(handle: FlexLog, color: ColorId) -> Result<Self, ClientError> {
        let mut map = DurableMap {
            handle,
            color,
            cursor: SeqNum::ZERO,
            state: HashMap::new(),
        };
        map.sync()?;
        Ok(map)
    }

    /// The object's color.
    pub fn color(&self) -> ColorId {
        self.color
    }

    /// Durably sets `key` (visible to every function sharing the color).
    pub fn set(&mut self, key: &str, value: &[u8]) -> Result<SeqNum, ClientError> {
        let rec = encode_put(key, value);
        let sn = self.handle.append(&rec, self.color)?;
        // Catch up through our own write so reads-after-writes hold even
        // if other writers interleaved.
        self.sync()?;
        Ok(sn)
    }

    /// Durably removes `key`.
    pub fn delete(&mut self, key: &str) -> Result<SeqNum, ClientError> {
        let mut rec = Vec::with_capacity(5 + key.len());
        rec.extend_from_slice(MAGIC);
        rec.push(TAG_DEL);
        rec.extend_from_slice(key.as_bytes());
        let sn = self.handle.append(&rec, self.color)?;
        self.sync()?;
        Ok(sn)
    }

    /// Replays every record past the local cursor into the in-memory state.
    pub fn sync(&mut self) -> Result<(), ClientError> {
        let records = self.handle.subscribe_from(self.color, self.cursor)?;
        for r in records {
            self.apply(&r.payload);
            self.cursor = self.cursor.max(r.sn);
        }
        Ok(())
    }

    /// Reads `key` from the synced state (call [`DurableMap::sync`] first
    /// for cross-function freshness; own writes are always visible).
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.state.get(key).map(|v| v.as_slice())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no key is set.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// All keys, sorted (for deterministic iteration).
    pub fn keys(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.state.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Writes a checkpoint record holding the full state and trims every
    /// record before it: replay cost for future attachers becomes O(state)
    /// instead of O(history).
    pub fn checkpoint(&mut self) -> Result<SeqNum, ClientError> {
        self.sync()?;
        let rec = encode_ckpt(&self.state);
        let ckpt_sn = self.handle.append(&rec, self.color)?;
        self.cursor = self.cursor.max(ckpt_sn);
        // Trim everything strictly before the checkpoint. SNs are dense
        // per color only between failovers, so trim at (counter - 1) of
        // the checkpoint's own SN.
        if ckpt_sn.counter() > 1 {
            let before = SeqNum::new(ckpt_sn.epoch(), ckpt_sn.counter() - 1);
            self.handle.trim(before, self.color)?;
        }
        Ok(ckpt_sn)
    }

    /// Releases the wrapped handle.
    pub fn into_handle(self) -> FlexLog {
        self.handle
    }

    fn apply(&mut self, payload: &[u8]) {
        match decode(payload) {
            Some(Record::Put(k, v)) => {
                self.state.insert(k, v);
            }
            Some(Record::Del(k)) => {
                self.state.remove(&k);
            }
            Some(Record::Ckpt(full)) => {
                self.state = full;
            }
            None => {
                // Foreign record on the object's color: ignore (the color
                // may be shared with other uses; durable objects only apply
                // their own records).
            }
        }
    }
}

enum Record {
    Put(String, Vec<u8>),
    Del(String),
    Ckpt(HashMap<String, Vec<u8>>),
}

fn encode_put(key: &str, value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(9 + key.len() + value.len());
    rec.extend_from_slice(MAGIC);
    rec.push(TAG_PUT);
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key.as_bytes());
    rec.extend_from_slice(value);
    rec
}

fn encode_ckpt(state: &HashMap<String, Vec<u8>>) -> Vec<u8> {
    let mut rec = Vec::new();
    rec.extend_from_slice(MAGIC);
    rec.push(TAG_CKPT);
    rec.extend_from_slice(&(state.len() as u32).to_le_bytes());
    let mut keys: Vec<&String> = state.keys().collect();
    keys.sort();
    for k in keys {
        let v = &state[k];
        rec.extend_from_slice(&(k.len() as u32).to_le_bytes());
        rec.extend_from_slice(k.as_bytes());
        rec.extend_from_slice(&(v.len() as u32).to_le_bytes());
        rec.extend_from_slice(v);
    }
    rec
}

fn decode(payload: &[u8]) -> Option<Record> {
    if payload.len() < 5 || &payload[..4] != MAGIC {
        return None;
    }
    let tag = payload[4];
    let body = &payload[5..];
    match tag {
        TAG_PUT => {
            let klen = u32::from_le_bytes(body.get(0..4)?.try_into().ok()?) as usize;
            let key = String::from_utf8(body.get(4..4 + klen)?.to_vec()).ok()?;
            let value = body.get(4 + klen..)?.to_vec();
            Some(Record::Put(key, value))
        }
        TAG_DEL => {
            let key = String::from_utf8(body.to_vec()).ok()?;
            Some(Record::Del(key))
        }
        TAG_CKPT => {
            let count = u32::from_le_bytes(body.get(0..4)?.try_into().ok()?) as usize;
            let mut off = 4usize;
            let mut state = HashMap::with_capacity(count);
            for _ in 0..count {
                let klen =
                    u32::from_le_bytes(body.get(off..off + 4)?.try_into().ok()?) as usize;
                off += 4;
                let key = String::from_utf8(body.get(off..off + klen)?.to_vec()).ok()?;
                off += klen;
                let vlen =
                    u32::from_le_bytes(body.get(off..off + 4)?.try_into().ok()?) as usize;
                off += 4;
                let value = body.get(off..off + vlen)?.to_vec();
                off += vlen;
                state.insert(key, value);
            }
            Some(Record::Ckpt(state))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterSpec, FlexLogCluster};

    const OBJ: ColorId = ColorId(60);

    #[test]
    fn set_get_roundtrip() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut map = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        map.set("alpha", b"1").unwrap();
        map.set("beta", b"2").unwrap();
        assert_eq!(map.get("alpha"), Some(b"1".as_slice()));
        assert_eq!(map.get("beta"), Some(b"2".as_slice()));
        assert_eq!(map.get("gamma"), None);
        assert_eq!(map.keys(), vec!["alpha", "beta"]);
        cluster.shutdown();
    }

    #[test]
    fn overwrite_and_delete() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut map = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        map.set("k", b"v1").unwrap();
        map.set("k", b"v2").unwrap();
        assert_eq!(map.get("k"), Some(b"v2".as_slice()));
        map.delete("k").unwrap();
        assert_eq!(map.get("k"), None);
        assert!(map.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn state_is_shared_between_functions() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut writer = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        writer.set("shared", b"hello").unwrap();

        // A second function attaches and sees the state.
        let mut reader = DurableMap::attach(cluster.handle(), OBJ).unwrap();
        assert_eq!(reader.get("shared"), Some(b"hello".as_slice()));

        // Later writes become visible after sync.
        writer.set("shared", b"updated").unwrap();
        assert_eq!(reader.get("shared"), Some(b"hello".as_slice()), "stale before sync");
        reader.sync().unwrap();
        assert_eq!(reader.get("shared"), Some(b"updated".as_slice()));
        cluster.shutdown();
    }

    #[test]
    fn checkpoint_compacts_history() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut map = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        for i in 0..20 {
            map.set("counter", format!("{i}").as_bytes()).unwrap();
        }
        map.checkpoint().unwrap();

        // The log now holds (at most) the checkpoint record plus nothing
        // older; a fresh attacher replays O(state) records.
        let mut probe = cluster.handle();
        let log = probe.subscribe(OBJ).unwrap();
        assert!(
            log.len() <= 2,
            "history must be trimmed to the checkpoint, got {} records",
            log.len()
        );
        let reader = DurableMap::attach(probe_handle(&cluster), OBJ).unwrap();
        assert_eq!(reader.get("counter"), Some(b"19".as_slice()));
        cluster.shutdown();
    }

    fn probe_handle(cluster: &FlexLogCluster) -> crate::FlexLog {
        cluster.handle()
    }

    #[test]
    fn checkpoint_then_more_writes() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut map = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        map.set("a", b"1").unwrap();
        map.checkpoint().unwrap();
        map.set("b", b"2").unwrap();
        map.delete("a").unwrap();

        let reader = DurableMap::attach(cluster.handle(), OBJ).unwrap();
        assert_eq!(reader.get("a"), None);
        assert_eq!(reader.get("b"), Some(b"2".as_slice()));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_writers_converge() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let seed = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        drop(seed);

        let mut handles = Vec::new();
        for w in 0..3 {
            let h = cluster.handle();
            handles.push(std::thread::spawn(move || {
                let mut m = DurableMap::attach(h, OBJ).unwrap();
                for i in 0..5 {
                    m.set(&format!("w{w}-k{i}"), b"x").unwrap();
                    m.set("contended", format!("{w}").as_bytes()).unwrap();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        // All readers converge to the same state (the color's total order).
        let a = DurableMap::attach(cluster.handle(), OBJ).unwrap();
        let b = DurableMap::attach(cluster.handle(), OBJ).unwrap();
        assert_eq!(a.len(), 16, "15 distinct keys + the contended one");
        assert_eq!(a.keys(), b.keys());
        assert_eq!(a.get("contended"), b.get("contended"));
        cluster.shutdown();
    }

    #[test]
    fn foreign_records_are_ignored() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let mut map = DurableMap::create(cluster.handle(), OBJ, ColorId::MASTER).unwrap();
        map.set("real", b"1").unwrap();
        // Someone else appends a non-object record to the same color.
        let mut other = cluster.handle();
        other.append(b"not a durable-object record", OBJ).unwrap();
        let mut reader = DurableMap::attach(cluster.handle(), OBJ).unwrap();
        reader.sync().unwrap();
        assert_eq!(reader.len(), 1);
        assert_eq!(reader.get("real"), Some(b"1".as_slice()));
        cluster.shutdown();
    }

    #[test]
    fn encode_decode_roundtrips() {
        match decode(&encode_put("key", b"value")) {
            Some(Record::Put(k, v)) => {
                assert_eq!(k, "key");
                assert_eq!(v, b"value");
            }
            _ => panic!("put roundtrip failed"),
        }
        let mut state = HashMap::new();
        state.insert("a".to_string(), b"1".to_vec());
        state.insert("b".to_string(), vec![0u8; 100]);
        match decode(&encode_ckpt(&state)) {
            Some(Record::Ckpt(s)) => assert_eq!(s, state),
            _ => panic!("ckpt roundtrip failed"),
        }
        assert!(decode(b"garbage").is_none());
    }
}
