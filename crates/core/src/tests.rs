//! End-to-end tests of the public API on full clusters.

use std::time::Duration;

use flexlog_types::{ColorId, SeqNum};

use crate::{Barrier, ClusterSpec, DistributedLock, FlexLogCluster, MessageQueue};

const RED: ColorId = ColorId(10);
const BLACK: ColorId = ColorId(11);

#[test]
fn single_shard_append_read() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    let sn = h.append(b"first", RED).unwrap();
    assert_eq!(h.read(sn, RED).unwrap().unwrap(), b"first");
    cluster.shutdown();
}

#[test]
fn tree_cluster_routes_colors_to_leaves() {
    // 2 leaves × 1 shard; a leaf-local color orders without the root.
    let cluster = FlexLogCluster::start(ClusterSpec::tree(2, 1));
    let leaf = cluster.leaf_roles()[0];
    cluster.colors().add_color_at(RED, leaf).unwrap();
    let mut h = cluster.handle();
    let sn1 = h.append(b"a", RED).unwrap();
    let sn2 = h.append(b"b", RED).unwrap();
    assert!(sn2 > sn1);
    assert_eq!(h.read(sn1, RED).unwrap().unwrap(), b"a");
    // The root never issued SNs for this color.
    use std::sync::atomic::Ordering;
    assert_eq!(
        cluster
            .ordering()
            .stats(flexlog_ordering::RoleId(0))
            .sns_issued
            .load(Ordering::Relaxed),
        0
    );
    cluster.shutdown();
}

#[test]
fn root_ordered_color_spans_all_leaves() {
    let cluster = FlexLogCluster::start(ClusterSpec::tree(2, 1));
    cluster.add_color(RED).unwrap(); // under master → root-owned
    let mut h = cluster.handle();
    let mut last = SeqNum::ZERO;
    for i in 0..10u32 {
        let sn = h.append(format!("g{i}").as_bytes(), RED).unwrap();
        assert!(sn > last, "global total order across leaves");
        last = sn;
    }
    cluster.shutdown();
}

#[test]
fn add_color_api_from_handle() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    let mut h = cluster.handle();
    h.add_color(RED, ColorId::MASTER).unwrap();
    h.add_color(BLACK, RED).unwrap(); // nested region
    assert_eq!(h.colors().parent(BLACK), Some(RED));
    let sn = h.append(b"nested", BLACK).unwrap();
    assert_eq!(h.read(sn, BLACK).unwrap().unwrap(), b"nested");
    cluster.shutdown();
}

#[test]
fn message_queue_between_two_functions() {
    // Listing 1: Func1 appends data to the yellow log, creates the black
    // queue and enqueues the data's SN; Func2 looks the entry up.
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    let yellow = ColorId(21);
    let black = ColorId(22);
    cluster.add_color(yellow).unwrap();

    // Func1.
    let mut f1 = cluster.handle();
    let sn_y = f1.append(b"the data", yellow).unwrap();
    let mut mq1 = MessageQueue::create(f1, black, ColorId::MASTER).unwrap();
    mq1.enqueue(&sn_y.0.to_le_bytes()).unwrap();

    // Func2.
    let f2 = cluster.handle();
    let mut mq2 = MessageQueue::attach(f2, black);
    let found = mq2
        .wait_for(&sn_y.0.to_le_bytes(), Duration::from_secs(5))
        .unwrap();
    assert!(found.is_some(), "Func2 must find the enqueued index");
    // Follow the pointer back to the yellow log.
    let mut h2 = mq2.into_handle();
    assert_eq!(h2.read(sn_y, yellow).unwrap().unwrap(), b"the data");
    cluster.shutdown();
}

#[test]
fn queue_poll_new_is_incremental() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    let mut mq = MessageQueue::create(cluster.handle(), RED, ColorId::MASTER).unwrap();
    mq.enqueue(b"one").unwrap();
    mq.enqueue(b"two").unwrap();
    let first = mq.poll_new().unwrap();
    assert_eq!(first.len(), 2);
    assert!(mq.poll_new().unwrap().is_empty(), "cursor advanced");
    mq.enqueue(b"three").unwrap();
    let next = mq.poll_new().unwrap();
    assert_eq!(next.len(), 1);
    assert_eq!(next[0].1, b"three");
    cluster.shutdown();
}

#[test]
fn barrier_synchronizes_parties() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(BLACK).unwrap();
    let barrier = Barrier::new(BLACK, 3);

    // Two arrive; the barrier must not pass yet.
    let mut a = cluster.handle();
    let mut b = cluster.handle();
    barrier.arrive(&mut a, 1).unwrap();
    barrier.arrive(&mut b, 2).unwrap();
    assert!(!barrier.wait(&mut a, Duration::from_millis(200)).unwrap());

    // Third arrival releases everyone.
    let mut c = cluster.handle();
    barrier.arrive(&mut c, 3).unwrap();
    assert!(barrier.wait(&mut a, Duration::from_secs(5)).unwrap());
    assert!(barrier.wait(&mut b, Duration::from_secs(5)).unwrap());
    cluster.shutdown();
}

#[test]
fn barrier_generations_are_independent() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(BLACK).unwrap();
    let mut barrier = Barrier::new(BLACK, 2);
    let mut a = cluster.handle();
    let mut b = cluster.handle();
    barrier.arrive(&mut a, 1).unwrap();
    barrier.arrive(&mut b, 2).unwrap();
    assert!(barrier.wait(&mut a, Duration::from_secs(5)).unwrap());
    barrier.next_generation();
    // Old arrivals must not satisfy the new generation.
    assert!(!barrier.wait(&mut a, Duration::from_millis(200)).unwrap());
    cluster.shutdown();
}

#[test]
fn distributed_lock_mutual_exclusion() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(BLACK).unwrap();
    let lock = DistributedLock::new(BLACK);

    let mut a = cluster.handle();
    let guard_a = lock.acquire(&mut a, 1, Duration::from_secs(5)).unwrap();

    // A second acquirer times out while A holds the lock.
    let mut b = cluster.handle();
    assert!(matches!(
        lock.acquire(&mut b, 2, Duration::from_millis(300)),
        Err(crate::LockError::Timeout)
    ));

    // After release, B gets it.
    guard_a.release(&mut a).unwrap();
    let guard_b = lock.acquire(&mut b, 2, Duration::from_secs(5)).unwrap();
    guard_b.release(&mut b).unwrap();
    cluster.shutdown();
}

#[test]
fn multi_append_through_handle() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    cluster.add_color(BLACK).unwrap();
    let mut h = cluster.handle();
    h.multi_append(&[
        (RED, vec![b"r1".to_vec()]),
        (BLACK, vec![b"b1".to_vec(), b"b2".to_vec()]),
    ])
    .unwrap();
    assert_eq!(h.subscribe(RED).unwrap().len(), 1);
    assert_eq!(h.subscribe(BLACK).unwrap().len(), 2);
    cluster.shutdown();
}

#[test]
fn multi_tenant_colors_are_isolated() {
    // §5.1 multi-tenancy: unrelated applications define distinct colors; no
    // ordering relation exists between them and neither sees the other's
    // data.
    let cluster = FlexLogCluster::start(ClusterSpec::tree(2, 1));
    let tenant_a = ColorId(31);
    let tenant_b = ColorId(32);
    cluster.colors().add_color_at(tenant_a, cluster.leaf_roles()[0]).unwrap();
    cluster.colors().add_color_at(tenant_b, cluster.leaf_roles()[1]).unwrap();

    let mut a = cluster.handle();
    let mut b = cluster.handle();
    for i in 0..5u32 {
        a.append(format!("a{i}").as_bytes(), tenant_a).unwrap();
        b.append(format!("b{i}").as_bytes(), tenant_b).unwrap();
    }
    let log_a = a.subscribe(tenant_a).unwrap();
    let log_b = b.subscribe(tenant_b).unwrap();
    assert_eq!(log_a.len(), 5);
    assert_eq!(log_b.len(), 5);
    assert!(log_a.iter().all(|r| r.payload.starts_with(b"a")));
    assert!(log_b.iter().all(|r| r.payload.starts_with(b"b")));
    cluster.shutdown();
}

#[test]
fn trim_through_handle() {
    let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    let mut sns = Vec::new();
    for i in 0..6u32 {
        sns.push(h.append(format!("{i}").as_bytes(), RED).unwrap());
    }
    h.trim(sns[2], RED).unwrap();
    assert_eq!(h.read(sns[0], RED).unwrap(), None);
    assert_eq!(h.read(sns[3], RED).unwrap().unwrap(), b"3");
    assert_eq!(h.subscribe(RED).unwrap().len(), 3);
    cluster.shutdown();
}
