//! Coordination primitives on the log (§5.1 "Applications can also express
//! causality by implementing synchronization primitives, i.e., locks and
//! barriers").
//!
//! Both primitives are plain append/subscribe users of one color, so they
//! inherit the log's fault tolerance — a crashed participant's records are
//! still there after recovery.

use std::time::{Duration, Instant};

use flexlog_types::ColorId;

use crate::{ClientError, FlexLog};

/// A `parties`-way barrier: every participant appends an arrival record to
/// the barrier color; `wait` completes when all arrivals are visible. This
/// is exactly the map-reduce recipe of §5.1 (mappers append final records
/// to the black log; reducers wait for all of them).
pub struct Barrier {
    color: ColorId,
    parties: usize,
    generation: u64,
}

impl Barrier {
    /// A barrier for `parties` participants on `color` (the color must
    /// already exist).
    pub fn new(color: ColorId, parties: usize) -> Self {
        Barrier {
            color,
            parties,
            generation: 0,
        }
    }

    /// Appends this participant's arrival record.
    pub fn arrive(&self, handle: &mut FlexLog, participant: u32) -> Result<(), ClientError> {
        let rec = encode_arrival(self.generation, participant);
        handle.append(&rec, self.color)?;
        Ok(())
    }

    /// Blocks until all `parties` arrivals of the current generation are
    /// visible, or `timeout` elapses (returns false).
    pub fn wait(&self, handle: &mut FlexLog, timeout: Duration) -> Result<bool, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let log = handle.subscribe(self.color)?;
            let mut seen = std::collections::HashSet::new();
            for r in &log {
                if let Some((generation, participant)) = decode_arrival(&r.payload) {
                    if generation == self.generation {
                        seen.insert(participant);
                    }
                }
            }
            if seen.len() >= self.parties {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Moves to the next barrier generation (reuse across phases).
    pub fn next_generation(&mut self) {
        self.generation += 1;
    }
}

fn encode_arrival(generation: u64, participant: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(b"BAR1");
    v.extend_from_slice(&generation.to_le_bytes());
    v.extend_from_slice(&participant.to_le_bytes());
    v
}

fn decode_arrival(v: &[u8]) -> Option<(u64, u32)> {
    if v.len() != 16 || &v[..4] != b"BAR1" {
        return None;
    }
    Some((
        u64::from_le_bytes(v[4..12].try_into().ok()?),
        u32::from_le_bytes(v[12..16].try_into().ok()?),
    ))
}

/// Errors from lock operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The lock was not acquired within the timeout.
    Timeout,
    /// Underlying log error.
    Client(ClientError),
}

impl From<ClientError> for LockError {
    fn from(e: ClientError) -> Self {
        LockError::Client(e)
    }
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Timeout => write!(f, "lock acquisition timed out"),
            LockError::Client(e) => write!(f, "log error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// A fair distributed lock on one color: acquirers append request records;
/// the holder is the oldest request without a matching release (the log's
/// total order is the ticket queue — a ZooKeeper-style recipe [76]).
pub struct DistributedLock {
    color: ColorId,
}

/// An acquired lock (release explicitly; there is no drop-release because
/// releasing requires a handle).
pub struct LockGuard {
    color: ColorId,
    ticket: u64,
}

impl DistributedLock {
    /// A lock living on `color` (must already exist).
    pub fn new(color: ColorId) -> Self {
        DistributedLock { color }
    }

    /// Appends an acquire record and waits until it is the oldest
    /// unreleased one.
    pub fn acquire(
        &self,
        handle: &mut FlexLog,
        owner: u32,
        timeout: Duration,
    ) -> Result<LockGuard, LockError> {
        // The ticket is the SN counter of our acquire record: unique and
        // totally ordered by the color's sequencer.
        let deadline = Instant::now() + timeout;
        let sn = handle.append(&encode_lock(b"ACQ1", owner, 0), self.color)?;
        let ticket = sn.0;
        loop {
            let log = handle.subscribe(self.color)?;
            let mut released = std::collections::HashSet::new();
            for r in &log {
                if let Some((kind, _owner, t)) = decode_lock(&r.payload) {
                    if kind == *b"REL1" {
                        released.insert(t);
                    }
                }
            }
            // Oldest unreleased acquire wins.
            let holder = log.iter().find_map(|r| {
                let (kind, _owner, _) = decode_lock(&r.payload)?;
                if kind == *b"ACQ1" && !released.contains(&r.sn.0) {
                    Some(r.sn.0)
                } else {
                    None
                }
            });
            if holder == Some(ticket) {
                return Ok(LockGuard {
                    color: self.color,
                    ticket,
                });
            }
            if Instant::now() >= deadline {
                // Abandon the ticket so it cannot block later acquirers.
                handle.append(&encode_lock(b"REL1", owner, ticket), self.color)?;
                return Err(LockError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl LockGuard {
    /// Releases the lock by appending the matching release record.
    pub fn release(self, handle: &mut FlexLog) -> Result<(), ClientError> {
        handle.append(&encode_lock(b"REL1", 0, self.ticket), self.color)?;
        Ok(())
    }

    /// The guard's ticket (diagnostics).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }
}

fn encode_lock(kind: &[u8; 4], owner: u32, ticket: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(kind);
    v.extend_from_slice(&owner.to_le_bytes());
    v.extend_from_slice(&ticket.to_le_bytes());
    v
}

fn decode_lock(v: &[u8]) -> Option<([u8; 4], u32, u64)> {
    if v.len() != 16 {
        return None;
    }
    let kind: [u8; 4] = v[..4].try_into().ok()?;
    if kind != *b"ACQ1" && kind != *b"REL1" {
        return None;
    }
    Some((
        kind,
        u32::from_le_bytes(v[4..8].try_into().ok()?),
        u64::from_le_bytes(v[8..16].try_into().ok()?),
    ))
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn arrival_roundtrip() {
        let enc = encode_arrival(3, 7);
        assert_eq!(decode_arrival(&enc), Some((3, 7)));
        assert_eq!(decode_arrival(b"junk"), None);
    }

    #[test]
    fn lock_record_roundtrip() {
        let enc = encode_lock(b"ACQ1", 2, 99);
        assert_eq!(decode_lock(&enc), Some((*b"ACQ1", 2, 99)));
        assert_eq!(decode_lock(&encode_arrival(1, 1)), None);
    }
}
