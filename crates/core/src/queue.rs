//! A durable message queue between serverless functions — the paper's
//! Listing 1, in Rust.
//!
//! A queue is just a color: `enqueue` appends, `get` reads by index,
//! `lookup` scans for an expected record. Because the color is totally
//! ordered by its sequencer, consumers see one consistent queue order.

use std::time::{Duration, Instant};

use flexlog_types::{ColorId, SeqNum};

use crate::{ClientError, FlexLog};

/// See module docs.
pub struct MessageQueue {
    color: ColorId,
    handle: FlexLog,
    /// Cursor for incremental consumption.
    cursor: SeqNum,
}

impl MessageQueue {
    /// Creates the queue's color (under `parent`) and wraps the handle.
    pub fn create(
        mut handle: FlexLog,
        color: ColorId,
        parent: ColorId,
    ) -> Result<Self, crate::ColorError> {
        handle.add_color(color, parent)?;
        Ok(MessageQueue {
            color,
            handle,
            cursor: SeqNum::ZERO,
        })
    }

    /// Attaches to an existing queue color.
    pub fn attach(handle: FlexLog, color: ColorId) -> Self {
        MessageQueue {
            color,
            handle,
            cursor: SeqNum::ZERO,
        }
    }

    /// The queue's color.
    pub fn color(&self) -> ColorId {
        self.color
    }

    /// Enqueues a record; returns its position (Listing 1 `Enqueue`).
    pub fn enqueue(&mut self, record: &[u8]) -> Result<SeqNum, ClientError> {
        self.handle.append(record, self.color)
    }

    /// Reads the record at position `idx` (Listing 1 `Get`).
    pub fn get(&mut self, idx: SeqNum) -> Result<Option<Vec<u8>>, ClientError> {
        Ok(self.handle.read(idx, self.color)?.map(|p| p.to_vec()))
    }

    /// Scans the whole queue for `expected`; returns its position if
    /// present (Listing 1 `getIdx`).
    pub fn lookup(&mut self, expected: &[u8]) -> Result<Option<SeqNum>, ClientError> {
        let log = self.handle.subscribe(self.color)?;
        Ok(log
            .into_iter()
            .find(|r| r.payload == expected)
            .map(|r| r.sn))
    }

    /// Polls [`MessageQueue::lookup`] until `expected` appears or `timeout`
    /// elapses (Listing 1 `Func2`'s wait loop).
    pub fn wait_for(
        &mut self,
        expected: &[u8],
        timeout: Duration,
    ) -> Result<Option<SeqNum>, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(sn) = self.lookup(expected)? {
                return Ok(Some(sn));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Drains records the cursor has not seen yet, in order.
    pub fn poll_new(&mut self) -> Result<Vec<(SeqNum, Vec<u8>)>, ClientError> {
        let records = self.handle.subscribe_from(self.color, self.cursor)?;
        if let Some(last) = records.last() {
            self.cursor = last.sn;
        }
        Ok(records.into_iter().map(|r| (r.sn, r.payload.to_vec())).collect())
    }

    /// Releases the wrapped handle.
    pub fn into_handle(self) -> FlexLog {
        self.handle
    }
}
