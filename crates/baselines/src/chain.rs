//! Chain replication [125] — the data-layer topology of Corfu and FuzzyLog,
//! used as a latency comparison point.
//!
//! A write enters at the **head**, propagates node by node to the **tail**,
//! and is acknowledged by the tail; reads are served by the tail. With `r`
//! replicas a write therefore crosses `r` sequential network hops before the
//! ack, whereas FlexLog's client broadcasts to all replicas in parallel
//! (§5.2) — the latency difference the paper calls out for FuzzyLog's
//! partitions (§3.2).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use flexlog_simnet::{Endpoint, Network, NodeId, RecvError};

/// Chain messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ChainMsg {
    /// Client → head (then node → successor): store `value` under `key`.
    Write {
        key: u64,
        value: Vec<u8>,
        client: NodeId,
        req: u64,
    },
    /// Tail → client: write fully replicated.
    WriteAck { req: u64 },
    /// Client → tail: read `key`.
    Read { key: u64, req: u64 },
    /// Tail → client.
    ReadResp { req: u64, value: Option<Vec<u8>> },
    Shutdown,
}

/// One chain node; knows only its successor.
pub struct ChainNode {
    successor: Option<NodeId>,
}

impl ChainNode {
    pub fn new(successor: Option<NodeId>) -> Self {
        ChainNode { successor }
    }

    /// Runs until shutdown. The tail (no successor) acks writes and serves
    /// reads.
    pub fn run(self, ep: Endpoint<ChainMsg>) {
        let mut store: HashMap<u64, Vec<u8>> = HashMap::new();
        loop {
            match ep.recv() {
                Ok((_, ChainMsg::Write { key, value, client, req })) => {
                    store.insert(key, value.clone());
                    match self.successor {
                        Some(next) => {
                            let _ = ep.send(next, ChainMsg::Write { key, value, client, req });
                        }
                        None => {
                            // Tail: the write is fully replicated.
                            let _ = ep.send(client, ChainMsg::WriteAck { req });
                        }
                    }
                }
                Ok((from, ChainMsg::Read { key, req })) => {
                    let _ = ep.send(
                        from,
                        ChainMsg::ReadResp {
                            req,
                            value: store.get(&key).cloned(),
                        },
                    );
                }
                Ok((_, ChainMsg::Shutdown)) | Err(RecvError::Disconnected) => return,
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
            }
        }
    }
}

/// A running chain.
pub struct Chain {
    pub nodes: Vec<NodeId>,
    threads: Vec<std::thread::JoinHandle<()>>,
    control: Endpoint<ChainMsg>,
}

impl Chain {
    /// Starts a chain of `r` nodes: `nodes[0]` is the head, the last is the
    /// tail.
    pub fn start(net: &Network<ChainMsg>, r: usize) -> Self {
        assert!(r >= 1);
        let nodes: Vec<NodeId> = (0..r).map(|i| NodeId::named(8, i as u64)).collect();
        let mut threads = Vec::new();
        for (i, &id) in nodes.iter().enumerate() {
            let successor = nodes.get(i + 1).copied();
            let node = ChainNode::new(successor);
            let ep = net.register(id);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("chain-{i}"))
                    .spawn(move || node.run(ep))
                    .expect("spawn chain node"),
            );
        }
        let control = net.register(NodeId::named(9, 0));
        Chain {
            nodes,
            threads,
            control,
        }
    }

    pub fn head(&self) -> NodeId {
        self.nodes[0]
    }

    pub fn tail(&self) -> NodeId {
        *self.nodes.last().expect("non-empty chain")
    }

    /// Blocking client write through the whole chain.
    pub fn write(
        ep: &Endpoint<ChainMsg>,
        head: NodeId,
        key: u64,
        value: &[u8],
        req: u64,
        timeout: Duration,
    ) -> Result<(), RecvError> {
        let _ = ep.send(
            head,
            ChainMsg::Write {
                key,
                value: value.to_vec(),
                client: ep.id(),
                req,
            },
        );
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvError::Timeout);
            }
            if let (_, ChainMsg::WriteAck { req: r }) = ep.recv_timeout(left)? {
                if r == req {
                    return Ok(());
                }
            }
        }
    }

    /// Blocking client read from the tail.
    pub fn read(
        ep: &Endpoint<ChainMsg>,
        tail: NodeId,
        key: u64,
        req: u64,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, RecvError> {
        let _ = ep.send(tail, ChainMsg::Read { key, req });
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvError::Timeout);
            }
            if let (_, ChainMsg::ReadResp { req: r, value }) = ep.recv_timeout(left)? {
                if r == req {
                    return Ok(value);
                }
            }
        }
    }

    pub fn shutdown(self) {
        for &n in &self.nodes {
            let _ = self.control.send(n, ChainMsg::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_simnet::{LinkConfig, NetConfig};

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn write_reaches_tail_and_read_sees_it() {
        let net = Network::instant();
        let chain = Chain::start(&net, 3);
        let ep = net.register(NodeId::named(NodeId::CLASS_CLIENT, 1));
        Chain::write(&ep, chain.head(), 7, b"value", 1, T).unwrap();
        let v = Chain::read(&ep, chain.tail(), 7, 2, T).unwrap();
        assert_eq!(v.unwrap(), b"value");
        assert_eq!(Chain::read(&ep, chain.tail(), 8, 3, T).unwrap(), None);
        chain.shutdown();
    }

    #[test]
    fn single_node_chain_works() {
        let net = Network::instant();
        let chain = Chain::start(&net, 1);
        let ep = net.register(NodeId::named(NodeId::CLASS_CLIENT, 1));
        Chain::write(&ep, chain.head(), 1, b"x", 1, T).unwrap();
        assert_eq!(Chain::read(&ep, chain.tail(), 1, 2, T).unwrap().unwrap(), b"x");
        chain.shutdown();
    }

    #[test]
    fn chain_latency_grows_with_length() {
        // With a real link delay, a length-4 chain write must take ≈2× a
        // length-2 chain write (the sequential-hop cost the paper contrasts
        // with FlexLog's parallel broadcast).
        let delay = Duration::from_millis(2);
        let measure = |r: usize| {
            let net = Network::new(NetConfig {
                link: LinkConfig::slow(delay),
                seed: Some(1),
                ..NetConfig::default()
            });
            let chain = Chain::start(&net, r);
            let ep = net.register(NodeId::named(NodeId::CLASS_CLIENT, 1));
            // Warm up.
            Chain::write(&ep, chain.head(), 0, b"w", 0, T).unwrap();
            let start = Instant::now();
            for i in 1..=5u64 {
                Chain::write(&ep, chain.head(), i, b"v", i, T).unwrap();
            }
            let elapsed = start.elapsed();
            chain.shutdown();
            elapsed
        };
        let short = measure(2);
        let long = measure(4);
        assert!(
            long > short + delay * 5,
            "longer chain must cost ≥ 2 extra hops per write: {short:?} vs {long:?}"
        );
    }
}
