//! A Paxos-replicated counter service — the ordering-layer abstraction of
//! Scalog/Boki (§3.3, §9.1).
//!
//! Scalog orders records by replicating the log's tail with Paxos: every
//! batch of order requests is one consensus decision advancing the counter.
//! This module implements:
//!
//! * **Acceptors** with the standard promised/accepted state per instance;
//! * **Proposers** that decide successive instances; each decided instance
//!   `i` carries the number of counter values granted in that decision, so
//!   clients receive ranges exactly like FlexLog's merged OReqs;
//! * **classic mode** — both Paxos phases for every decision (leaderless
//!   multi-proposer Paxos as described in §3.3);
//! * **multi mode** — the Multi-Paxos optimization: phase 1 once, then one
//!   Accept round per decision;
//! * **contention accounting** — with several classic proposers racing,
//!   Nacks force ballot bumps and retries; the stats expose the conflict
//!   rate that produces the livelock the paper observed with libpaxos.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flexlog_simnet::{Endpoint, Network, NodeId, RecvError};

/// Paxos wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg {
    /// Phase 1a: proposer asks acceptors to promise ballot for an instance.
    Prepare { instance: u64, ballot: u64 },
    /// Phase 1b: acceptor promises; reports any previously accepted value.
    Promise {
        instance: u64,
        ballot: u64,
        accepted: Option<(u64, u64)>,
    },
    /// Phase 2a: proposer asks acceptors to accept a value.
    Accept {
        instance: u64,
        ballot: u64,
        value: u64,
    },
    /// Phase 2b: acceptor accepted.
    Accepted { instance: u64, ballot: u64 },
    /// Rejection: the acceptor promised a higher ballot.
    Nack { instance: u64, promised: u64 },

    /// Client → proposer: reserve `n` counter values.
    Next { req: u64, n: u64 },
    /// Proposer → client: the last value of the reserved range.
    NextResp { req: u64, last: u64 },

    Shutdown,
}

/// Per-instance acceptor state.
#[derive(Default, Clone, Copy)]
struct AcceptorSlot {
    promised: u64,
    accepted: Option<(u64, u64)>,
}

/// A Paxos acceptor node.
pub struct AcceptorNode;

impl AcceptorNode {
    /// Runs the acceptor loop until shutdown.
    pub fn run(ep: Endpoint<PaxosMsg>) {
        let mut slots: HashMap<u64, AcceptorSlot> = HashMap::new();
        loop {
            match ep.recv() {
                Ok((from, PaxosMsg::Prepare { instance, ballot })) => {
                    let slot = slots.entry(instance).or_default();
                    if ballot > slot.promised {
                        slot.promised = ballot;
                        let _ = ep.send(
                            from,
                            PaxosMsg::Promise {
                                instance,
                                ballot,
                                accepted: slot.accepted,
                            },
                        );
                    } else {
                        let _ = ep.send(
                            from,
                            PaxosMsg::Nack {
                                instance,
                                promised: slot.promised,
                            },
                        );
                    }
                }
                Ok((from, PaxosMsg::Accept { instance, ballot, value })) => {
                    let slot = slots.entry(instance).or_default();
                    if ballot >= slot.promised {
                        slot.promised = ballot;
                        slot.accepted = Some((ballot, value));
                        let _ = ep.send(from, PaxosMsg::Accepted { instance, ballot });
                    } else {
                        let _ = ep.send(
                            from,
                            PaxosMsg::Nack {
                                instance,
                                promised: slot.promised,
                            },
                        );
                    }
                }
                Ok((_, PaxosMsg::Shutdown)) | Err(RecvError::Disconnected) => return,
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
            }
        }
    }
}

/// Proposer operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposerMode {
    /// Both phases per decision (classic leaderless Paxos, §3.3).
    Classic,
    /// Phase 1 amortized away by a stable leader (Multi-Paxos [124]).
    Multi,
}

/// Counters exposed by a proposer.
#[derive(Debug, Default)]
pub struct ProposerStats {
    pub decisions: AtomicU64,
    pub values_granted: AtomicU64,
    /// Nacks received (conflicts with competing proposers).
    pub conflicts: AtomicU64,
    /// Instances where we had to retry with a higher ballot.
    pub retries: AtomicU64,
    /// Instances lost to a competing proposer's value.
    pub lost_instances: AtomicU64,
}

/// Configuration of a proposer.
#[derive(Clone)]
pub struct ProposerConfig {
    pub acceptors: Vec<NodeId>,
    pub mode: ProposerMode,
    /// Distinct proposer id — ballot tie-breaker (ballot = round * P + id).
    pub id: u64,
    /// Total number of proposers (ballot spacing).
    pub total_proposers: u64,
    /// Batching window for client requests (Scalog batches too).
    pub batch_interval: Duration,
    /// Phase timeout before retrying.
    pub phase_timeout: Duration,
}

impl Default for ProposerConfig {
    fn default() -> Self {
        ProposerConfig {
            acceptors: Vec::new(),
            mode: ProposerMode::Multi,
            id: 0,
            total_proposers: 1,
            batch_interval: Duration::from_micros(1),
            phase_timeout: Duration::from_millis(50),
        }
    }
}

/// A Paxos proposer serving the counter: decides instance after instance,
/// each instance granting a batch of counter values.
pub struct ProposerNode {
    config: ProposerConfig,
    stats: Arc<ProposerStats>,
}

impl ProposerNode {
    pub fn new(config: ProposerConfig) -> Self {
        ProposerNode {
            config,
            stats: Arc::new(ProposerStats::default()),
        }
    }

    pub fn stats(&self) -> Arc<ProposerStats> {
        Arc::clone(&self.stats)
    }

    /// Runs the proposer loop until shutdown.
    pub fn run(self, ep: Endpoint<PaxosMsg>) {
        let majority = self.config.acceptors.len() / 2 + 1;
        let mut next_instance: u64 = 1;
        // Counter tail = sum of batch sizes of all decided instances we
        // know of. With a single proposer this is exact; with contention
        // we track it from our own + observed decisions.
        let mut counter_tail: u64 = 0;
        let mut pending: Vec<(NodeId, u64, u64)> = Vec::new(); // (client, req, n)
        let mut batch_opened: Option<Instant> = None;
        // Multi-Paxos: remember the ballot that already holds promises.
        let mut stable_ballot: Option<u64> = None;

        loop {
            let wait = if pending.is_empty() {
                Duration::from_millis(20)
            } else {
                self.config.batch_interval.max(Duration::from_micros(1))
            };
            match ep.recv_timeout(wait) {
                Ok((from, PaxosMsg::Next { req, n })) => {
                    if pending.is_empty() {
                        batch_opened = Some(Instant::now());
                    }
                    pending.push((from, req, n));
                }
                Ok((_, PaxosMsg::Shutdown)) | Err(RecvError::Disconnected) => return,
                Ok(_) => {} // stale phase messages from a previous decision
                Err(RecvError::Timeout) => {}
            }

            let due = batch_opened
                .is_some_and(|t| Instant::now() - t >= self.config.batch_interval);
            if !pending.is_empty() && due {
                let batch: Vec<(NodeId, u64, u64)> = std::mem::take(&mut pending);
                batch_opened = None;
                let total: u64 = batch.iter().map(|&(_, _, n)| n).sum();
                // One consensus decision advances the tail by `total`
                // (Scalog's batched tail replication).
                match self.decide(
                    &ep,
                    majority,
                    &mut next_instance,
                    total,
                    &mut stable_ballot,
                    &mut pending,
                    &mut batch_opened,
                ) {
                    Some(decided_total) => {
                        counter_tail += decided_total;
                        let mut last = counter_tail;
                        // Distribute the range back to front (arrival order
                        // from the front).
                        let mut cursor = counter_tail - total;
                        for (client, req, n) in batch {
                            cursor += n;
                            last = cursor;
                            let _ = ep.send(client, PaxosMsg::NextResp { req, last });
                        }
                        let _ = last;
                        self.stats
                            .values_granted
                            .fetch_add(total, Ordering::Relaxed);
                    }
                    None => {
                        // Shutdown while deciding.
                        return;
                    }
                }
            }
        }
    }

    /// Decides one instance carrying `total` counter values. Retries (with
    /// ballot bumps) until OUR value is chosen for some instance; skips
    /// instances lost to competing proposers (their totals also advance the
    /// tail, which we account via `lost` bookkeeping — the counter tail the
    /// clients see only needs to be locally monotonic for the benchmark).
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        ep: &Endpoint<PaxosMsg>,
        majority: usize,
        next_instance: &mut u64,
        total: u64,
        stable_ballot: &mut Option<u64>,
        pending: &mut Vec<(NodeId, u64, u64)>,
        batch_opened: &mut Option<Instant>,
    ) -> Option<u64> {
        let mut round: u64 = 1;
        loop {
            let instance = *next_instance;
            let ballot = round * self.config.total_proposers + self.config.id + 1;

            // ---- Phase 1 (skipped by a stable Multi-Paxos leader) -------
            let mut adopted_value: Option<u64> = None;
            let need_phase1 = match self.config.mode {
                ProposerMode::Classic => true,
                ProposerMode::Multi => stable_ballot.is_none(),
            };
            let effective_ballot = if need_phase1 {
                let _ = ep.broadcast(
                    &self.config.acceptors,
                    PaxosMsg::Prepare { instance, ballot },
                );
                let mut promises = 0usize;
                let mut highest_accepted: Option<(u64, u64)> = None;
                let deadline = Instant::now() + self.config.phase_timeout;
                loop {
                    match ep.recv_timeout(self.config.phase_timeout / 4) {
                        Ok((_, PaxosMsg::Promise { instance: i, ballot: b, accepted }))
                            if i == instance && b == ballot =>
                        {
                            promises += 1;
                            if let Some(acc) = accepted {
                                if highest_accepted.is_none_or(|h| acc.0 > h.0) {
                                    highest_accepted = Some(acc);
                                }
                            }
                            if promises >= majority {
                                break;
                            }
                        }
                        Ok((_, PaxosMsg::Nack { instance: i, .. })) if i == instance => {
                            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((from, PaxosMsg::Next { req, n })) => {
                            if pending.is_empty() {
                                *batch_opened = Some(Instant::now());
                            }
                            pending.push((from, req, n));
                        }
                        Ok((_, PaxosMsg::Shutdown)) | Err(RecvError::Disconnected) => {
                            return None;
                        }
                        Ok(_) => {}
                        Err(RecvError::Timeout) => {}
                    }
                    if Instant::now() >= deadline && promises < majority {
                        break;
                    }
                }
                if promises < majority {
                    // Contended or slow: bump the ballot and retry — this is
                    // the §3.3 retry loop that livelocks under contention.
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    round += 1;
                    continue;
                }
                if let Some((_, v)) = highest_accepted {
                    // Must re-propose the previously accepted value.
                    adopted_value = Some(v);
                }
                if self.config.mode == ProposerMode::Multi {
                    *stable_ballot = Some(ballot);
                }
                ballot
            } else {
                stable_ballot.expect("stable leader has a ballot")
            };

            // ---- Phase 2 --------------------------------------------------
            let value = adopted_value.unwrap_or(total);
            let _ = ep.broadcast(
                &self.config.acceptors,
                PaxosMsg::Accept {
                    instance,
                    ballot: effective_ballot,
                    value,
                },
            );
            let mut accepts = 0usize;
            let mut nacked = false;
            let deadline = Instant::now() + self.config.phase_timeout;
            loop {
                match ep.recv_timeout(self.config.phase_timeout / 4) {
                    Ok((_, PaxosMsg::Accepted { instance: i, ballot: b }))
                        if i == instance && b == effective_ballot =>
                    {
                        accepts += 1;
                        if accepts >= majority {
                            break;
                        }
                    }
                    Ok((_, PaxosMsg::Nack { instance: i, .. })) if i == instance => {
                        self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                        nacked = true;
                    }
                    Ok((from, PaxosMsg::Next { req, n })) => {
                        if pending.is_empty() {
                            *batch_opened = Some(Instant::now());
                        }
                        pending.push((from, req, n));
                    }
                    Ok((_, PaxosMsg::Shutdown)) | Err(RecvError::Disconnected) => return None,
                    Ok(_) => {}
                    Err(RecvError::Timeout) => {}
                }
                if Instant::now() >= deadline && accepts < majority {
                    break;
                }
            }
            if accepts >= majority {
                *next_instance += 1;
                self.stats.decisions.fetch_add(1, Ordering::Relaxed);
                if adopted_value.is_some() && adopted_value != Some(total) {
                    // A competitor's value was chosen for this instance; our
                    // batch still needs its own instance.
                    self.stats.lost_instances.fetch_add(1, Ordering::Relaxed);
                    round += 1;
                    continue;
                }
                return Some(value);
            }
            // Lost phase 2: a higher ballot intervened. Drop any stable
            // leadership and retry from phase 1.
            if nacked {
                *stable_ballot = None;
            }
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            round += 1;
        }
    }
}

/// A deployed Paxos counter service: 1+ proposers and `n` acceptors.
pub struct PaxosCounter {
    pub proposer_nodes: Vec<NodeId>,
    pub acceptor_nodes: Vec<NodeId>,
    pub stats: Vec<Arc<ProposerStats>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    control: Endpoint<PaxosMsg>,
}

impl PaxosCounter {
    /// Starts `proposers` proposers (ids 0..) and `acceptors` acceptors.
    pub fn start(
        net: &Network<PaxosMsg>,
        proposers: usize,
        acceptors: usize,
        mode: ProposerMode,
        batch_interval: Duration,
    ) -> Self {
        let acceptor_nodes: Vec<NodeId> = (0..acceptors)
            .map(|i| NodeId::named(5, i as u64))
            .collect();
        let mut threads = Vec::new();
        for &a in &acceptor_nodes {
            let ep = net.register(a);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("acceptor-{a}"))
                    .spawn(move || AcceptorNode::run(ep))
                    .expect("spawn acceptor"),
            );
        }
        let mut proposer_nodes = Vec::new();
        let mut stats = Vec::new();
        for p in 0..proposers {
            let id = NodeId::named(6, p as u64);
            let node = ProposerNode::new(ProposerConfig {
                acceptors: acceptor_nodes.clone(),
                mode,
                id: p as u64,
                total_proposers: proposers as u64,
                batch_interval,
                ..Default::default()
            });
            stats.push(node.stats());
            let ep = net.register(id);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("proposer-{p}"))
                    .spawn(move || node.run(ep))
                    .expect("spawn proposer"),
            );
            proposer_nodes.push(id);
        }
        let control = net.register(NodeId::named(7, 0));
        PaxosCounter {
            proposer_nodes,
            acceptor_nodes,
            stats,
            threads,
            control,
        }
    }

    /// Blocking client call: reserve `n` counter values via `proposer`.
    pub fn next(
        ep: &Endpoint<PaxosMsg>,
        proposer: NodeId,
        req: u64,
        n: u64,
        timeout: Duration,
    ) -> Result<u64, RecvError> {
        let _ = ep.send(proposer, PaxosMsg::Next { req, n });
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvError::Timeout);
            }
            match ep.recv_timeout(left)? {
                (_, PaxosMsg::NextResp { req: r, last }) if r == req => return Ok(last),
                _ => {}
            }
        }
    }

    /// Shuts everything down.
    pub fn shutdown(self) {
        for &n in self.proposer_nodes.iter().chain(&self.acceptor_nodes) {
            let _ = self.control.send(n, PaxosMsg::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_simnet::Network;

    fn client(net: &Network<PaxosMsg>, i: u64) -> Endpoint<PaxosMsg> {
        net.register(NodeId::named(NodeId::CLASS_CLIENT, i))
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn single_proposer_counter_is_monotonic() {
        let net = Network::instant();
        let svc = PaxosCounter::start(&net, 1, 3, ProposerMode::Multi, Duration::from_micros(1));
        let ep = client(&net, 1);
        let mut last = 0;
        for req in 1..=30 {
            let v = PaxosCounter::next(&ep, svc.proposer_nodes[0], req, 1, T).unwrap();
            assert!(v > last, "counter must increase: {v} after {last}");
            last = v;
        }
        assert_eq!(last, 30, "30 single increments end at 30");
        svc.shutdown();
    }

    #[test]
    fn ranges_are_reserved_atomically() {
        let net = Network::instant();
        let svc = PaxosCounter::start(&net, 1, 3, ProposerMode::Multi, Duration::from_micros(1));
        let ep = client(&net, 1);
        let a = PaxosCounter::next(&ep, svc.proposer_nodes[0], 1, 10, T).unwrap();
        let b = PaxosCounter::next(&ep, svc.proposer_nodes[0], 2, 5, T).unwrap();
        assert_eq!(b - a, 5);
        svc.shutdown();
    }

    #[test]
    fn classic_mode_also_decides() {
        let net = Network::instant();
        let svc =
            PaxosCounter::start(&net, 1, 3, ProposerMode::Classic, Duration::from_micros(1));
        let ep = client(&net, 1);
        let v = PaxosCounter::next(&ep, svc.proposer_nodes[0], 1, 3, T).unwrap();
        assert_eq!(v, 3);
        // Classic mode pays phase 1 every time: at least one Prepare per
        // decision, visible as decisions == 1 with no stable leader reuse.
        assert_eq!(svc.stats[0].decisions.load(Ordering::Relaxed), 1);
        svc.shutdown();
    }

    #[test]
    fn concurrent_clients_get_disjoint_ranges() {
        let net = Network::instant();
        let svc = PaxosCounter::start(&net, 1, 3, ProposerMode::Multi, Duration::from_micros(1));
        let mut handles = Vec::new();
        for c in 0..4u64 {
            let ep = client(&net, c + 10);
            let proposer = svc.proposer_nodes[0];
            handles.push(std::thread::spawn(move || {
                (0..10u64)
                    .map(|i| PaxosCounter::next(&ep, proposer, c * 100 + i, 2, T).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut lasts: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        lasts.sort_unstable();
        lasts.dedup();
        assert_eq!(lasts.len(), 40, "every 2-wide range has a distinct end");
        assert_eq!(*lasts.last().unwrap(), 80);
        svc.shutdown();
    }

    #[test]
    fn competing_classic_proposers_conflict() {
        // Two classic proposers race for the same instances: progress is
        // still made eventually (randomized by thread timing) but conflicts
        // and retries accumulate — the §3.3 observation.
        let net = Network::instant();
        let svc =
            PaxosCounter::start(&net, 2, 3, ProposerMode::Classic, Duration::from_micros(1));
        // Without a barrier the first spawned client can race through all of
        // its proposals before the second thread is even scheduled, yielding
        // a conflict-free (and spuriously failing) run.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(svc.proposer_nodes.len()));
        let mut handles = Vec::new();
        for (c, &proposer) in svc.proposer_nodes.iter().enumerate() {
            let ep = client(&net, 50 + c as u64);
            let barrier = std::sync::Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..10u64 {
                    // Distinct batch sizes per client: even a perfectly
                    // serialized interleaving is then detected as a lost
                    // instance (both proposers start at instance 1, and
                    // value-based loss accounting needs distinct values).
                    let _ = PaxosCounter::next(
                        &ep,
                        proposer,
                        (c as u64) * 1000 + i,
                        1 + c as u64,
                        Duration::from_secs(20),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let conflicts: u64 = svc
            .stats
            .iter()
            .map(|s| {
                s.conflicts.load(Ordering::Relaxed)
                    + s.retries.load(Ordering::Relaxed)
                    + s.lost_instances.load(Ordering::Relaxed)
            })
            .sum();
        assert!(
            conflicts > 0,
            "two classic proposers hammering the same instances must conflict"
        );
        svc.shutdown();
    }
}
