//! A miniature LSM storage engine on the simulated SSD — the "Boki
//! (RocksDB)" storage baseline of Figures 5–7.
//!
//! Boki's storage layer is RocksDB with the write-ahead log enabled: every
//! write hits the WAL, durability comes from `fsync`, reads hit the
//! memtable and then SST files on flash. The paper attributes Boki's ~10×
//! storage gap to exactly those "sync syscalls to synchronize the OS's
//! write buffer with the SSD". This engine reproduces that cost structure:
//!
//! * **WAL** — one SSD block per write, group-committed: `fsync` every
//!   `wal_sync_every` writes (1 = synchronous durability per write);
//! * **memtable** — a sorted map flushed to an SST when it exceeds its
//!   byte budget;
//! * **SSTs** — immutable runs of `block_size` data blocks with an
//!   in-memory sparse index; a point read touches exactly one block;
//! * **size-tiered compaction** — when the run count passes the threshold,
//!   all runs merge into one (newest value wins, tombstones drop);
//! * **recovery** — a manifest block names the live SSTs and WAL segment;
//!   [`Db::recover`] rebuilds indexes from the blocks and replays the WAL.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use flexlog_pm::{ClockMode, DeviceClock, SsdDevice, SsdError};

const NS_WAL: u128 = 1 << 96;
const NS_SST: u128 = 2 << 96;
const MANIFEST: u128 = 3 << 96;
/// Tombstone marker in the on-disk length field.
const TOMBSTONE: u32 = u32::MAX;

fn wal_block(seg: u64, entry: u64) -> u128 {
    NS_WAL | ((seg as u128) << 32) | entry as u128
}

fn sst_block(sst: u64, block: u32) -> u128 {
    NS_SST | ((sst as u128) << 32) | block as u128
}

/// LSM configuration.
#[derive(Clone, Debug)]
pub struct LsmConfig {
    /// Memtable byte budget before flushing (RocksDB default: 64 MiB; the
    /// benchmarks use the paper's configuration, tests something tiny).
    pub memtable_limit: usize,
    /// SST data block size.
    pub block_size: usize,
    /// Number of runs that triggers a full merge.
    pub compaction_threshold: usize,
    /// Group-commit size: fsync the WAL every N writes.
    pub wal_sync_every: usize,
    /// Device latency accounting.
    pub clock: ClockMode,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_limit: 1 << 20,
            block_size: 4096,
            compaction_threshold: 4,
            wal_sync_every: 8,
            clock: ClockMode::Off,
        }
    }
}

impl LsmConfig {
    /// The paper's benchmark configuration: 64 MiB memtable, WAL enabled.
    /// Like db_bench's default (`sync=false`), WAL writes land in the page
    /// cache and are fsynced in groups by the engine.
    pub fn boki() -> Self {
        LsmConfig {
            memtable_limit: 64 << 20,
            wal_sync_every: 32,
            ..Default::default()
        }
    }
}

/// An ordered key/value dump, as returned by [`Db::scan`].
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// Errors from DB operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsmError {
    /// Underlying device error.
    Ssd(SsdError),
    /// Corrupt manifest or SST during recovery.
    Corrupt(&'static str),
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Ssd(e) => write!(f, "ssd: {e}"),
            LsmError::Corrupt(what) => write!(f, "corrupt {what}"),
        }
    }
}

impl std::error::Error for LsmError {}

impl From<SsdError> for LsmError {
    fn from(e: SsdError) -> Self {
        LsmError::Ssd(e)
    }
}

struct SstMeta {
    id: u64,
    /// Sparse index: first key of each data block, in block order.
    index: Vec<Vec<u8>>,
}

struct DbInner {
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    memtable_bytes: usize,
    wal_seg: u64,
    wal_entries: u64,
    wal_unsynced: usize,
    /// Newest run first.
    ssts: Vec<SstMeta>,
    next_sst: u64,
}

/// Operation counters.
#[derive(Debug, Default)]
pub struct LsmStats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub memtable_hits: AtomicU64,
    pub sst_hits: AtomicU64,
    pub flushes: AtomicU64,
    pub compactions: AtomicU64,
    pub wal_syncs: AtomicU64,
}

/// In-memory engine work for a point lookup (skiplist traversal, bloom
/// checks — RocksDB memtable gets cost ~0.5–1 µs).
const MEMTABLE_GET_NS: u64 = 600;

/// See module docs.
pub struct Db {
    ssd: Arc<SsdDevice>,
    inner: Mutex<DbInner>,
    config: LsmConfig,
    clock: DeviceClock,
    pub stats: LsmStats,
}

impl Db {
    /// Creates a fresh database.
    pub fn create(config: LsmConfig) -> Self {
        let clock = DeviceClock::new(config.clock);
        let ssd = Arc::new(SsdDevice::new(clock));
        Db {
            ssd,
            inner: Mutex::new(DbInner {
                memtable: BTreeMap::new(),
                memtable_bytes: 0,
                wal_seg: 0,
                wal_entries: 0,
                wal_unsynced: 0,
                ssts: Vec::new(),
                next_sst: 0,
            }),
            config,
            clock,
            stats: LsmStats::default(),
        }
    }

    /// Recovers a database from a crashed SSD: loads the manifest, rebuilds
    /// SST indexes from their blocks, replays the WAL into the memtable.
    pub fn recover(ssd: Arc<SsdDevice>, config: LsmConfig) -> Result<Self, LsmError> {
        let (wal_seg, sst_ids) = match ssd.read_block(MANIFEST) {
            Ok(m) => decode_manifest(&m)?,
            Err(SsdError::NotFound(_)) => (0, Vec::new()),
        };
        let mut ssts = Vec::new();
        let mut next_sst = 0;
        for (id, blocks) in sst_ids {
            next_sst = next_sst.max(id + 1);
            let mut index = Vec::with_capacity(blocks as usize);
            for b in 0..blocks {
                let data = ssd.read_block(sst_block(id, b))?;
                let first = decode_entries(&data)
                    .next()
                    .ok_or(LsmError::Corrupt("empty sst block"))?
                    .0;
                index.push(first);
            }
            ssts.push(SstMeta { id, index });
        }
        // Replay WAL entries of the live segment in order.
        let mut memtable = BTreeMap::new();
        let mut memtable_bytes = 0usize;
        let mut entry = 0u64;
        while let Ok(data) = ssd.read_block(wal_block(wal_seg, entry)) {
            if let Some((k, v)) = decode_entries(&data).next() {
                memtable_bytes += k.len() + v.as_ref().map_or(0, |v| v.len());
                memtable.insert(k, v);
            }
            entry += 1;
        }
        let clock = DeviceClock::new(config.clock);
        Ok(Db {
            ssd,
            inner: Mutex::new(DbInner {
                memtable,
                memtable_bytes,
                wal_seg,
                wal_entries: entry,
                wal_unsynced: 0,
                ssts,
                next_sst,
            }),
            config,
            clock,
            stats: LsmStats::default(),
        })
    }

    /// Inserts (or overwrites) `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), LsmError> {
        self.write(key, Some(value))
    }

    /// Deletes `key` (tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<(), LsmError> {
        self.write(key, None)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) -> Result<(), LsmError> {
        let mut inner = self.inner.lock();
        // 1. WAL first (durability before visibility).
        let entry = encode_entry(key, value);
        let block = wal_block(inner.wal_seg, inner.wal_entries);
        self.ssd.write_block(block, &entry);
        inner.wal_entries += 1;
        inner.wal_unsynced += 1;
        if inner.wal_unsynced >= self.config.wal_sync_every {
            self.ssd.fsync();
            inner.wal_unsynced = 0;
            self.stats.wal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        // 2. Memtable.
        inner.memtable_bytes += key.len() + value.map_or(0, |v| v.len());
        inner.memtable.insert(key.to_vec(), value.map(|v| v.to_vec()));
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        // 3. Flush + compaction.
        if inner.memtable_bytes >= self.config.memtable_limit {
            self.flush_locked(&mut inner)?;
            if inner.ssts.len() > self.config.compaction_threshold {
                self.compact_locked(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, LsmError> {
        let inner = self.inner.lock();
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.clock.consume(MEMTABLE_GET_NS);
        if let Some(v) = inner.memtable.get(key) {
            self.stats.memtable_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.clone());
        }
        for sst in &inner.ssts {
            // Sparse index: the candidate block is the last one whose first
            // key is ≤ key.
            let block = match sst.index.partition_point(|first| first.as_slice() <= key) {
                0 => continue, // key below this run's range
                n => (n - 1) as u32,
            };
            let data = self.ssd.read_block(sst_block(sst.id, block))?;
            for (k, v) in decode_entries(&data) {
                if k == key {
                    self.stats.sst_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(v);
                }
            }
        }
        Ok(None)
    }

    /// Full ordered scan (merges memtable and every run, newest wins).
    pub fn scan(&self) -> Result<KvPairs, LsmError> {
        let inner = self.inner.lock();
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest first so newer layers overwrite.
        for sst in inner.ssts.iter().rev() {
            for b in 0..sst.index.len() as u32 {
                let data = self.ssd.read_block(sst_block(sst.id, b))?;
                for (k, v) in decode_entries(&data) {
                    merged.insert(k, v);
                }
            }
        }
        for (k, v) in &inner.memtable {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Forces a memtable flush (tests / shutdown).
    pub fn flush(&self) -> Result<(), LsmError> {
        let mut inner = self.inner.lock();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut inner)
    }

    /// Number of SST runs (tests).
    pub fn sst_runs(&self) -> usize {
        self.inner.lock().ssts.len()
    }

    /// The underlying device (crash injection).
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.ssd
    }

    fn flush_locked(&self, inner: &mut DbInner) -> Result<(), LsmError> {
        let id = inner.next_sst;
        inner.next_sst += 1;
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = std::mem::take(&mut inner.memtable)
            .into_iter()
            .collect();
        inner.memtable_bytes = 0;
        let index = self.write_sst(id, &entries)?;
        inner.ssts.insert(0, SstMeta { id, index });
        // New WAL segment; the old one is superseded by the SST.
        let old_seg = inner.wal_seg;
        let old_entries = inner.wal_entries;
        inner.wal_seg += 1;
        inner.wal_entries = 0;
        inner.wal_unsynced = 0;
        self.write_manifest(inner);
        self.ssd.fsync();
        for e in 0..old_entries {
            self.ssd.delete_block(wal_block(old_seg, e));
        }
        self.ssd.fsync();
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn compact_locked(&self, inner: &mut DbInner) -> Result<(), LsmError> {
        // Merge every run, newest wins; tombstones drop out entirely.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for sst in inner.ssts.iter().rev() {
            for b in 0..sst.index.len() as u32 {
                let data = self.ssd.read_block(sst_block(sst.id, b))?;
                for (k, v) in decode_entries(&data) {
                    merged.insert(k, v);
                }
            }
        }
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = merged
            .into_iter()
            .filter(|(_, v)| v.is_some())
            .collect();
        let id = inner.next_sst;
        inner.next_sst += 1;
        let index = self.write_sst(id, &entries)?;
        let old: Vec<SstMeta> = std::mem::take(&mut inner.ssts);
        inner.ssts = vec![SstMeta { id, index }];
        self.write_manifest(inner);
        self.ssd.fsync();
        for sst in old {
            for b in 0..sst.index.len() as u32 {
                self.ssd.delete_block(sst_block(sst.id, b));
            }
        }
        self.ssd.fsync();
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes sorted `entries` as SST `id`; returns the sparse index.
    fn write_sst(
        &self,
        id: u64,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<Vec<Vec<u8>>, LsmError> {
        let mut index = Vec::new();
        let mut block_no: u32 = 0;
        let mut buf: Vec<u8> = Vec::with_capacity(self.config.block_size);
        let mut first_in_block: Option<Vec<u8>> = None;
        for (k, v) in entries {
            let e = encode_entry(k, v.as_deref());
            if !buf.is_empty() && buf.len() + e.len() > self.config.block_size {
                self.ssd.write_block(sst_block(id, block_no), &buf);
                index.push(first_in_block.take().expect("non-empty block"));
                block_no += 1;
                buf.clear();
            }
            if first_in_block.is_none() {
                first_in_block = Some(k.clone());
            }
            buf.extend_from_slice(&e);
        }
        if !buf.is_empty() {
            self.ssd.write_block(sst_block(id, block_no), &buf);
            index.push(first_in_block.take().expect("non-empty block"));
        }
        Ok(index)
    }

    fn write_manifest(&self, inner: &DbInner) {
        let mut m = Vec::new();
        m.extend_from_slice(&inner.wal_seg.to_le_bytes());
        m.extend_from_slice(&(inner.ssts.len() as u32).to_le_bytes());
        for sst in &inner.ssts {
            m.extend_from_slice(&sst.id.to_le_bytes());
            m.extend_from_slice(&(sst.index.len() as u32).to_le_bytes());
        }
        self.ssd.write_block(MANIFEST, &m);
    }
}

fn encode_entry(key: &[u8], value: Option<&[u8]>) -> Vec<u8> {
    let vlen = value.map_or(TOMBSTONE, |v| v.len() as u32);
    let mut e = Vec::with_capacity(8 + key.len() + value.map_or(0, |v| v.len()));
    e.extend_from_slice(&(key.len() as u32).to_le_bytes());
    e.extend_from_slice(&vlen.to_le_bytes());
    e.extend_from_slice(key);
    if let Some(v) = value {
        e.extend_from_slice(v);
    }
    e
}

/// Iterates `[klen][vlen][key][value]` entries in a buffer.
fn decode_entries(buf: &[u8]) -> impl Iterator<Item = (Vec<u8>, Option<Vec<u8>>)> + '_ {
    let mut off = 0usize;
    std::iter::from_fn(move || {
        if off + 8 > buf.len() {
            return None;
        }
        let klen = u32::from_le_bytes(buf[off..off + 4].try_into().ok()?) as usize;
        let vlen_raw = u32::from_le_bytes(buf[off + 4..off + 8].try_into().ok()?);
        off += 8;
        let key = buf.get(off..off + klen)?.to_vec();
        off += klen;
        let value = if vlen_raw == TOMBSTONE {
            None
        } else {
            let v = buf.get(off..off + vlen_raw as usize)?.to_vec();
            off += vlen_raw as usize;
            Some(v)
        };
        Some((key, value))
    })
}

fn decode_manifest(m: &[u8]) -> Result<(u64, Vec<(u64, u32)>), LsmError> {
    if m.len() < 12 {
        return Err(LsmError::Corrupt("manifest"));
    }
    let wal_seg = u64::from_le_bytes(m[0..8].try_into().unwrap());
    let count = u32::from_le_bytes(m[8..12].try_into().unwrap()) as usize;
    let mut ssts = Vec::with_capacity(count);
    let mut off = 12;
    for _ in 0..count {
        if off + 12 > m.len() {
            return Err(LsmError::Corrupt("manifest sst entry"));
        }
        let id = u64::from_le_bytes(m[off..off + 8].try_into().unwrap());
        let blocks = u32::from_le_bytes(m[off + 8..off + 12].try_into().unwrap());
        ssts.push((id, blocks));
        off += 12;
    }
    Ok((wal_seg, ssts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LsmConfig {
        LsmConfig {
            memtable_limit: 1024,
            block_size: 256,
            compaction_threshold: 3,
            wal_sync_every: 1,
            clock: ClockMode::Off,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let db = Db::create(tiny());
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(db.get(b"alpha").unwrap().unwrap(), b"1");
        assert_eq!(db.get(b"beta").unwrap().unwrap(), b"2");
        assert_eq!(db.get(b"gamma").unwrap(), None);
    }

    #[test]
    fn overwrite_wins() {
        let db = Db::create(tiny());
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn delete_hides_key() {
        let db = Db::create(tiny());
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
    }

    #[test]
    fn reads_span_memtable_and_ssts() {
        let db = Db::create(tiny());
        for i in 0..100u32 {
            db.put(format!("key{i:04}").as_bytes(), &[i as u8; 32]).unwrap();
        }
        assert!(db.sst_runs() > 0, "flushes must have happened");
        for i in 0..100u32 {
            assert_eq!(
                db.get(format!("key{i:04}").as_bytes()).unwrap().unwrap(),
                vec![i as u8; 32],
                "key{i}"
            );
        }
    }

    #[test]
    fn tombstone_survives_flush() {
        let db = Db::create(tiny());
        db.put(b"dead", b"x").unwrap();
        db.flush().unwrap();
        db.delete(b"dead").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"dead").unwrap(), None, "tombstone must mask the SST value");
    }

    #[test]
    fn compaction_bounds_run_count() {
        let db = Db::create(tiny());
        for i in 0..400u32 {
            db.put(format!("k{:03}", i % 50).as_bytes(), &[0u8; 40]).unwrap();
        }
        assert!(
            db.sst_runs() <= 4,
            "compaction must bound runs, got {}",
            db.sst_runs()
        );
        assert!(db.stats.compactions.load(Ordering::Relaxed) > 0);
        for i in 0..50u32 {
            assert!(db.get(format!("k{i:03}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn scan_is_sorted_and_deduped() {
        let db = Db::create(tiny());
        for i in (0..40u32).rev() {
            db.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        db.put(b"k00", b"latest").unwrap();
        db.delete(b"k01").unwrap();
        let scan = db.scan().unwrap();
        assert_eq!(scan.len(), 39);
        assert_eq!(scan[0].0, b"k00");
        assert_eq!(scan[0].1, b"latest");
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn synced_writes_survive_crash() {
        let db = Db::create(tiny());
        for i in 0..30u32 {
            db.put(format!("c{i:02}").as_bytes(), &[i as u8]).unwrap();
        }
        let ssd = Arc::clone(db.device());
        drop(db);
        ssd.crash();
        let db2 = Db::recover(ssd, tiny()).unwrap();
        for i in 0..30u32 {
            assert_eq!(
                db2.get(format!("c{i:02}").as_bytes()).unwrap().unwrap(),
                vec![i as u8],
                "key c{i}"
            );
        }
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let cfg = LsmConfig {
            wal_sync_every: 100, // group commit: nothing synced yet
            memtable_limit: 1 << 20,
            ..tiny()
        };
        let db = Db::create(cfg.clone());
        db.put(b"volatile", b"x").unwrap();
        let ssd = Arc::clone(db.device());
        drop(db);
        ssd.crash();
        let db2 = Db::recover(ssd, cfg).unwrap();
        assert_eq!(
            db2.get(b"volatile").unwrap(),
            None,
            "unsynced WAL entries must not survive"
        );
    }

    #[test]
    fn recovery_after_flush_and_more_writes() {
        let db = Db::create(tiny());
        for i in 0..60u32 {
            db.put(format!("f{i:02}").as_bytes(), &[1u8; 30]).unwrap();
        }
        db.put(b"post-flush", b"tail").unwrap();
        let ssd = Arc::clone(db.device());
        drop(db);
        ssd.crash();
        let db2 = Db::recover(ssd, tiny()).unwrap();
        assert_eq!(db2.get(b"post-flush").unwrap().unwrap(), b"tail");
        assert_eq!(db2.get(b"f05").unwrap().unwrap(), vec![1u8; 30]);
        // And the recovered DB keeps working.
        db2.put(b"after", b"recovery").unwrap();
        assert_eq!(db2.get(b"after").unwrap().unwrap(), b"recovery");
    }

    #[test]
    fn wal_group_commit_reduces_syncs() {
        let grouped = Db::create(LsmConfig {
            wal_sync_every: 10,
            ..tiny()
        });
        let eager = Db::create(tiny()); // sync_every = 1
        for i in 0..20u32 {
            grouped.put(&i.to_le_bytes(), b"v").unwrap();
            eager.put(&i.to_le_bytes(), b"v").unwrap();
        }
        let g = grouped.stats.wal_syncs.load(Ordering::Relaxed);
        let e = eager.stats.wal_syncs.load(Ordering::Relaxed);
        assert!(g < e, "group commit must fsync less: {g} vs {e}");
    }
}
