//! # flexlog-baselines
//!
//! From-scratch implementations of the systems FlexLog is compared against
//! in the paper's evaluation (§9.1), built on the same simulated substrates
//! so the comparison is apples-to-apples:
//!
//! * [`paxos`] — a Paxos-replicated **counter service**: the ordering-layer
//!   abstraction of Scalog [62], adopted by Boki [83]. Supports classic
//!   two-phase Paxos, the Multi-Paxos stable-leader optimization, and a
//!   multi-proposer contention mode that exhibits the livelock behaviour
//!   §3.3 reports.
//! * [`lsm`] — a miniature **LSM storage engine** (WAL with group commit on
//!   the simulated SSD, memtable, block-structured SSTs, size-tiered
//!   compaction): the "Boki (RocksDB)" storage baseline of Figures 5–7.
//! * [`chain`] — **chain replication** [125]: the data-layer topology of
//!   Corfu/FuzzyLog, used as a latency comparison point (§3.2 notes chain
//!   replication increases append latency versus FlexLog's direct
//!   client-to-all-replicas broadcast).

pub mod chain;
pub mod lsm;
pub mod paxos;
