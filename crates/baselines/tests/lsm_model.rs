//! Model-based property tests of the mini-LSM engine: arbitrary operation
//! sequences (puts, deletes, gets, scans, flushes, crash/recover cycles)
//! against a `BTreeMap` reference model. Every divergence is a bug in the
//! WAL, SST, compaction or recovery code.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use flexlog_baselines::lsm::{Db, LsmConfig};
use flexlog_pm::ClockMode;

#[derive(Clone, Debug)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Scan,
    Flush,
    /// Crash the device and recover. Only synced state must survive; with
    /// `wal_sync_every == 1` that is everything.
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(k, v)| Op::Put(k % 64, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 64)),
        4 => any::<u16>().prop_map(|k| Op::Get(k % 64)),
        1 => Just(Op::Scan),
        1 => Just(Op::Flush),
        1 => Just(Op::CrashRecover),
    ]
}

fn tiny_synced() -> LsmConfig {
    LsmConfig {
        memtable_limit: 512,
        block_size: 128,
        compaction_threshold: 3,
        wal_sync_every: 1, // synchronous durability: crashes lose nothing
        clock: ClockMode::Off,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn lsm_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut db = Db::create(tiny_synced());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let key = k.to_be_bytes().to_vec();
                    db.put(&key, &v).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(k) => {
                    let key = k.to_be_bytes().to_vec();
                    db.delete(&key).unwrap();
                    model.remove(&key);
                }
                Op::Get(k) => {
                    let key = k.to_be_bytes().to_vec();
                    let got = db.get(&key).unwrap();
                    prop_assert_eq!(got, model.get(&key).cloned(), "get({}) diverged", k);
                }
                Op::Scan => {
                    let got = db.scan().unwrap();
                    let want: Vec<(Vec<u8>, Vec<u8>)> =
                        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    prop_assert_eq!(got, want, "scan diverged");
                }
                Op::Flush => {
                    db.flush().unwrap();
                }
                Op::CrashRecover => {
                    let ssd = Arc::clone(db.device());
                    drop(db);
                    ssd.crash();
                    db = Db::recover(ssd, tiny_synced()).unwrap();
                }
            }
        }
        // Final full check.
        let got = db.scan().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want, "final scan diverged");
    }

    /// With group commit (sync_every > 1) a crash may lose a *suffix* of
    /// unsynced writes but must never corrupt, reorder, or resurrect data:
    /// every surviving key maps to a value the model held at some point,
    /// and everything synced before the crash survives.
    #[test]
    fn group_commit_crash_loses_at_most_a_suffix(
        keys in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60),
        sync_every in 2usize..8,
    ) {
        let config = LsmConfig {
            memtable_limit: 1 << 20, // no flush: WAL only
            wal_sync_every: sync_every,
            ..tiny_synced()
        };
        let db = Db::create(config.clone());
        let mut history: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (i, (k, v)) in keys.iter().enumerate() {
            let key = vec![*k];
            let value = vec![*v, i as u8];
            db.put(&key, &value).unwrap();
            history.push((key, value));
        }
        let synced_prefix = (history.len() / sync_every) * sync_every;

        let ssd = Arc::clone(db.device());
        drop(db);
        ssd.crash();
        let db2 = Db::recover(ssd, config).unwrap();

        // Everything in the synced prefix must survive with its latest
        // synced value.
        let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &history[..synced_prefix] {
            expect.insert(k.clone(), v.clone());
        }
        for (k, v) in &expect {
            let got = db2.get(k).unwrap();
            // The surviving value may be *newer* than the synced one only if
            // the later write made it into the same synced group — it can
            // never be older than the synced value's position.
            prop_assert!(got.is_some(), "synced key {k:?} lost");
            let got = got.unwrap();
            let valid: Vec<&Vec<u8>> = history
                .iter()
                .filter(|(hk, _)| hk == k)
                .map(|(_, hv)| hv)
                .collect();
            prop_assert!(
                valid.contains(&&got),
                "key {k:?} resurrected to a value never written: {got:?}"
            );
            prop_assert!(
                valid.iter().position(|hv| **hv == got).unwrap()
                    >= valid.iter().position(|hv| *hv == v).unwrap(),
                "key {k:?} rolled back past the synced value: {got:?} vs {v:?}"
            );
        }
    }
}
