//! Property test: percentiles read from the log-bucketed histogram are
//! within one bucket width of the exact percentiles computed on the raw
//! sample vector, across random value distributions (uniform small,
//! uniform wide, heavy-tailed, constant-heavy mixes).

use proptest::prelude::*;

use flexlog_obs::{bucket_bounds, Histogram, NUM_BUCKETS};

/// Bucket index containing `v`, recomputed via the public bounds (the
/// crate keeps the index function private; a linear scan is fine at test
/// scale).
fn containing_bucket(v: u64) -> usize {
    for idx in 0..NUM_BUCKETS {
        let (lo, hi) = bucket_bounds(idx);
        if lo <= v && v <= hi {
            return idx;
        }
    }
    panic!("no bucket for {v}");
}

/// Exact percentile by the same rank convention the histogram uses:
/// the `ceil(p/100 * n)`-th smallest sample (1-based), clamped to [1, n].
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p / 100.0) * n as f64).ceil() as u64;
    let rank = rank.clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Small latencies (ns scale).
        3 => 0u64..1_000,
        // Microsecond-to-millisecond scale.
        3 => 1_000u64..10_000_000,
        // Heavy tail.
        1 => 10_000_000u64..10_000_000_000,
        // Repeated constant (percentile mass piles in one bucket).
        1 => Just(4_096u64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn percentiles_within_one_bucket_width(
        values in proptest::collection::vec(value_strategy(), 1..400)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());

        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = exact_percentile(&sorted, p);
            let approx = h.percentile(p);
            let (lo, hi) = bucket_bounds(containing_bucket(exact));
            let width = hi - lo + 1;
            let err = approx.abs_diff(exact);
            prop_assert!(
                err <= width,
                "p{}: approx {} vs exact {} differ by {} > bucket width {} (bucket [{}, {}])",
                p, approx, exact, err, width, lo, hi
            );
            // Stronger: the approximation must land inside the exact
            // value's bucket (same-bucket guarantee of the rank walk).
            prop_assert!(
                approx >= lo && approx <= hi,
                "p{}: approx {} escaped exact bucket [{}, {}]",
                p, approx, lo, hi
            );
        }
    }

    #[test]
    fn summary_matches_individual_percentiles(
        values in proptest::collection::vec(value_strategy(), 1..200)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        prop_assert_eq!(s.p50, h.percentile(50.0));
        prop_assert_eq!(s.p90, h.percentile(90.0));
        prop_assert_eq!(s.p99, h.percentile(99.0));
        prop_assert_eq!(s.max, h.max());
        prop_assert_eq!(s.count, values.len() as u64);
    }
}
