//! # flexlog-obs
//!
//! Cross-layer observability for FlexLog: a lock-cheap metrics
//! [`Registry`] (atomic counters, gauges, log-bucketed histograms with
//! p50/p90/p99/max) and a bounded in-memory event [`Tracer`] (ring buffer
//! of typed spans keyed by record [`Token`]).
//!
//! One [`ObsHandle`] is created per cluster and cloned into every layer —
//! client, sequencer tree, replicas, storage engines and the simnet — so
//! a single surface answers both "how fast is each stage?" (registry
//! histograms, `metrics_report`) and "what happened to this record?"
//! (`trace(token)`).
//!
//! The handle is deliberately cheap to default-construct: a subsystem
//! built standalone (unit tests, benches of one component) gets its own
//! private registry and tracer and pays the same negligible overhead.

mod registry;
mod trace;

pub use registry::{
    bucket_bounds, Counter, Gauge, Histogram, HistogramSummary, Registry, Snapshot, NUM_BUCKETS,
};
pub use trace::{
    Stage, Trace, TraceEvent, Tracer, CTRL_TOKEN, DEFAULT_TRACE_CAPACITY, SUB_TOKEN, SYNC_TOKEN,
};

use flexlog_types::Token;

/// Shared observability surface: one registry + one tracer. `Clone` is
/// two `Arc` bumps; `Default` builds a fresh, private surface.
#[derive(Clone, Default)]
pub struct ObsHandle {
    registry: Registry,
    tracer: Tracer,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObsHandle")
    }
}

impl ObsHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle whose tracer ring holds at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        ObsHandle {
            registry: Registry::new(),
            tracer: Tracer::with_capacity(capacity),
        }
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Shorthand for `registry().counter(name)`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Shorthand for `registry().gauge(name)`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Shorthand for `registry().histogram(name)`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// Record one trace event.
    #[inline]
    pub fn trace_event(&self, token: Token, stage: Stage, node: u64, detail: u64) {
        self.tracer.record(token, stage, node, detail);
    }

    /// Reconstruct one record's journey.
    pub fn trace(&self, token: Token) -> Trace {
        self.tracer.trace(token)
    }

    /// Aggregated metrics snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Human-readable metrics report.
    pub fn report_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// JSON metrics report.
    pub fn report_json(&self) -> String {
        self.snapshot().render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_types::FunctionId;

    #[test]
    fn handle_clones_share_state() {
        let obs = ObsHandle::new();
        let other = obs.clone();
        obs.counter("c").add(2);
        other.counter("c").add(3);
        assert_eq!(obs.snapshot().counter("c"), 5);
        let tok = Token::new(FunctionId(1), 1);
        other.trace_event(tok, Stage::ClientSend, 9, 0);
        assert_eq!(obs.trace(tok).events.len(), 1);
    }

    #[test]
    fn defaults_are_independent() {
        let a = ObsHandle::default();
        let b = ObsHandle::default();
        a.counter("c").add(1);
        assert_eq!(b.snapshot().counter("c"), 0);
    }
}
