//! Bounded in-memory event tracer: a ring buffer of typed spans keyed by
//! record token, covering an append's whole journey
//! client → sequencer → replica → storage.
//!
//! ## Determinism contract
//!
//! The simnet runs real threads against the wall clock, so event
//! *timestamps* and *interleavings* vary run to run even under a fixed
//! seed. What IS deterministic under a fixed seed is the **logical chain**:
//! which stages executed at which nodes (shard choice, OReq delegate,
//! sequencer ownership and the replica set are all seed- or
//! topology-determined). [`Trace::canonical`] therefore renders exactly
//! that — the sorted, deduplicated set of `(stage, node, detail)` triples
//! over the timing-independent stages — and excludes timestamps, sequence
//! stamps, and the retry/recovery stages (`ClientRetransmit`, `SyncStart`,
//! `SyncDone`) whose occurrence depends on timing. Two same-seed runs
//! produce byte-identical canonical traces; wall-clock latency lives in
//! the registry histograms and in [`TraceEvent::at_ns`] for bound checks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use flexlog_types::Token;

/// Sentinel token for events not tied to a single record (replica sync
/// phases): all-ones, never produced by `Token::new`.
pub const SYNC_TOKEN: Token = Token(u64::MAX);

/// Sentinel token for control-plane events (color migration, leaf splits):
/// all-ones minus one, never produced by `Token::new` (which would require
/// fid == u32::MAX and counter == u32::MAX - 1, but the all-ones fid is
/// reserved for sentinels by convention).
pub const CTRL_TOKEN: Token = Token(u64::MAX - 1);

/// Sentinel token for subscription-push events not attributable to a
/// single record (backlog catch-up batches whose per-record tokens have
/// aged out of the replica's recent-token window).
pub const SUB_TOKEN: Token = Token(u64::MAX - 2);

/// Pipeline stage of a traced event. The discriminant is the canonical
/// ordering rank (the order stages appear along the append data path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client broadcast the append to its shard.
    ClientSend = 0,
    /// Client re-sent an append that had not been acked in time.
    ClientRetransmit = 1,
    /// A replica staged the record (Algorithm 1 step 2).
    ReplicaStaged = 2,
    /// The delegate replica sent the order request upstream.
    OReqSent = 3,
    /// The owning sequencer assigned an SN (detail = color id).
    SeqAssign = 4,
    /// A replica learned the SN and committed the record.
    ReplicaCommit = 5,
    /// The storage engine durably admitted the record (detail = color id).
    StorageCommit = 6,
    /// The client received the commit ack.
    ClientAck = 7,
    /// A recovering replica entered the §6.3 sync phase.
    SyncStart = 8,
    /// The sync phase finished; the replica serves again.
    SyncDone = 9,
    /// The control plane froze a color on its source shard(s) before a
    /// migration (detail = color id).
    MigrateFreeze = 10,
    /// A committed span was exported from the source and imported at the
    /// destination (detail = color id).
    MigrateCopy = 11,
    /// The color→shard mapping was cut over to the destination and the
    /// epoch was bumped (detail = color id).
    MigrateCutover = 12,
    /// One pre-freeze catch-up round of an incremental migration shipped
    /// a delta span to the destination (detail = color id). Emitted once
    /// per round, while the source keeps serving appends.
    MigrateCatchup = 13,
    /// A restarting controller rolled one in-flight reconfiguration
    /// forward or back from its intent WAL (detail = the WAL op id).
    CtrlRecover = 14,
    /// A replica pushed a committed record to a registered subscriber
    /// (detail = color id). Which replica serves a subscription and how
    /// records fold into push batches both depend on timing, so the stage
    /// is excluded from the canonical chain.
    SubPush = 15,
    /// An archive round sealed records of a color into object-store
    /// segments (detail = color id). When a round runs — and on which
    /// replica — depends on trim timing and tiering-policy ticks, so the
    /// stage is excluded from the canonical chain.
    Archive = 16,
}

impl Stage {
    pub const fn rank(self) -> u8 {
        self as u8
    }

    pub const fn name(self) -> &'static str {
        match self {
            Stage::ClientSend => "client_send",
            Stage::ClientRetransmit => "client_retransmit",
            Stage::ReplicaStaged => "replica_staged",
            Stage::OReqSent => "oreq_sent",
            Stage::SeqAssign => "seq_assign",
            Stage::ReplicaCommit => "replica_commit",
            Stage::StorageCommit => "storage_commit",
            Stage::ClientAck => "client_ack",
            Stage::SyncStart => "sync_start",
            Stage::SyncDone => "sync_done",
            Stage::MigrateFreeze => "migrate_freeze",
            Stage::MigrateCopy => "migrate_copy",
            Stage::MigrateCutover => "migrate_cutover",
            Stage::MigrateCatchup => "migrate_catchup",
            Stage::CtrlRecover => "ctrl_recover",
            Stage::SubPush => "sub_push",
            Stage::Archive => "archive",
        }
    }

    /// Stages whose occurrence and placement are determined by the seed
    /// and topology alone (see the module-level determinism contract).
    /// `OReqSent` is excluded alongside the retry/recovery stages: which
    /// replica relays the order request (and how many do) depends on the
    /// race between the delegate's eager send and the periodic
    /// staged-token resend tick.
    pub const fn is_canonical(self) -> bool {
        !matches!(
            self,
            Stage::ClientRetransmit
                | Stage::OReqSent
                | Stage::SyncStart
                | Stage::SyncDone
                | Stage::MigrateFreeze
                | Stage::MigrateCopy
                | Stage::MigrateCutover
                | Stage::MigrateCatchup
                | Stage::CtrlRecover
                | Stage::SubPush
                | Stage::Archive
        )
    }
}

/// One recorded span point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub token: Token,
    pub stage: Stage,
    /// Raw `NodeId` bits of the node that recorded the event.
    pub node: u64,
    /// Stage-specific payload: the color id for `SeqAssign` /
    /// `StorageCommit`, 0 otherwise.
    pub detail: u64,
    /// Global record order stamp (total order over all traced events).
    pub seq: u64,
    /// Nanoseconds since the tracer was created (wall clock; NOT part of
    /// the canonical trace).
    pub at_ns: u64,
}

pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

struct Ring {
    buf: std::collections::VecDeque<TraceEvent>,
}

struct TracerInner {
    ring: Mutex<Ring>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

/// Bounded event recorder. `Clone` shares the ring; recording takes one
/// short mutex section (a `VecDeque` push plus possible pop-front).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(len={}, cap={})", self.len(), self.capacity())
    }
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                ring: Mutex::new(Ring {
                    buf: std::collections::VecDeque::with_capacity(capacity.min(4096)),
                }),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event.
    pub fn record(&self, token: Token, stage: Stage, node: u64, detail: u64) {
        let ev = TraceEvent {
            token,
            stage,
            node,
            detail,
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            at_ns: self.now_ns(),
        };
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.buf.len() == self.inner.capacity {
            ring.buf.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(ev);
    }

    /// Record a burst under one lock acquisition and one clock read
    /// (used by batch commit paths).
    pub fn record_many(&self, events: &[(Token, Stage, u64, u64)]) {
        if events.is_empty() {
            return;
        }
        let at_ns = self.now_ns();
        let base = self
            .inner
            .seq
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock().unwrap();
        for (i, &(token, stage, node, detail)) in events.iter().enumerate() {
            if ring.buf.len() == self.inner.capacity {
                ring.buf.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.buf.push_back(TraceEvent {
                token,
                stage,
                node,
                detail,
                seq: base + i as u64,
                at_ns,
            });
        }
    }

    pub fn len(&self) -> usize {
        self.inner.ring.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// All currently buffered events in record order.
    pub fn all_events(&self) -> Vec<TraceEvent> {
        let ring = self.inner.ring.lock().unwrap();
        ring.buf.iter().copied().collect()
    }

    /// Buffered events for `token`, in record order.
    pub fn events_for(&self, token: Token) -> Vec<TraceEvent> {
        let ring = self.inner.ring.lock().unwrap();
        ring.buf.iter().filter(|e| e.token == token).copied().collect()
    }

    /// Reconstruct the journey of one record.
    pub fn trace(&self, token: Token) -> Trace {
        Trace {
            token,
            events: self.events_for(token),
        }
    }
}

// ---------------------------------------------------------------- trace ----

/// One record's reconstructed journey through the system.
#[derive(Clone, Debug)]
pub struct Trace {
    pub token: Token,
    /// Events in record (seq) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn has_stage(&self, stage: Stage) -> bool {
        self.events.iter().any(|e| e.stage == stage)
    }

    /// Earliest timestamp at which `stage` was recorded.
    pub fn first_ns(&self, stage: Stage) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.at_ns)
            .min()
    }

    /// Latest timestamp at which `stage` was recorded.
    pub fn last_ns(&self, stage: Stage) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.at_ns)
            .max()
    }

    /// A committed append's full span chain: sent, staged, ordered,
    /// committed (replica + storage), acked.
    pub fn is_complete_append(&self) -> bool {
        self.has_stage(Stage::ClientSend)
            && self.has_stage(Stage::ReplicaStaged)
            && self.has_stage(Stage::SeqAssign)
            && self.has_stage(Stage::ReplicaCommit)
            && self.has_stage(Stage::StorageCommit)
            && self.has_stage(Stage::ClientAck)
    }

    /// The deterministic logical chain (see the module-level contract):
    /// sorted, deduplicated `(stage, node, detail)` triples of the
    /// canonical stages, rendered as bytes. Byte-identical across
    /// same-seed runs.
    pub fn canonical(&self) -> Vec<u8> {
        let mut chain: Vec<(u8, u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.stage.is_canonical())
            .map(|e| (e.stage.rank(), e.node, e.detail))
            .collect();
        chain.sort_unstable();
        chain.dedup();
        let mut out = Vec::new();
        use std::io::Write as _;
        let _ = write!(out, "token={:#018x}", self.token.0);
        for (rank, node, detail) in chain {
            let stage = STAGE_BY_RANK[rank as usize];
            let _ = write!(out, ";{}@{:#x}#{}", stage.name(), node, detail);
        }
        out.push(b'\n');
        out
    }

    /// Human-readable rendering with per-stage timestamps and deltas from
    /// the first event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace token={:#018x} ({} events)",
            self.token.0,
            self.events.len()
        );
        let t0 = self.events.iter().map(|e| e.at_ns).min().unwrap_or(0);
        for e in &self.events {
            let _ = writeln!(
                out,
                "  +{:>9}ns {:<17} node={:#x} detail={}",
                e.at_ns.saturating_sub(t0),
                e.stage.name(),
                e.node,
                e.detail
            );
        }
        out
    }

    /// Nanoseconds between the first occurrences of two stages, if both
    /// are present and ordered.
    pub fn span_ns(&self, from: Stage, to: Stage) -> Option<u64> {
        let a = self.first_ns(from)?;
        let b = self.last_ns(to)?;
        b.checked_sub(a)
    }
}

const STAGE_BY_RANK: [Stage; 17] = [
    Stage::ClientSend,
    Stage::ClientRetransmit,
    Stage::ReplicaStaged,
    Stage::OReqSent,
    Stage::SeqAssign,
    Stage::ReplicaCommit,
    Stage::StorageCommit,
    Stage::ClientAck,
    Stage::SyncStart,
    Stage::SyncDone,
    Stage::MigrateFreeze,
    Stage::MigrateCopy,
    Stage::MigrateCutover,
    Stage::MigrateCatchup,
    Stage::CtrlRecover,
    Stage::SubPush,
    Stage::Archive,
];

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_types::FunctionId;

    fn tok(c: u32) -> Token {
        Token::new(FunctionId(7), c)
    }

    #[test]
    fn ring_stays_bounded_and_counts_drops() {
        let t = Tracer::with_capacity(8);
        for i in 0..20u32 {
            t.record(tok(i), Stage::ClientSend, 1, 0);
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.dropped(), 12);
        // Oldest events were evicted; newest survive.
        assert!(t.events_for(tok(19)).len() == 1);
        assert!(t.events_for(tok(0)).is_empty());
    }

    #[test]
    fn record_many_is_equivalent_to_singles() {
        let t = Tracer::with_capacity(16);
        t.record_many(&[
            (tok(1), Stage::ReplicaCommit, 5, 0),
            (tok(2), Stage::ReplicaCommit, 5, 0),
        ]);
        assert_eq!(t.len(), 2);
        let evs = t.all_events();
        assert_eq!(evs[0].seq + 1, evs[1].seq);
        assert_eq!(evs[0].at_ns, evs[1].at_ns, "one clock read per burst");
    }

    #[test]
    fn canonical_excludes_timing_dependent_stages_and_dedups() {
        let t = Tracer::default();
        t.record(tok(1), Stage::ClientSend, 0x40, 0);
        t.record(tok(1), Stage::ClientRetransmit, 0x40, 0);
        t.record(tok(1), Stage::ReplicaStaged, 0x11, 0);
        t.record(tok(1), Stage::ReplicaStaged, 0x11, 0); // dup from retransmit
        t.record(tok(1), Stage::SyncStart, 0x11, 0);
        let c = t.trace(tok(1)).canonical();
        let s = String::from_utf8(c).unwrap();
        assert!(s.contains("client_send"));
        assert!(s.contains("replica_staged"));
        assert!(!s.contains("retransmit"));
        assert!(!s.contains("sync"));
        assert_eq!(s.matches("replica_staged").count(), 1, "deduped");
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = Tracer::default();
        a.record(tok(3), Stage::ClientSend, 1, 0);
        a.record(tok(3), Stage::ReplicaStaged, 2, 0);
        let b = Tracer::default();
        b.record(tok(3), Stage::ReplicaStaged, 2, 0);
        b.record(tok(3), Stage::ClientSend, 1, 0);
        assert_eq!(a.trace(tok(3)).canonical(), b.trace(tok(3)).canonical());
    }

    #[test]
    fn complete_append_detection() {
        let t = Tracer::default();
        let k = tok(9);
        for (stage, node) in [
            (Stage::ClientSend, 0x40u64),
            (Stage::ReplicaStaged, 0x10),
            (Stage::OReqSent, 0x10),
            (Stage::SeqAssign, 0x20),
            (Stage::ReplicaCommit, 0x10),
            (Stage::StorageCommit, 0x10),
        ] {
            t.record(k, stage, node, 0);
        }
        assert!(!t.trace(k).is_complete_append(), "no ack yet");
        t.record(k, Stage::ClientAck, 0x40, 0);
        let tr = t.trace(k);
        assert!(tr.is_complete_append());
        assert!(tr.render().contains("client_ack"));
        assert!(tr.span_ns(Stage::ClientSend, Stage::ClientAck).is_some());
    }

    #[test]
    fn sync_sentinel_token_is_reserved() {
        // Token::new packs fid << 32 | counter: it can never be all-ones
        // with a real fid because the sentinel requires fid == u32::MAX
        // AND counter == u32::MAX; assert the constant is what we expect.
        assert_eq!(SYNC_TOKEN.0, u64::MAX);
    }
}
