//! Lock-cheap metrics: atomic counters, gauges and log-bucketed histograms,
//! collected under string names in a [`Registry`].
//!
//! The registry hands out *fresh* handles on every `counter()` /
//! `histogram()` call and remembers all handles registered under a name.
//! Each subsystem therefore increments its own private atomics on the hot
//! path (no shared cache line between, say, two storage servers), and
//! [`Registry::snapshot`] aggregates across all handles of a name — one
//! cluster-wide surface without hot-path contention.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// -------------------------------------------------------------- counter ----

/// A monotonically increasing `u64`. API-compatible with the `AtomicU64`
/// it replaces in `StorageStats`: call sites using
/// `load(Ordering::Relaxed)` / `fetch_add(n, Ordering::Relaxed)` compile
/// unchanged.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// `AtomicU64`-compatible accessor (the ordering is accepted and
    /// honoured, though every counter use in FlexLog is relaxed).
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// `AtomicU64`-compatible mutator.
    #[inline]
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.0.fetch_add(n, order)
    }

    /// `AtomicU64`-compatible store (used by recovery paths that rebuild
    /// counters from persistent state).
    #[inline]
    pub fn store(&self, n: u64, order: Ordering) {
        self.0.store(n, order)
    }
}

// ---------------------------------------------------------------- gauge ----

/// A signed instantaneous value (queue depths, live bytes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------ histogram ----

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, i.e. a
/// relative bucket width of at most 12.5%.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Values `< 8` get exact buckets `0..8`; each exponent `3..=63` gets a
/// group of 8 sub-buckets: 8 + 61*8 = indices `0..496`.
pub const NUM_BUCKETS: usize = SUB * 62;

/// Index of the log-scale bucket containing `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        ((exp - SUB_BITS) as usize + 1) * SUB + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let group = (idx / SUB) as u32; // >= 1
        let sub = (idx % SUB) as u64;
        let exp = group - 1 + SUB_BITS;
        let width = 1u64 << (exp - SUB_BITS);
        let lo = (1u64 << exp) + sub * width;
        (lo, lo.saturating_add(width - 1))
    }
}

struct HistogramInner {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Log-bucketed latency histogram. Recording is three relaxed atomic adds
/// plus a `fetch_max`; no locks. Percentiles are accurate to within one
/// bucket width (≤ 12.5% relative error) — see the property test.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a `Duration` as nanoseconds.
    #[inline]
    pub fn record_ns(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Value at percentile `p` (0..=100): the upper bound of the bucket
    /// holding the rank-`ceil(p/100·n)` sample, clamped to the observed
    /// max. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let mut merged = vec![0u64; NUM_BUCKETS];
        self.merge_into(&mut merged);
        percentile_of(&merged, self.count(), self.max(), p)
    }

    /// Add this histogram's bucket counts into `dst` (len `NUM_BUCKETS`).
    pub fn merge_into(&self, dst: &mut [u64]) {
        for (d, b) in dst.iter_mut().zip(self.inner.buckets.iter()) {
            *d += b.load(Ordering::Relaxed);
        }
    }

    pub fn summary(&self) -> HistogramSummary {
        let mut merged = vec![0u64; NUM_BUCKETS];
        self.merge_into(&mut merged);
        summarize(&merged, self.count(), self.sum(), self.max())
    }
}

fn percentile_of(buckets: &[u64], count: u64, max: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * count as f64).ceil() as u64;
    let rank = rank.clamp(1, count);
    let mut cum = 0u64;
    for (idx, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            let (_, hi) = bucket_bounds(idx);
            return hi.min(max);
        }
    }
    max
}

fn summarize(buckets: &[u64], count: u64, sum: u64, max: u64) -> HistogramSummary {
    HistogramSummary {
        count,
        sum,
        max,
        p50: percentile_of(buckets, count, max, 50.0),
        p90: percentile_of(buckets, count, max, 90.0),
        p99: percentile_of(buckets, count, max, 99.0),
    }
}

/// Point-in-time percentile digest of one histogram name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ------------------------------------------------------------- registry ----

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Vec<Counter>>,
    gauges: BTreeMap<String, Vec<Gauge>>,
    histograms: BTreeMap<String, Vec<Histogram>>,
}

/// Named-metric registry. `Clone` shares the underlying store; the inner
/// mutex is only taken at registration and snapshot time, never on the
/// record path.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry")
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh counter aggregated under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let c = Counter::new();
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_default()
            .push(c.clone());
        c
    }

    /// A fresh gauge aggregated under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let g = Gauge::new();
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(name.to_string())
            .or_default()
            .push(g.clone());
        g
    }

    /// A fresh histogram aggregated under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let h = Histogram::new();
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .push(h.clone());
        h
    }

    /// Aggregate every registered handle into one value per name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let counters = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.iter().map(Counter::get).sum()))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.iter().map(Gauge::get).sum()))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(k, v)| {
                let mut merged = vec![0u64; NUM_BUCKETS];
                let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
                for h in v {
                    h.merge_into(&mut merged);
                    count += h.count();
                    sum += h.sum();
                    max = max.max(h.max());
                }
                (k.clone(), summarize(&merged, count, sum, max))
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

// ------------------------------------------------------------- snapshot ----

/// Aggregated point-in-time view of every metric in a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Counter value, 0 if the name was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Human-readable report, one metric per line, stable ordering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter   {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {k} = {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {k} count={} p50={}ns p90={}ns p99={}ns max={}ns mean={:.0}ns",
                h.count,
                h.p50,
                h.p90,
                h.p99,
                h.max,
                h.mean()
            );
        }
        out
    }

    /// Machine-readable JSON report (hand-rendered: no serde in-tree).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{k}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"sum_ns\": {}}}",
                h.count, h.p50, h.p90, h.p99, h.max, h.sum
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in (0..10_000u64)
            .chain((0..54).map(|e| 1u64 << e))
            .chain((0..54).map(|e| (1u64 << e) + 1))
            .chain([u64::MAX, u64::MAX - 1, 1u64 << 63])
        {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "idx {idx} for {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}] (idx {idx})");
        }
    }

    #[test]
    fn bucket_width_is_within_12_5_percent() {
        for idx in SUB..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let width = hi - lo + 1;
            assert!(
                width as f64 <= lo as f64 / 8.0 + 1.0,
                "bucket {idx} [{lo},{hi}] too wide"
            );
        }
    }

    #[test]
    fn histogram_percentiles_on_uniform_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(50.0);
        // Exact p50 is 500; bucket width there is 64.
        assert!((436..=564).contains(&p50), "p50 = {p50}");
        let p100 = h.percentile(100.0);
        assert_eq!(p100, 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn registry_aggregates_across_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        let g1 = r.gauge("depth");
        let g2 = r.gauge("depth");
        g1.set(5);
        g2.set(-2);
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(10);
        h2.record(20);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), 7);
        assert_eq!(snap.gauge("depth"), 3);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 20);
        assert_eq!(snap.counter("never-registered"), 0);
    }

    #[test]
    fn counter_is_atomicu64_compatible() {
        let c = Counter::new();
        c.fetch_add(5, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 5);
        c.store(2, Ordering::Relaxed);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn reports_render_all_metric_kinds() {
        let r = Registry::new();
        r.counter("net.sent").add(9);
        r.gauge("pm.live").set(1024);
        r.histogram("lat").record(100);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("net.sent = 9"));
        assert!(text.contains("pm.live = 1024"));
        assert!(text.contains("histogram lat count=1"));
        let json = snap.render_json();
        assert!(json.contains("\"net.sent\": 9"));
        assert!(json.contains("\"p99_ns\""));
    }
}
