//! The serverless compute tier of Figure 3.
//!
//! Invocation path: front-end servers **authenticate** external requests ①
//! and pass them to the **orchestrator**, which tracks per-worker load ②
//! and picks a host through the **workers' manager** ③. A cold start
//! fetches the function's state (its image) **from FlexLog** and pays
//! runtime initialization ④; warm starts reuse the instance. The user code
//! then runs with a [`FlexLog`] handle for its inputs and state ⑤–⑥.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use flexlog_core::{ColorId, FlexLog, FlexLogCluster, SeqNum};

/// User-provided function code: a native closure standing in for the
/// container image's entry point, plus the image bytes that FlexLog stores
/// as the function's state.
#[derive(Clone)]
pub struct FunctionCode {
    pub name: String,
    pub image: Vec<u8>,
    #[allow(clippy::type_complexity)]
    pub entry: Arc<dyn Fn(&mut InvokeCtx<'_>) -> Result<Vec<u8>, String> + Send + Sync>,
}

/// Context handed to a running function instance.
pub struct InvokeCtx<'a> {
    /// The invocation's input payload.
    pub input: Vec<u8>,
    /// The function's handle to the shared log (state/data plane).
    pub log: &'a mut FlexLog,
}

/// Errors from deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployError {
    AlreadyDeployed(String),
    Storage(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::AlreadyDeployed(n) => write!(f, "function {n} already deployed"),
            DeployError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

/// Errors from invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvocationError {
    /// Front-end rejected the request's api key.
    Unauthorized,
    /// No such function.
    UnknownFunction(String),
    /// The function's image could not be fetched from FlexLog.
    StateFetch(String),
    /// The function body returned an error.
    Runtime(String),
}

impl fmt::Display for InvocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationError::Unauthorized => write!(f, "unauthorized"),
            InvocationError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            InvocationError::StateFetch(e) => write!(f, "state fetch failed: {e}"),
            InvocationError::Runtime(e) => write!(f, "function error: {e}"),
        }
    }
}

/// Telemetry of one invocation.
#[derive(Clone, Debug)]
pub struct InvocationRecord {
    pub function: String,
    pub worker: usize,
    pub cold_start: bool,
    /// Time before user code ran (routing + state fetch + runtime init).
    pub startup: Duration,
    /// User-code execution time.
    pub execution: Duration,
}

struct Deployed {
    image_sn: SeqNum,
    code: FunctionCode,
}

struct Worker {
    /// Functions with a warm instance on this worker.
    warm: HashMap<String, FlexLog>,
    active: usize,
    total_served: u64,
}

struct PlatformInner {
    deployed: HashMap<String, Deployed>,
    workers: Vec<Worker>,
    records: Vec<InvocationRecord>,
}

/// See module docs.
pub struct FaasPlatform<'c> {
    cluster: &'c FlexLogCluster,
    /// Color storing function images (durable function state).
    images: ColorId,
    inner: Mutex<PlatformInner>,
    /// Simulated per-byte runtime-initialization cost for cold starts.
    init_ns_per_kb: u64,
}

impl<'c> FaasPlatform<'c> {
    /// Builds the platform over a running cluster with `workers` hosts.
    /// Creates the image color (under the master region).
    pub fn new(cluster: &'c FlexLogCluster, images: ColorId, workers: usize) -> Self {
        cluster
            .add_color(images)
            .expect("image color must be fresh");
        FaasPlatform {
            cluster,
            images,
            inner: Mutex::new(PlatformInner {
                deployed: HashMap::new(),
                workers: (0..workers.max(1))
                    .map(|_| Worker {
                        warm: HashMap::new(),
                        active: 0,
                        total_served: 0,
                    })
                    .collect(),
                records: Vec::new(),
            }),
            init_ns_per_kb: 20_000, // 20 µs per KiB of image
        }
    }

    /// Deploys a function: its image is appended to the image color (the
    /// function state FlexLog persists) and its entry point registered.
    pub fn deploy(&self, code: FunctionCode) -> Result<SeqNum, DeployError> {
        {
            let inner = self.inner.lock();
            if inner.deployed.contains_key(&code.name) {
                return Err(DeployError::AlreadyDeployed(code.name));
            }
        }
        let mut handle = self.cluster.handle();
        let image_sn = handle
            .append(&code.image, self.images)
            .map_err(|e| DeployError::Storage(e.to_string()))?;
        self.inner.lock().deployed.insert(
            code.name.clone(),
            Deployed { image_sn, code },
        );
        Ok(image_sn)
    }

    /// External invocation: authenticate ①, route ②③, cold-start if needed
    /// ④, run ⑤⑥.
    pub fn invoke(
        &self,
        api_key: &str,
        function: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, InvocationError> {
        // ① Front-end authentication.
        if !api_key.starts_with("key-") {
            return Err(InvocationError::Unauthorized);
        }
        let started = Instant::now();

        // ② Orchestrator: least-loaded worker wins.
        let (worker_idx, image_sn, code) = {
            let inner = self.inner.lock();
            let dep = inner
                .deployed
                .get(function)
                .ok_or_else(|| InvocationError::UnknownFunction(function.to_string()))?;
            let worker_idx = inner
                .workers
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.active)
                .map(|(i, _)| i)
                .expect("at least one worker");
            (worker_idx, dep.image_sn, dep.code.clone())
        };
        self.inner.lock().workers[worker_idx].active += 1;

        // ③/④ Workers' manager: cold start fetches the image from FlexLog
        // and initializes the runtime; warm start reuses the instance.
        let mut warm_handle = {
            let mut inner = self.inner.lock();
            inner.workers[worker_idx].warm.remove(function)
        };
        let cold = warm_handle.is_none();
        if cold {
            let mut fetcher = self.cluster.handle();
            let image = fetcher
                .read(image_sn, self.images)
                .map_err(|e| InvocationError::StateFetch(e.to_string()))?
                .ok_or_else(|| InvocationError::StateFetch("image missing".into()))?;
            // Language runtime initialization, proportional to image size.
            let init = Duration::from_nanos(
                self.init_ns_per_kb * (image.len() as u64 / 1024 + 1),
            );
            std::thread::sleep(init);
            warm_handle = Some(self.cluster.handle());
        }
        let mut handle = warm_handle.expect("created above");
        let startup = started.elapsed();

        // ⑤/⑥ Run user code.
        let exec_started = Instant::now();
        let mut ctx = InvokeCtx {
            input: input.to_vec(),
            log: &mut handle,
        };
        let result = (code.entry)(&mut ctx);
        let execution = exec_started.elapsed();

        let mut inner = self.inner.lock();
        inner.workers[worker_idx].active -= 1;
        inner.workers[worker_idx].total_served += 1;
        inner.workers[worker_idx]
            .warm
            .insert(function.to_string(), handle);
        inner.records.push(InvocationRecord {
            function: function.to_string(),
            worker: worker_idx,
            cold_start: cold,
            startup,
            execution,
        });
        result.map_err(InvocationError::Runtime)
    }

    /// All invocation records so far.
    pub fn records(&self) -> Vec<InvocationRecord> {
        self.inner.lock().records.clone()
    }

    /// Invocations served per worker (load-balance observability).
    pub fn worker_loads(&self) -> Vec<u64> {
        self.inner.lock().workers.iter().map(|w| w.total_served).collect()
    }

    /// The color storing images.
    pub fn image_color(&self) -> ColorId {
        self.images
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_core::ClusterSpec;

    fn echo_code(name: &str) -> FunctionCode {
        FunctionCode {
            name: name.to_string(),
            image: vec![0xAB; 2048],
            entry: Arc::new(|ctx| {
                let mut out = b"echo:".to_vec();
                out.extend_from_slice(&ctx.input);
                Ok(out)
            }),
        }
    }

    #[test]
    fn deploy_and_invoke() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 2);
        platform.deploy(echo_code("echo")).unwrap();
        let out = platform.invoke("key-1", "echo", b"hi").unwrap();
        assert_eq!(out, b"echo:hi");
        cluster.shutdown();
    }

    #[test]
    fn bad_api_key_rejected() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 1);
        platform.deploy(echo_code("echo")).unwrap();
        assert_eq!(
            platform.invoke("nope", "echo", b""),
            Err(InvocationError::Unauthorized)
        );
        cluster.shutdown();
    }

    #[test]
    fn unknown_function_rejected() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 1);
        assert!(matches!(
            platform.invoke("key-1", "ghost", b""),
            Err(InvocationError::UnknownFunction(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn duplicate_deploy_rejected() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 1);
        platform.deploy(echo_code("f")).unwrap();
        assert!(matches!(
            platform.deploy(echo_code("f")),
            Err(DeployError::AlreadyDeployed(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn second_invocation_is_warm() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 1);
        platform.deploy(echo_code("f")).unwrap();
        platform.invoke("key-1", "f", b"1").unwrap();
        platform.invoke("key-1", "f", b"2").unwrap();
        let records = platform.records();
        assert!(records[0].cold_start);
        assert!(!records[1].cold_start, "warm instance must be reused");
        assert!(
            records[1].startup < records[0].startup,
            "warm start must skip image fetch + init"
        );
        cluster.shutdown();
    }

    #[test]
    fn functions_share_state_through_the_log() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        cluster.add_color(ColorId(41)).unwrap();
        let platform = FaasPlatform::new(&cluster, ColorId(40), 2);
        platform
            .deploy(FunctionCode {
                name: "producer".into(),
                image: vec![1; 512],
                entry: Arc::new(|ctx| {
                    let sn = ctx
                        .log
                        .append(&ctx.input, ColorId(41))
                        .map_err(|e| e.to_string())?;
                    Ok(sn.0.to_le_bytes().to_vec())
                }),
            })
            .unwrap();
        platform
            .deploy(FunctionCode {
                name: "consumer".into(),
                image: vec![2; 512],
                entry: Arc::new(|ctx| {
                    let sn = flexlog_core::SeqNum(u64::from_le_bytes(
                        ctx.input[..8].try_into().map_err(|_| "bad input")?,
                    ));
                    ctx.log
                        .read(sn, ColorId(41))
                        .map_err(|e| e.to_string())?
                        .map(|p| p.to_vec())
                        .ok_or_else(|| "not found".to_string())
                }),
            })
            .unwrap();

        let sn_bytes = platform.invoke("key-1", "producer", b"shared!").unwrap();
        let read_back = platform.invoke("key-1", "consumer", &sn_bytes).unwrap();
        assert_eq!(read_back, b"shared!");
        cluster.shutdown();
    }

    #[test]
    fn load_spreads_across_workers() {
        let cluster = FlexLogCluster::start(ClusterSpec::single_shard());
        let platform = FaasPlatform::new(&cluster, ColorId(40), 3);
        platform.deploy(echo_code("f")).unwrap();
        for i in 0..9 {
            platform.invoke("key-1", "f", &[i]).unwrap();
        }
        let loads = platform.worker_loads();
        assert_eq!(loads.iter().sum::<u64>(), 9);
        cluster.shutdown();
    }
}
