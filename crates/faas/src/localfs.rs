//! A syscall-shaped local filesystem over the simulated SSD, instrumented
//! per syscall — the measurement harness behind Table 1.
//!
//! The paper profiles serverless functions with `perf`, attributing CPU
//! time to `open`, `read`, `write`, `fstat` and `close`. This module
//! provides the same five operations backed by an [`SsdDevice`] in spin
//! (real-latency) mode and records wall time per syscall into a
//! [`StorageProfile`], so a workload's storage-time share is measured
//! directly. The cost model follows Linux buffered I/O:
//!
//! * `open` of a file not seen before pays a cold metadata read (directory
//!   lookup); re-opens hit the dentry cache;
//! * `read` pays a cold device read on the first touch of every readahead
//!   window; everything inside a prefetched window is a page-cache copy;
//! * `write` lands in the page cache; dirty-page throttling makes the
//!   writer pay one unit of inline writeback every few dirty units;
//! * `fstat`/`close` are cheap syscalls (inode already cached).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use flexlog_pm::{DeviceClock, SsdDevice};

/// A file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fd(u64);

/// Filesystem errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    NotFound(String),
    BadFd(Fd),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::BadFd(fd) => write!(f, "bad file descriptor {fd:?}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Wall time spent per storage syscall (Table 1's rows).
#[derive(Clone, Debug, Default)]
pub struct StorageProfile {
    per_syscall: HashMap<&'static str, Duration>,
    calls: HashMap<&'static str, u64>,
}

impl StorageProfile {
    fn add(&mut self, name: &'static str, d: Duration) {
        *self.per_syscall.entry(name).or_default() += d;
        *self.calls.entry(name).or_default() += 1;
    }

    /// Total time in storage syscalls.
    pub fn total(&self) -> Duration {
        self.per_syscall.values().sum()
    }

    /// Time spent in one syscall.
    pub fn of(&self, name: &str) -> Duration {
        self.per_syscall.get(name).copied().unwrap_or_default()
    }

    /// Number of invocations of one syscall.
    pub fn calls_of(&self, name: &str) -> u64 {
        self.calls.get(name).copied().unwrap_or_default()
    }

    /// Share of `total_runtime` attributable to each syscall, as
    /// percentages, in Table 1's row order.
    pub fn shares(&self, total_runtime: Duration) -> Vec<(&'static str, f64)> {
        let t = total_runtime.as_secs_f64().max(f64::EPSILON);
        ["open", "read", "write", "fstat", "close"]
            .iter()
            .map(|&name| (name, 100.0 * self.of(name).as_secs_f64() / t))
            .collect()
    }

    /// Total storage share of `total_runtime` (Table 1's "Total" row).
    pub fn total_share(&self, total_runtime: Duration) -> f64 {
        100.0 * self.total().as_secs_f64() / total_runtime.as_secs_f64().max(f64::EPSILON)
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &StorageProfile) {
        for (&k, &v) in &other.per_syscall {
            *self.per_syscall.entry(k).or_default() += v;
        }
        for (&k, &v) in &other.calls {
            *self.calls.entry(k).or_default() += v;
        }
    }
}

struct OpenFile {
    name: String,
    cursor: usize,
}

struct FsInner {
    /// name → content.
    files: HashMap<String, Vec<u8>>,
    open: HashMap<Fd, OpenFile>,
    next_fd: u64,
    profile: StorageProfile,
    /// Dentry cache: names already looked up.
    dentry_cache: HashSet<String>,
    /// Page cache: (file, readahead window) pairs already resident.
    page_cache: HashSet<(String, usize)>,
    /// Units written since the last inline writeback.
    dirty_units: usize,
}

/// See module docs.
pub struct LocalFs {
    ssd: SsdDevice,
    inner: Mutex<FsInner>,
    /// Chunk granularity for charging device latency.
    io_unit: usize,
    /// Sequential readahead window in io_units.
    readahead: usize,
    /// Dirty-page throttling period in units.
    writeback_every: usize,
}

/// Metadata returned by [`LocalFs::fstat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    pub size: usize,
}

impl LocalFs {
    /// A filesystem with real (spin-clock) SSD latency — profiles reflect
    /// wall time like the paper's `perf` runs.
    pub fn new() -> Self {
        LocalFs {
            ssd: SsdDevice::new(DeviceClock::spin()),
            inner: Mutex::new(FsInner {
                files: HashMap::new(),
                open: HashMap::new(),
                next_fd: 3, // 0–2 are taken, like home
                profile: StorageProfile::default(),
                dentry_cache: HashSet::new(),
                page_cache: HashSet::new(),
                dirty_units: 0,
            }),
            io_unit: 4096,
            readahead: 16,
            writeback_every: 2,
        }
    }

    /// Pre-populates a file without touching the profile (test fixtures).
    pub fn put_file(&self, name: &str, content: Vec<u8>) {
        self.inner.lock().files.insert(name.to_string(), content);
    }

    /// File contents, bypassing the syscall layer (assertions).
    pub fn raw_contents(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.lock().files.get(name).cloned()
    }

    /// `open(2)`: creates the file if absent. A cold path lookup pays a
    /// metadata device read; re-opens hit the dentry cache.
    pub fn open(&self, name: &str) -> Fd {
        let start = Instant::now();
        let cold = {
            let mut inner = self.inner.lock();
            inner.dentry_cache.insert(name.to_string())
        };
        if cold {
            self.ssd.charge_read(4096); // directory block
        } else {
            self.ssd.charge_syscall();
        }
        let mut inner = self.inner.lock();
        inner.files.entry(name.to_string()).or_default();
        let fd = Fd(inner.next_fd);
        inner.next_fd += 1;
        inner.open.insert(
            fd,
            OpenFile {
                name: name.to_string(),
                cursor: 0,
            },
        );
        inner.profile.add("open", start.elapsed());
        fd
    }

    /// `read(2)`: reads up to `len` bytes at the cursor. The first touch of
    /// each readahead window pays the device; the rest is page-cache copy.
    pub fn read(&self, fd: Fd, len: usize) -> Result<Vec<u8>, FsError> {
        let start = Instant::now();
        let (name, cursor, data) = {
            let mut inner = self.inner.lock();
            let file = inner.open.get(&fd).ok_or(FsError::BadFd(fd))?;
            let name = file.name.clone();
            let cursor = file.cursor;
            let content = inner
                .files
                .get(&name)
                .ok_or_else(|| FsError::NotFound(name.clone()))?;
            let end = (cursor + len).min(content.len());
            let data = content[cursor.min(content.len())..end].to_vec();
            inner.open.get_mut(&fd).expect("checked").cursor = end;
            (name, cursor, data)
        };
        self.ssd.charge_syscall();
        let window_bytes = self.io_unit * self.readahead;
        let end = cursor + data.len();
        let mut window = cursor / window_bytes;
        loop {
            let cold = self
                .inner
                .lock()
                .page_cache
                .insert((name.clone(), window));
            if cold {
                // Cold window: one device read covers the readahead span.
                self.ssd
                    .charge_read(window_bytes.min(data.len().max(self.io_unit)));
            }
            if (window + 1) * window_bytes >= end.max(cursor + 1) {
                break;
            }
            window += 1;
        }
        self.inner.lock().profile.add("read", start.elapsed());
        Ok(data)
    }

    /// `write(2)`: appends/overwrites at the cursor. Page-cache write plus
    /// throttled inline writeback.
    pub fn write(&self, fd: Fd, data: &[u8]) -> Result<usize, FsError> {
        let start = Instant::now();
        {
            let mut inner = self.inner.lock();
            let file = inner.open.get(&fd).ok_or(FsError::BadFd(fd))?;
            let name = file.name.clone();
            let cursor = file.cursor;
            let content = inner.files.entry(name.clone()).or_default();
            if content.len() < cursor {
                content.resize(cursor, 0);
            }
            if cursor == content.len() {
                content.extend_from_slice(data);
            } else {
                let end = (cursor + data.len()).min(content.len());
                content[cursor..end].copy_from_slice(&data[..end - cursor]);
                content.extend_from_slice(&data[end - cursor..]);
            }
            inner.open.get_mut(&fd).expect("checked").cursor = cursor + data.len();
        }
        self.ssd.charge_syscall();
        let units = data.len().div_ceil(self.io_unit).max(1);
        for _ in 0..units {
            let throttle = {
                let mut inner = self.inner.lock();
                inner.dirty_units += 1;
                if inner.dirty_units >= self.writeback_every {
                    inner.dirty_units = 0;
                    true
                } else {
                    false
                }
            };
            if throttle {
                // Inline writeback of one unit (dirty-page balancing).
                self.ssd.charge_write(self.io_unit);
            }
        }
        self.inner.lock().profile.add("write", start.elapsed());
        Ok(data.len())
    }

    /// `fstat(2)`: the inode is cached after open — syscall cost only.
    pub fn fstat(&self, fd: Fd) -> Result<Stat, FsError> {
        let start = Instant::now();
        let size = {
            let inner = self.inner.lock();
            let file = inner.open.get(&fd).ok_or(FsError::BadFd(fd))?;
            inner.files.get(&file.name).map_or(0, |c| c.len())
        };
        self.ssd.charge_syscall();
        self.inner.lock().profile.add("fstat", start.elapsed());
        Ok(Stat { size })
    }

    /// `close(2)`: releases the descriptor; remaining dirty pages are
    /// written back asynchronously (not charged, like a real close).
    pub fn close(&self, fd: Fd) -> Result<(), FsError> {
        let start = Instant::now();
        {
            let mut inner = self.inner.lock();
            inner.open.remove(&fd).ok_or(FsError::BadFd(fd))?;
        }
        self.ssd.charge_syscall();
        self.inner.lock().profile.add("close", start.elapsed());
        Ok(())
    }

    /// Snapshot of the syscall profile.
    pub fn profile(&self) -> StorageProfile {
        self.inner.lock().profile.clone()
    }

    /// Resets the profile (between workload runs).
    pub fn reset_profile(&self) {
        self.inner.lock().profile = StorageProfile::default();
    }

    /// Drops the simulated page/dentry caches (fresh-start runs).
    pub fn drop_caches(&self) {
        let mut inner = self.inner.lock();
        inner.dentry_cache.clear();
        inner.page_cache.clear();
        inner.dirty_units = 0;
    }
}

impl Default for LocalFs {
    fn default() -> Self {
        LocalFs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_write_read_roundtrip() {
        let fs = LocalFs::new();
        let fd = fs.open("/tmp/a");
        fs.write(fd, b"hello ").unwrap();
        fs.write(fd, b"world").unwrap();
        fs.close(fd).unwrap();

        let fd = fs.open("/tmp/a");
        assert_eq!(fs.fstat(fd).unwrap().size, 11);
        assert_eq!(fs.read(fd, 5).unwrap(), b"hello");
        assert_eq!(fs.read(fd, 100).unwrap(), b" world");
        assert_eq!(fs.read(fd, 10).unwrap(), b"", "EOF");
        fs.close(fd).unwrap();
    }

    #[test]
    fn bad_fd_rejected() {
        let fs = LocalFs::new();
        assert_eq!(fs.read(Fd(99), 1), Err(FsError::BadFd(Fd(99))));
        assert_eq!(fs.close(Fd(99)), Err(FsError::BadFd(Fd(99))));
    }

    #[test]
    fn profile_records_each_syscall() {
        let fs = LocalFs::new();
        let fd = fs.open("/f");
        fs.write(fd, &[0u8; 8192]).unwrap();
        fs.fstat(fd).unwrap();
        let fd2 = fs.open("/f");
        fs.read(fd2, 8192).unwrap();
        fs.close(fd).unwrap();
        fs.close(fd2).unwrap();
        let p = fs.profile();
        for s in ["open", "read", "write", "fstat", "close"] {
            assert!(p.of(s) > Duration::ZERO, "{s} unrecorded");
        }
        assert_eq!(p.calls_of("open"), 2);
        assert_eq!(p.calls_of("close"), 2);
        assert!(p.total() > Duration::ZERO);
    }

    #[test]
    fn cold_open_costs_more_than_cached_open() {
        let fs = LocalFs::new();
        let fd = fs.open("/cold");
        fs.close(fd).unwrap();
        let cold = fs.profile().of("open");
        fs.reset_profile();
        let fd = fs.open("/cold"); // dentry-cached now
        fs.close(fd).unwrap();
        let cached = fs.profile().of("open");
        assert!(cold > cached * 2, "cold {cold:?} vs cached {cached:?}");
    }

    #[test]
    fn sequential_reads_benefit_from_readahead() {
        let fs = LocalFs::new();
        fs.put_file("/big", vec![0u8; 64 * 4096]);
        let fd = fs.open("/big");
        // First 4 KiB read is cold (pays the window); the next reads within
        // the same window must be much cheaper.
        fs.reset_profile();
        fs.read(fd, 4096).unwrap();
        let cold = fs.profile().of("read");
        fs.reset_profile();
        fs.read(fd, 4096).unwrap();
        let warm = fs.profile().of("read");
        assert!(cold > warm * 2, "cold {cold:?} vs warm {warm:?}");
        fs.close(fd).unwrap();
    }

    #[test]
    fn shares_sum_to_total_share() {
        let fs = LocalFs::new();
        let fd = fs.open("/f");
        fs.write(fd, &[1u8; 4096]).unwrap();
        fs.close(fd).unwrap();
        let p = fs.profile();
        let runtime = p.total() * 2; // pretend compute took as long as I/O
        let sum: f64 = p.shares(runtime).iter().map(|(_, s)| s).sum();
        assert!((sum - p.total_share(runtime)).abs() < 1e-6);
        assert!((p.total_share(runtime) - 50.0).abs() < 1.0);
    }

    #[test]
    fn overwrite_in_middle() {
        let fs = LocalFs::new();
        let fd = fs.open("/f");
        fs.write(fd, b"abcdef").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/f");
        fs.read(fd, 2).unwrap(); // cursor = 2
        fs.write(fd, b"XY").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.raw_contents("/f").unwrap(), b"abXYef");
    }
}
