//! The two FunctionBench-style workloads the paper profiles in Table 1:
//! video processing and gzip compression. Both do *real* CPU work over
//! synthetic inputs and *real* (simulated-latency) storage syscalls, so the
//! reported storage-time share is measured end to end.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::localfs::{LocalFs, StorageProfile};

/// Quantized cosine table for the 8-point integer DCT (×1024), indexed by
/// `((2n+1)k) mod 32` quarter-period steps.
static ICOS: [i32; 32] = [
    1024, 1004, 946, 851, 724, 569, 392, 200, 0, -200, -392, -569, -724, -851, -946, -1004,
    -1024, -1004, -946, -851, -724, -569, -392, -200, 0, 200, 392, 569, 724, 851, 946, 1004,
];

/// Result of one profiled workload run (a Table 1 column).
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    pub name: &'static str,
    pub runtime: Duration,
    pub profile: StorageProfile,
}

impl WorkloadReport {
    /// Percentage of runtime in each storage syscall + the total row.
    pub fn table1_column(&self) -> (Vec<(&'static str, f64)>, f64) {
        (
            self.profile.shares(self.runtime),
            self.profile.total_share(self.runtime),
        )
    }
}

/// Video processing: FunctionBench's video workload extracts frames from a
/// chunked input (one file per frame, as the splitter produces), applies a
/// multi-pass pixel transform and keeps the encoded result in memory for
/// upload — its syscall profile is dominated by `open`/`read`, with no
/// `write` time (Table 1 reports write as N/A for this function).
pub fn video_pipeline(fs: &LocalFs, frames: usize, frame_bytes: usize) -> WorkloadReport {
    // Fixture: the pre-split frame files (not part of the profile).
    let mut rng = StdRng::seed_from_u64(42);
    for f in 0..frames {
        let mut frame = vec![0u8; frame_bytes];
        rng.fill(&mut frame[..]);
        fs.put_file(&format!("/in/frames/{f:05}.raw"), frame);
    }
    fs.reset_profile();

    let start = Instant::now();
    let mut encoded = Vec::new();
    for f in 0..frames {
        let fd = fs.open(&format!("/in/frames/{f:05}.raw"));
        let stat = fs.fstat(fd).expect("frame exists");
        let frame = fs.read(fd, stat.size).expect("readable");
        fs.close(fd).expect("open");

        // Pass 1: RGB triplets → luminance with a gamma-ish curve.
        let mut luma = Vec::with_capacity(frame.len() / 3 + 1);
        for px in frame.chunks(3) {
            let r = px[0] as u32;
            let g = px.get(1).copied().unwrap_or(0) as u32;
            let b = px.get(2).copied().unwrap_or(0) as u32;
            let y = (299 * r + 587 * g + 114 * b) / 1000;
            luma.push(((y * y) / 255).min(255) as u8);
        }
        // Pass 2: 1-D blur (cheap stand-in for the encoder's filtering).
        let mut blurred = luma.clone();
        for i in 1..luma.len().saturating_sub(1) {
            blurred[i] =
                ((luma[i - 1] as u32 + 2 * luma[i] as u32 + luma[i + 1] as u32) / 4) as u8;
        }
        // Pass 3: 8-point integer DCT per block — the encoder's transform
        // stage, the genuinely compute-heavy part of video processing.
        let mut coeffs = vec![0i32; blurred.len()];
        for (bi, block) in blurred.chunks(8).enumerate() {
            for (k, c) in coeffs[bi * 8..bi * 8 + block.len()].iter_mut().enumerate() {
                let mut acc = 0i64;
                for (n, &x) in block.iter().enumerate() {
                    // Integer cosine table: cos((2n+1)kπ/16) scaled by 1024.
                    let angle = ((2 * n + 1) * k) % 32;
                    let cos_q = ICOS[angle];
                    acc += x as i64 * cos_q as i64;
                }
                *c = (acc >> 10) as i32;
            }
        }
        // Pass 4: quantize + delta-encode (what the entropy coder sees).
        let mut prev = 0i32;
        for &c in &coeffs {
            let q = c / 16;
            encoded.push((q - prev) as u8);
            prev = q;
        }
    }
    std::hint::black_box(&encoded);
    let runtime = start.elapsed();
    WorkloadReport {
        name: "Video processing",
        runtime,
        profile: fs.profile(),
    }
}

/// Gzip-like compression: compresses a directory of chunk files (the
/// FunctionBench harness hands the function one file per input chunk),
/// streaming the compressed output — real LZ77-style compression work, not
/// a stub. Its syscall profile is open + write dominated like Table 1's
/// gzip column.
pub fn gzip_like(fs: &LocalFs, blocks: usize, block_bytes: usize) -> WorkloadReport {
    // Fixture: compressible text-like chunk files.
    let mut rng = StdRng::seed_from_u64(7);
    let words: Vec<&[u8]> = vec![
        b"serverless ", b"function ", b"storage ", b"log ", b"append ", b"read ", b"flex ",
    ];
    for b in 0..blocks {
        let mut input = Vec::with_capacity(block_bytes);
        while input.len() < block_bytes {
            input.extend_from_slice(words[rng.gen_range(0..words.len())]);
        }
        input.truncate(block_bytes);
        fs.put_file(&format!("/in/chunks/{b:05}.txt"), input);
    }
    fs.reset_profile();

    let start = Instant::now();
    let fd_out = fs.open("/out/data.gz");
    for b in 0..blocks {
        let fd_in = fs.open(&format!("/in/chunks/{b:05}.txt"));
        let stat = fs.fstat(fd_in).expect("chunk exists");
        let block = fs.read(fd_in, stat.size).expect("readable");
        fs.close(fd_in).expect("open");
        let compressed = compress_block(&block);
        // gzip streams its output in small deflate-block writes.
        for chunk in compressed.chunks(512) {
            fs.write(fd_out, chunk).expect("writable");
        }
    }
    fs.close(fd_out).expect("open");
    let runtime = start.elapsed();
    WorkloadReport {
        name: "Gzip compression",
        runtime,
        profile: fs.profile(),
    }
}

/// Greedy LZ77-style compressor with a 64-byte sliding window: emits
/// literals and (distance, length) matches. Decompressible by
/// [`decompress_block`]; used only for its CPU profile fidelity.
pub fn compress_block(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0usize;
    while i < data.len() {
        let window_start = i.saturating_sub(64);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        for cand in window_start..i {
            let mut l = 0usize;
            while i + l < data.len() && data[cand + l] == data[i + l] && l < 255 {
                // Stay inside the already-emitted region for overlapping
                // matches.
                if cand + l >= i {
                    break;
                }
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - cand;
            }
        }
        if best_len >= 4 {
            out.push(0xFF); // match marker
            out.push(best_dist as u8);
            out.push(best_len as u8);
            i += best_len;
        } else {
            // Literal (escape 0xFF).
            if data[i] == 0xFF {
                out.push(0xFF);
                out.push(0);
                out.push(0);
            } else {
                out.push(data[i]);
            }
            i += 1;
        }
    }
    out
}

/// Inverse of [`compress_block`].
pub fn decompress_block(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        if data[i] == 0xFF {
            let dist = data[i + 1] as usize;
            let len = data[i + 2] as usize;
            if dist == 0 && len == 0 {
                out.push(0xFF);
            } else {
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            i += 3;
        } else {
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressor_roundtrips() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0xFF; 40],
            b"the quick brown fox jumps over the lazy dog the quick brown fox".to_vec(),
        ];
        for case in cases {
            let c = compress_block(&case);
            assert_eq!(decompress_block(&c), case, "case {case:?}");
        }
    }

    #[test]
    fn compressor_shrinks_repetitive_input() {
        let data = b"serverless serverless serverless serverless serverless ".repeat(10);
        let c = compress_block(&data);
        assert!(
            c.len() < data.len() / 2,
            "repetitive text must compress: {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn video_pipeline_produces_profile_without_writes() {
        let fs = LocalFs::new();
        let report = video_pipeline(&fs, 4, 3 * 1024);
        // Per-frame files: one open/fstat/read/close each, no writes
        // (Table 1 reports write as N/A for the video function).
        assert_eq!(report.profile.calls_of("open"), 4);
        assert_eq!(report.profile.calls_of("read"), 4);
        assert_eq!(report.profile.calls_of("close"), 4);
        assert_eq!(report.profile.calls_of("write"), 0);
        assert!(report.profile.total() > Duration::ZERO);
        assert!(report.runtime >= report.profile.total());
    }

    #[test]
    fn gzip_workload_produces_compressed_output() {
        let fs = LocalFs::new();
        let report = gzip_like(&fs, 4, 2048);
        let out = fs.raw_contents("/out/data.gz").unwrap();
        assert!(!out.is_empty());
        assert!(out.len() < 4 * 2048, "output must actually compress");
        let (_, total) = report.table1_column();
        assert!(total > 0.0 && total <= 100.0);
    }

    #[test]
    fn storage_share_is_substantial_for_both() {
        // Table 1's claim: a large fraction (tens of percent) of these
        // functions' time goes to storage syscalls.
        let fs = LocalFs::new();
        let video = video_pipeline(&fs, 8, 3 * 4096);
        let fs2 = LocalFs::new();
        let gzip = gzip_like(&fs2, 8, 4096);
        for r in [&video, &gzip] {
            let (_, total) = r.table1_column();
            // The absolute share depends on the build profile: debug-mode
            // compute is ~20× slower than release, deflating the storage
            // share. The unit test only checks that storage time is
            // visible; the table1 bench (release) reports the real shares.
            assert!(
                total > 2.0,
                "{}: storage share suspiciously low: {total:.1}%",
                r.name
            );
        }
    }
}
