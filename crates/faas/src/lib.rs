//! # flexlog-faas
//!
//! A miniature serverless (FaaS) infrastructure in the shape of the paper's
//! Figure 3, plus the profiled workloads behind Table 1.
//!
//! * [`platform`] — the compute tier: front-end servers authenticate and
//!   route invocations ①, the orchestrator tracks cluster utilization ②,
//!   the workers' manager picks a host and fetches the function's state
//!   (its image) from FlexLog ③–④, and the function instance initializes
//!   its runtime and runs user code against the shared log.
//! * [`localfs`] — a syscall-shaped local filesystem over the simulated SSD
//!   (`open`/`read`/`write`/`fstat`/`close`), instrumented per syscall.
//! * [`workloads`] — the two FunctionBench-style functions the paper
//!   profiles: a video-processing pipeline and a gzip-like compressor, both
//!   doing real compute over synthetic data so the storage-time share of
//!   Table 1 is *measured*, not assumed.

pub mod localfs;
pub mod platform;
pub mod workloads;

pub use localfs::{Fd, FsError, LocalFs, StorageProfile};
pub use platform::{
    DeployError, FaasPlatform, FunctionCode, InvocationError, InvocationRecord, InvokeCtx,
};
pub use workloads::{gzip_like, video_pipeline, WorkloadReport};
