//! Bounded nemesis smoke run for CI: one mixed-fault chaos experiment
//! (replica crashes, sequencer fail-overs, shard partitions) against a
//! resilient single-shard cluster, finishing in a few seconds.
//!
//! The seed is fixed so CI is reproducible; export `FLEXLOG_CHAOS_SEED` to
//! replay a different schedule. Exits non-zero (panic) on any invariant
//! violation, printing the seed and the full fault plan.
//!
//! By default the cluster runs on an instant network. Export
//! `FLEXLOG_NEMESIS_NET=datacenter` to run the same schedule over delayed,
//! jittered links with all four delay-scheduler shards active — CI runs
//! both, so faults are injected while the sharded data plane is live.

use std::time::Duration;

use flexlog_chaos::{run_chaos, seed_from_env, ChaosOptions, PlanConfig, WorkloadConfig};
use flexlog_core::ClusterSpec;
use flexlog_simnet::NetConfig;
use flexlog_types::ColorId;

fn main() {
    let seed = seed_from_env(0x000C_15A0);
    let net = match std::env::var("FLEXLOG_NEMESIS_NET").as_deref() {
        Ok("datacenter") => NetConfig::datacenter().with_scheduler_shards(4),
        _ => NetConfig::instant(),
    };
    let mut options = ChaosOptions::new(seed);
    options.spec = ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        net,
        client_retry: Duration::from_millis(50),
        client_max_retry: Duration::from_millis(400),
        ..ClusterSpec::single_shard()
    };
    options.workload = WorkloadConfig {
        clients: 3,
        colors: vec![ColorId(1)],
        seed,
        multi_appends: false,
        trims: false,
        think_time: Duration::from_millis(5),
    };
    options.plan_config = PlanConfig {
        horizon: Duration::from_millis(1500),
        episodes: 3,
        downtime: Duration::from_millis(250),
        replica_crashes: true,
        sequencer_crashes: true,
        shard_partitions: true,
    };
    options.duration = Duration::from_millis(2000);
    options.settle = Duration::from_millis(600);

    println!(
        "nemesis smoke: seed {seed:#x}, net {}",
        if options.spec.net.link.delay.is_zero() { "instant" } else { "datacenter(4 scheduler shards)" }
    );
    let report = run_chaos(options);
    println!("{}", report.plan);
    println!(
        "ok: {} operations ({} committed appends, {} errored ops under faults), \
         max epoch {}, final log sizes {:?}",
        report.operations, report.ok_appends, report.errors, report.max_epoch, report.final_sizes,
    );

    // The flight recorder must stay ring-bounded no matter how much chaos
    // traffic it absorbed: occupancy never exceeds capacity, and eviction
    // (if any) is accounted for rather than silent.
    assert!(
        report.trace_events <= report.trace_capacity,
        "tracer ring overflowed its bound: {} events > capacity {}",
        report.trace_events,
        report.trace_capacity,
    );
    assert!(
        report.trace_events > 0,
        "chaos run recorded no trace events; the flight recorder is dark"
    );
    println!(
        "flight recorder: {} / {} ring slots used, {} evicted",
        report.trace_events, report.trace_capacity, report.trace_dropped,
    );
}
