//! Cold-tier nemesis scenarios: archive rounds (client trims plus a
//! policy-driven [`TieringEngine`]) run while the nemesis power-fails a
//! storage replica mid-round or takes the object store down entirely.
//! The §7 invariant suite (via the history checker inside `run_chaos`)
//! must hold regardless: no acked record lost, none served twice, and a
//! store outage only pauses archiving — it never drops live history.

use std::sync::Arc;
use std::time::Duration;

use flexlog_chaos::{
    run_chaos, seed_from_env, ChaosOptions, FaultEvent, FaultKind, FaultPlan, PostCheckFn,
    ReconfigFn, WorkloadConfig,
};
use flexlog_core::{ClusterSpec, FlexLogCluster};
use flexlog_ctrl::{ControlPlane, TieringConfig, TieringEngine};
use flexlog_pm::{ClockMode, DeviceClock};
use flexlog_storage::TierConfig;
use flexlog_tier::{SimObjectStore, TieringPolicy};
use flexlog_types::{ColorId, ShardId};

const RED: ColorId = ColorId(1);

fn store() -> Arc<SimObjectStore> {
    // No modelled latency: these runs are wall-clock scheduled and the
    // fault windows are what matters, not the milliseconds per put.
    Arc::new(SimObjectStore::new(DeviceClock::new(ClockMode::Off)))
}

fn tiered_spec(store: &Arc<SimObjectStore>) -> ClusterSpec {
    let mut spec = ClusterSpec {
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(20),
        client_max_retry: Duration::from_millis(200),
        ..ClusterSpec::single_shard()
    };
    let mut tier = TierConfig::new(store.clone());
    tier.segment_records = 32; // several segments per round, not one blob
    spec.storage.tier = Some(tier);
    spec
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        clients: 3,
        colors: vec![RED],
        seed: 0, // overridden by the harness with the run seed
        multi_appends: false,
        trims: true, // client trims ride the same archive gate
        think_time: Duration::from_millis(5),
    }
}

/// A driver that runs the declarative tiering loop for most of the run:
/// every tick re-observes span sizes and actuates archive rounds on the
/// hosting replicas. Errors are ignored — under fire a round may time
/// out against a crashed replica; the next tick retries.
fn tiering_driver() -> ReconfigFn {
    Box::new(|cluster: &FlexLogCluster| {
        let mut plane = ControlPlane::new(cluster);
        plane.timeout = Duration::from_millis(400);
        let config = TieringConfig {
            policy: TieringPolicy::parse("when span >= 16 then archive keep=8 max=4096")
                .expect("valid policy"),
            min_observation: Duration::from_millis(5),
            max_moves_per_tick: 2,
        };
        let mut engine = TieringEngine::new(plane, config);
        for _ in 0..40 {
            let _ = engine.tick();
            std::thread::sleep(Duration::from_millis(20));
        }
    })
}

/// Asserts the run actually exercised the archiver (a nemesis scenario
/// that never archives proves nothing).
fn archived_something() -> PostCheckFn {
    Box::new(|cluster: &FlexLogCluster| {
        let snap = cluster.obs().snapshot();
        let segments = snap.counters.get("storage.archived_segments").copied().unwrap_or(0);
        if segments == 0 {
            vec!["expected at least one archived segment during the run".into()]
        } else {
            Vec::new()
        }
    })
}

/// Scenario 1: a storage replica power-fails mid-archive-round and later
/// restarts (recovering from PM/SSD media; its manifest cache reloads
/// lazily from the shared store). The §7 invariants must hold, and the
/// surviving replicas must keep archiving through the crash window.
#[test]
fn storage_crash_mid_archive_round() {
    let seed = seed_from_env(0x71E_0001);
    let store = store();
    let spec = tiered_spec(&store);
    let victim = {
        let probe = FlexLogCluster::start(spec.clone());
        let node = probe.data().shard_replicas(ShardId(0))[1];
        probe.shutdown();
        node
    };
    // The probe cluster archived nothing, but its devices are gone; reuse
    // of the store is harmless (fresh run, same empty bucket).

    let mut options = ChaosOptions::new(seed);
    options.spec = spec;
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            // The driver starts ticking at 100 ms; by 300 ms archive
            // rounds are in flight on all three replicas.
            FaultEvent {
                at: Duration::from_millis(300),
                kind: FaultKind::CrashReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(700),
                kind: FaultKind::RestartReplica { node: victim },
            },
        ],
    ));
    options.reconfig = Some((Duration::from_millis(100), tiering_driver()));
    options.object_store = Some(store);
    options.post = Some(archived_something());
    options.duration = Duration::from_millis(1500);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the archive crash window: {report:?}"
    );
}

/// Scenario 2: the object store goes dark across several trim and
/// archive rounds, then heals. While dark, trims must stop releasing
/// bytes (nothing new is durable below) and reads degrade to the live
/// tiers; after the heal, archiving resumes. Nothing acked is lost.
#[test]
fn object_store_outage_during_trims() {
    let seed = seed_from_env(0x71E_0002);
    let store = store();

    let mut options = ChaosOptions::new(seed);
    options.spec = tiered_spec(&store);
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            FaultEvent {
                at: Duration::from_millis(200),
                kind: FaultKind::ObjectStoreOutage,
            },
            FaultEvent {
                at: Duration::from_millis(700),
                kind: FaultKind::ObjectStoreHeal,
            },
        ],
    ));
    options.reconfig = Some((Duration::from_millis(100), tiering_driver()));
    options.object_store = Some(store);
    options.post = Some(archived_something());
    options.duration = Duration::from_millis(1500);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must ride out the object-store outage: {report:?}"
    );
}
