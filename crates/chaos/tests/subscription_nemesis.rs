//! Nemesis scenarios for the push read path: read replicas crash mid-push
//! and colors migrate live while subscribers watch. The delivery guarantee
//! under test: past each subscriber's acked cursor nothing is lost and
//! nothing is delivered twice — after quiescence every subscriber's
//! concatenated stream equals one authoritative pull of the log.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use flexlog_chaos::{run_chaos, seed_from_env, ChaosOptions, FaultEvent, FaultKind, FaultPlan,
    WorkloadConfig};
use flexlog_core::{ClusterSpec, FlexLogCluster};
use flexlog_ctrl::ControlPlane;
use flexlog_ordering::RoleId;
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, CommittedRecord, SeqNum};

const RED: ColorId = ColorId(1);

fn rr_spec() -> ClusterSpec {
    ClusterSpec {
        read_replicas_per_shard: 1,
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(20),
        client_max_retry: Duration::from_millis(200),
        ..ClusterSpec::single_shard()
    }
}

/// Scenario 0 (harness-checked): the generic append/read/subscribe workload
/// runs against a cluster whose read path is served by a read replica, and
/// the replica power-cycles mid-run. The §7 history checker inside
/// `run_chaos` validates P1–P3 over everything clients observed — stale or
/// lost reads through the follower would trip it.
#[test]
fn read_workload_survives_read_replica_power_cycle() {
    let seed = seed_from_env(0x5B5_C001);
    let rr = NodeId::named(NodeId::CLASS_READ_REPLICA, 0);

    let mut options = ChaosOptions::new(seed);
    options.spec = rr_spec();
    options.workload = WorkloadConfig {
        clients: 3,
        colors: vec![RED],
        seed: 0, // overridden by the harness with the run seed
        multi_appends: false,
        trims: false,
        think_time: Duration::from_millis(5),
    };
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            FaultEvent {
                at: Duration::from_millis(300),
                kind: FaultKind::CrashReadReplica { node: rr },
            },
            FaultEvent {
                at: Duration::from_millis(700),
                kind: FaultKind::RestartReadReplica { node: rr },
            },
        ],
    ));
    options.duration = Duration::from_millis(1400);
    options.settle = Duration::from_millis(600);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the read-replica cycle: {report:?}"
    );
}

/// Drains `sub` on its own handle until `target` total records arrived (the
/// writer publishes the count as it goes) or the deadline passes.
fn subscriber_thread(
    cluster: &FlexLogCluster,
    color: ColorId,
    target: &AtomicUsize,
    deadline: Duration,
) -> Vec<CommittedRecord> {
    let mut h = cluster.handle();
    let sub = h.subscribe_push(color).expect("attach");
    let t0 = std::time::Instant::now();
    let mut got = Vec::new();
    loop {
        got.extend(
            h.poll_subscription(sub, Duration::from_millis(20))
                .expect("live subscription"),
        );
        let want = target.load(Ordering::Acquire);
        if (want != usize::MAX && got.len() >= want) || t0.elapsed() > deadline {
            return got;
        }
    }
}

/// One authoritative pull, compared record-for-record with each stream.
fn assert_streams_match_pull(cluster: &FlexLogCluster, color: ColorId, streams: &[Vec<CommittedRecord>]) {
    let mut h = cluster.handle();
    let pulled = h.subscribe_from(color, SeqNum::ZERO).expect("final pull");
    for (i, s) in streams.iter().enumerate() {
        assert_eq!(
            s.len(),
            pulled.len(),
            "subscriber {i}: pushed {} records, the log holds {}",
            s.len(),
            pulled.len()
        );
        for (a, b) in s.iter().zip(pulled.iter()) {
            assert_eq!(a.sn, b.sn, "subscriber {i}: gap or duplicate at {:?}", b.sn);
            assert_eq!(a.payload.as_ref(), b.payload.as_ref(), "subscriber {i}: payload at {:?}", a.sn);
        }
    }
}

/// Scenario 1: the read replica serving 5 push subscriptions power-fails
/// mid-stream and later restarts. Each subscriber's client must detect the
/// silent stream, re-attach to the quorum from its acked cursor, and end
/// with the exact log — nothing lost, nothing duplicated.
#[test]
fn subscribers_survive_read_replica_crash_mid_push() {
    const SUBS: usize = 5;
    const PHASE: usize = 60;
    let c = FlexLogCluster::start(rr_spec());
    c.add_color(RED).unwrap();
    let target = AtomicUsize::new(usize::MAX);

    let streams: Vec<Vec<CommittedRecord>> = std::thread::scope(|scope| {
        let c = &c;
        let target = &target;
        let readers: Vec<_> = (0..SUBS)
            .map(|_| scope.spawn(move || subscriber_thread(c, RED, target, Duration::from_secs(30))))
            .collect();

        let mut writer = c.handle();
        for i in 0..PHASE {
            writer.append(format!("a{i}").as_bytes(), RED).unwrap();
        }
        // Power-fail the read replica while its pushes are in flight.
        let rr = c.data().read_replicas()[0];
        c.data().crash_read_replica(c.network(), rr);
        for i in 0..PHASE {
            writer.append(format!("b{i}").as_bytes(), RED).unwrap();
        }
        // Restart: it refills via the sync pull and rejoins the read path.
        c.data().restart_read_replica(c.network(), rr);
        for i in 0..PHASE {
            writer.append(format!("c{i}").as_bytes(), RED).unwrap();
        }
        target.store(3 * PHASE, Ordering::Release);
        readers.into_iter().map(|r| r.join().expect("subscriber")).collect()
    });

    assert_streams_match_pull(&c, RED, &streams);
    c.shutdown();
}

/// Scenario 2: ten subscribers watch a color through a live migration onto
/// a freshly spawned shard (freeze → copy → cutover, with the acked cursors
/// riding the final span export). Every stream must converge gap-free on
/// the post-migration log.
#[test]
fn ten_subscribers_through_live_migration_converge_gap_free() {
    const SUBS: usize = 10;
    const PHASE: usize = 50;
    let spec = ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(20),
        client_max_retry: Duration::from_millis(200),
        ..ClusterSpec::single_shard()
    };
    let c = FlexLogCluster::start(spec);
    c.add_color(RED).unwrap();
    let target = AtomicUsize::new(usize::MAX);

    let streams: Vec<Vec<CommittedRecord>> = std::thread::scope(|scope| {
        let c = &c;
        let target = &target;
        let readers: Vec<_> = (0..SUBS)
            .map(|_| scope.spawn(move || subscriber_thread(c, RED, target, Duration::from_secs(30))))
            .collect();

        let mut writer = c.handle();
        for i in 0..PHASE {
            writer.append(format!("pre{i}").as_bytes(), RED).unwrap();
        }
        // Live migration: spawn a destination shard and move RED onto it
        // while the subscribers are mid-stream.
        let mut plane = ControlPlane::new(c);
        plane.timeout = Duration::from_millis(800);
        let dest = plane.add_shard(RoleId(0));
        plane.migrate_color(RED, dest.id).expect("migration completes");
        for i in 0..PHASE {
            writer.append(format!("post{i}").as_bytes(), RED).unwrap();
        }
        target.store(2 * PHASE, Ordering::Release);
        readers.into_iter().map(|r| r.join().expect("subscriber")).collect()
    });

    assert_streams_match_pull(&c, RED, &streams);
    c.shutdown();
}
