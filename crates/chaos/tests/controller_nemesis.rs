//! Controller-crash nemesis scenarios: the controller dies at every
//! migration phase (and mid-catch-up-round) while clients keep appending,
//! and a successor recovers from the durable intent WAL. The §7 invariant
//! suite (via [`flexlog_chaos::HistoryChecker`] inside `run_chaos`) must
//! hold, and the scenario-specific post checks assert the recovery
//! contract: no color stays frozen, the migration either completed or
//! fully reverted (never half), and the recovery counters agree with the
//! phase the controller died at.

use std::time::{Duration, Instant};

use flexlog_chaos::{
    run_chaos, seed_from_env, ChaosOptions, FaultEvent, FaultKind, FaultPlan, PostCheckFn,
    ReconfigFn, WorkloadConfig,
};
use flexlog_core::{ClusterSpec, FlexLogCluster};
use flexlog_ctrl::{ControlPlane, CtrlError, CtrlPhase};
use flexlog_ordering::RoleId;
use flexlog_replication::{ClusterMsg, DataMsg};
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, Payload, ShardId, Token};

const RED: ColorId = ColorId(1);

fn resilient_spec() -> ClusterSpec {
    ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(20),
        client_max_retry: Duration::from_millis(200),
        ..ClusterSpec::single_shard()
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        clients: 3,
        colors: vec![RED],
        seed: 0, // overridden by the harness with the run seed
        multi_appends: false,
        trims: false,
        think_time: Duration::from_millis(5),
    }
}

/// A bounded raw append against RED's current shard: `Ok` when it
/// commits, `Err` describing the nack or the timeout. Bypasses the client
/// library (which holds and retries `Frozen` forever) so a regression
/// that leaves the color frozen after recovery surfaces as a violation
/// instead of hanging the test.
fn probe_append(cluster: &FlexLogCluster) -> Result<(), String> {
    let shards = cluster.data().topology.shards_of(RED);
    let shard = shards.first().ok_or("RED has no shard")?;
    let ep = cluster
        .network()
        .register(NodeId::named(0, (u64::MAX >> 4) - 7_777));
    let token = Token(u64::MAX - 0xBEEF);
    for &r in &shard.replicas {
        let _ = ep.send(
            r,
            DataMsg::Append {
                color: RED,
                token,
                payloads: vec![Payload::from(&b"post-recovery-probe"[..])],
                reply_to: ep.id(),
            }
            .into(),
        );
    }
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let left = deadline
            .checked_duration_since(Instant::now())
            .ok_or("probe append timed out (color left frozen?)")?;
        match ep.recv_timeout(left) {
            Ok((_, ClusterMsg::Data(DataMsg::AppendAck { token: t, .. }))) if t == token => {
                return Ok(());
            }
            Ok((_, ClusterMsg::Data(DataMsg::Rejected { token: t, reason }))) if t == token => {
                return Err(format!("probe append nacked with {reason:?}"));
            }
            Ok(_) => {}
            Err(e) => return Err(format!("probe append: {e:?}")),
        }
    }
}

/// Driver: scale out, then migrate RED with an injected controller crash
/// right after `phase`'s WAL record persists. The cluster then lives with
/// the orphaned half-reconfiguration under client load for a while
/// (a crash at `Frozen` leaves RED frozen with nobody to thaw it — the
/// workload holds and retries) before a successor attaches to the WAL,
/// fences the dead generation, and rolls the operation forward or back.
fn crash_at_phase_driver(phase: CtrlPhase) -> ReconfigFn {
    Box::new(move |cluster: &FlexLogCluster| {
        let mut plane = ControlPlane::new(cluster);
        plane.timeout = Duration::from_millis(800);
        plane.crash_after = Some(phase);
        let dest = plane.add_shard(RoleId(0));
        let crashed = plane.migrate_color(RED, dest.id);
        assert_eq!(
            crashed,
            Err(CtrlError::Crashed),
            "injected controller crash at {phase:?} did not fire"
        );
        std::thread::sleep(Duration::from_millis(200));
        let (_successor, report) = ControlPlane::recover(cluster);
        assert_eq!(report.in_flight, 1, "recovery must find the orphan at {phase:?}");
        assert_eq!(
            report.rolled_forward + report.rolled_back,
            1,
            "recovery must resolve the orphan at {phase:?}"
        );
    })
}

/// Post-run invariants for a controller crash at `phase`: the decision
/// table resolved the right way, the topology is whole, and RED serves.
fn post_checks(phase: CtrlPhase) -> PostCheckFn {
    Box::new(move |cluster: &FlexLogCluster| {
        let mut violations = Vec::new();
        let forward = phase >= CtrlPhase::Copied;
        let shards = cluster.data().topology.shards_of(RED);
        if shards.len() != 1 {
            violations.push(format!("RED must live on exactly one shard, got {shards:?}"));
        } else {
            let expect = if forward { ShardId(1) } else { ShardId(0) };
            if shards[0].id != expect {
                violations.push(format!(
                    "crash at {phase:?}: migration neither completed nor fully \
                     reverted (RED on {:?}, expected {:?})",
                    shards[0].id, expect
                ));
            }
        }
        let snap = cluster.obs().snapshot();
        if snap.counter("ctrl.recovery.scans") < 2 {
            violations.push("successor never ran a recovery scan".into());
        }
        let fwd = snap.counter("ctrl.recovery.rolled_forward");
        let back = snap.counter("ctrl.recovery.rolled_back");
        if fwd + back != 1 {
            violations.push(format!(
                "exactly one resolution expected, got forward={fwd} back={back}"
            ));
        } else if forward != (fwd == 1) {
            violations.push(format!(
                "crash at {phase:?}: resolved the wrong way (forward={fwd} back={back})"
            ));
        }
        if let Err(e) = probe_append(cluster) {
            violations.push(format!("RED must serve after recovery: {e}"));
        }
        violations
    })
}

fn run_phase_scenario(seed: u64, phase: CtrlPhase) {
    let seed = seed_from_env(seed);
    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    // No scripted faults besides the injected crash: the scenario isolates
    // the controller's death at one exact phase.
    options.scripted = Some(FaultPlan::scripted(seed, vec![]));
    options.reconfig = Some((Duration::from_millis(150), crash_at_phase_driver(phase)));
    options.post = Some(post_checks(phase));
    options.duration = Duration::from_millis(1200);
    options.settle = Duration::from_millis(600);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the controller crash: {report:?}"
    );
}

#[test]
fn controller_crash_after_begin() {
    run_phase_scenario(0x316_B001, CtrlPhase::Begun);
}

#[test]
fn controller_crash_after_catchup() {
    run_phase_scenario(0x316_B002, CtrlPhase::CatchUp);
}

#[test]
fn controller_crash_after_freeze() {
    run_phase_scenario(0x316_B003, CtrlPhase::Frozen);
}

#[test]
fn controller_crash_after_drain() {
    run_phase_scenario(0x316_B004, CtrlPhase::Drained);
}

#[test]
fn controller_crash_after_epoch_fence() {
    run_phase_scenario(0x316_B005, CtrlPhase::Fenced);
}

#[test]
fn controller_crash_after_copy() {
    run_phase_scenario(0x316_B006, CtrlPhase::Copied);
}

#[test]
fn controller_crash_after_adopt() {
    run_phase_scenario(0x316_B007, CtrlPhase::Adopted);
}

#[test]
fn controller_crash_after_cutover() {
    run_phase_scenario(0x316_B008, CtrlPhase::CutOver);
}

/// The controller dies *inside* a catch-up round (no phase record yet —
/// only the `Begin` intent is durable), exercising the scripted
/// `CrashController`/`RestartController` fault kinds. A source replica is
/// crashed before the driver starts, so every catch-up round pays its
/// probe timeout (200 ms at the driver's settings) and always finds a
/// fresh delta from the live workload — the window provably spans the
/// 450 ms crash. Recovery must roll the migration back: sources unfrozen,
/// the partial cold import discarded at the destination, RED still routed
/// to the seed shard.
#[test]
fn controller_crash_mid_catchup_round() {
    let seed = seed_from_env(0x316_B009);
    let victim = {
        let probe = FlexLogCluster::start(resilient_spec());
        let node = probe.data().shard_replicas(ShardId(0))[1];
        probe.shutdown();
        node
    };

    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            // Dead before the driver starts: every catch-up round now
            // stalls ≥ 200 ms ranking the export source, and the 80 ms
            // batching delta guarantees each round ships a fresh delta —
            // with threshold 0 the loop holds until its 3.2 s budget.
            FaultEvent {
                at: Duration::from_millis(100),
                kind: FaultKind::CrashReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(450),
                kind: FaultKind::CrashController,
            },
            // The replica returns (and syncs) before the successor
            // controller, so the roll-back's unfreeze round acks promptly.
            FaultEvent {
                at: Duration::from_millis(700),
                kind: FaultKind::RestartReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(900),
                kind: FaultKind::RestartController,
            },
        ],
    ));
    options.reconfig = Some((
        Duration::from_millis(150),
        Box::new(|cluster: &FlexLogCluster| {
            let mut plane = ControlPlane::new(cluster);
            plane.timeout = Duration::from_millis(800);
            plane.catchup_threshold = 0;
            plane.max_catchup_rounds = 10_000;
            let dest = plane.add_shard(RoleId(0));
            // The scripted crash kills this controller's node from the
            // outside; the plane must notice it is dead and return
            // `Crashed` without touching the WAL or the cluster.
            let crashed = plane.migrate_color(RED, dest.id);
            assert_eq!(
                crashed,
                Err(CtrlError::Crashed),
                "a controller crashed mid-catch-up must report Crashed"
            );
        }),
    ));
    options.post = Some(Box::new(|cluster: &FlexLogCluster| {
        let mut violations = Vec::new();
        let shards = cluster.data().topology.shards_of(RED);
        if shards.len() != 1 || shards[0].id != ShardId(0) {
            violations.push(format!(
                "mid-catch-up crash must fully revert: RED on {shards:?}"
            ));
        }
        let snap = cluster.obs().snapshot();
        if snap.counter("ctrl.recovery.rolled_back") < 1 {
            violations.push("recovery must roll the catch-up migration back".into());
        }
        if let Err(e) = probe_append(cluster) {
            violations.push(format!("RED must serve after recovery: {e}"));
        }
        violations
    }));
    options.duration = Duration::from_millis(1500);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the mid-catch-up crash: {report:?}"
    );
}
