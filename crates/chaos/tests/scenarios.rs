//! Nemesis scenarios: seeded fault schedules against live clusters under
//! concurrent load, each validating the full §7 invariant suite through
//! [`flexlog_chaos::HistoryChecker`].
//!
//! Every scenario takes its seed through [`seed_from_env`], so a failing
//! run (which prints its seed and plan) replays exactly with
//! `FLEXLOG_CHAOS_SEED=<seed> cargo test -p flexlog-chaos <name>`.

use std::time::{Duration, Instant};

use flexlog_chaos::{
    run_chaos, seed_from_env, ChaosOptions, FaultEvent, FaultKind, FaultPlan, PlanConfig,
    WorkloadConfig,
};
use flexlog_core::{ClusterSpec, FlexLogCluster};
use flexlog_ordering::RoleId;
use flexlog_replication::ClientError;
use flexlog_simnet::NetConfig;
use flexlog_types::{ColorId, ShardId};

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

/// A spec that survives sequencer crashes: backups and a tight Δ so
/// elections finish well inside a scenario's timeline.
fn resilient_spec() -> ClusterSpec {
    ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        net: NetConfig::instant(),
        client_retry: Duration::from_millis(50),
        client_max_retry: Duration::from_millis(400),
        ..ClusterSpec::single_shard()
    }
}

fn workload(colors: &[ColorId]) -> WorkloadConfig {
    WorkloadConfig {
        clients: 3,
        colors: colors.to_vec(),
        seed: 0, // overridden by the harness with the run seed
        multi_appends: colors.len() >= 2,
        trims: false,
        think_time: Duration::from_millis(5),
    }
}

/// Fault schedule restricted to one family, so each scenario provably
/// exercises the failure mode in its name.
fn only(kind: &str, episodes: usize) -> PlanConfig {
    PlanConfig {
        horizon: Duration::from_millis(900),
        episodes,
        downtime: Duration::from_millis(250),
        replica_crashes: kind == "replica",
        sequencer_crashes: kind == "sequencer",
        shard_partitions: kind == "partition",
    }
}

/// Scenario 1: the leaf sequencer's leader is repeatedly crashed while
/// clients append. Fail-over must bump the epoch (visible in committed
/// SNs) without ever violating P1–P3 or SN monotonicity.
#[test]
fn sequencer_failover_under_load() {
    let seed = seed_from_env(0x5EAF_A111);
    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload(&[RED]);
    options.plan_config = only("sequencer", 2);
    options.duration = Duration::from_millis(1100);

    let report = run_chaos(options);
    assert!(
        report.max_epoch >= 2,
        "two leader crashes must surface a bumped epoch in committed SNs; \
         saw max epoch {} (plan: {})",
        report.max_epoch,
        report.plan,
    );
    assert!(report.ok_appends > 0, "workload made no progress: {report:?}");
}

/// Scenario 2: replicas are power-failed and restarted mid-append. The
/// write-all protocol blocks appends while a replica is down; after the
/// §6.3 sync phase they complete, and nothing committed may be lost.
#[test]
fn replica_crash_mid_append() {
    let seed = seed_from_env(0xC8A5);
    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload(&[RED]);
    options.plan_config = only("replica", 2);
    options.duration = Duration::from_millis(1300);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must complete once crashed replicas restart: {report:?}"
    );
    assert!(
        report
            .plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CrashReplica { .. })),
        "plan never crashed a replica: {}",
        report.plan
    );
}

/// Scenario 3: a whole shard is partitioned away while clients issue
/// multi-color appends (§6.4). Atomicity must hold: either every color of
/// a multi-append commits or none does, partition or not.
#[test]
fn partition_during_multi_append() {
    let seed = seed_from_env(0x9A87);
    let mut options = ChaosOptions::new(seed);
    options.spec = ClusterSpec {
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(50),
        client_max_retry: Duration::from_millis(400),
        ..ClusterSpec::tree(2, 1)
    };
    options.workload = workload(&[RED, GREEN]);
    options.plan_config = only("partition", 2);
    options.duration = Duration::from_millis(1300);

    let report = run_chaos(options);
    assert!(
        report
            .plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::PartitionShard { .. })),
        "plan never partitioned a shard: {}",
        report.plan
    );
    assert!(report.ok_appends > 0, "workload made no progress: {report:?}");
}

/// Scenario 4: a replica restarts (entering the §6.3 sync phase) and the
/// sequencer leader is crashed immediately after, so recovery and
/// fail-over overlap. A scripted plan pins the exact timeline.
#[test]
fn crash_during_sync_phase() {
    let seed = seed_from_env(0x57AC);
    // Probe an identical cluster for its (deterministic) replica node IDs.
    let victim = {
        let probe = FlexLogCluster::start(resilient_spec());
        let node = probe.data().shard_replicas(ShardId(0))[1];
        probe.shutdown();
        node
    };

    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload(&[RED]);
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            FaultEvent {
                at: Duration::from_millis(60),
                kind: FaultKind::CrashReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(360),
                kind: FaultKind::RestartReplica { node: victim },
            },
            // The restarted replica is still syncing when its leaf
            // sequencer dies and a backup takes over.
            FaultEvent {
                at: Duration::from_millis(380),
                kind: FaultKind::CrashSequencer { role: RoleId(0) },
            },
        ],
    ));
    options.duration = Duration::from_millis(1200);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(report.ok_appends > 0, "workload made no progress: {report:?}");
}

/// The replay guarantee at scenario level: two runs with the same seed
/// execute the exact same fault schedule.
#[test]
fn same_seed_reproduces_same_schedule() {
    let seed = 0x00D3_7381; // fixed on purpose: this test is about equality
    let run = |seed| {
        let mut options = ChaosOptions::new(seed);
        options.spec = resilient_spec();
        options.workload = WorkloadConfig {
            clients: 2,
            think_time: Duration::from_millis(8),
            ..workload(&[RED])
        };
        options.plan_config = PlanConfig {
            horizon: Duration::from_millis(500),
            episodes: 2,
            ..PlanConfig::default()
        };
        options.duration = Duration::from_millis(700);
        run_chaos(options)
    };
    let a = run(seed);
    let b = run(seed);
    assert_eq!(a.plan, b.plan, "same seed must produce an identical plan");
    assert_eq!(a.seed, b.seed);
}

/// Companion demo to scenario 2, pinned end to end: an append blocked by a
/// crashed replica completes once the replica restarts and syncs.
#[test]
fn blocked_append_completes_after_replica_restart() {
    let cluster = FlexLogCluster::start(resilient_spec());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    h.append(b"baseline", RED).unwrap();

    let victim = cluster.data().shard_replicas(ShardId(0))[0];
    cluster.data().crash_replica(cluster.network(), victim);

    let blocked = {
        let mut h2 = cluster.handle();
        std::thread::spawn(move || h2.append(b"survives-the-crash", RED))
    };
    std::thread::sleep(Duration::from_millis(250));
    assert!(
        !blocked.is_finished(),
        "write-all append must block while a replica is down"
    );

    cluster
        .data()
        .restart_replica(cluster.network(), cluster.directory(), victim);
    let sn = blocked
        .join()
        .unwrap()
        .expect("append must complete after restart + sync");
    assert_eq!(h.read(sn, RED).unwrap().unwrap(), b"survives-the-crash");
    cluster.shutdown();
}

/// The flight recorder must capture a crashed-then-restarted replica's §6.3
/// recovery: its node id shows a `SyncStart` and a matching `SyncDone` in
/// the cluster trace (same sync round in the event detail).
#[test]
fn restarted_replica_sync_is_visible_in_the_trace() {
    use flexlog_core::{Stage, SYNC_TOKEN};

    let cluster = FlexLogCluster::start(resilient_spec());
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    for i in 0..5u32 {
        h.append(format!("pre-{i}").as_bytes(), RED).unwrap();
    }

    let victim = cluster.data().shard_replicas(ShardId(0))[0];
    cluster.data().crash_replica(cluster.network(), victim);
    std::thread::sleep(Duration::from_millis(100));
    cluster
        .data()
        .restart_replica(cluster.network(), cluster.directory(), victim);

    // The restarted replica must finish its sync phase: appends complete
    // again once the barrier passes.
    h.append(b"post-restart", RED).unwrap();

    let sync_events: Vec<_> = cluster
        .obs()
        .tracer()
        .events_for(SYNC_TOKEN)
        .into_iter()
        .filter(|e| e.node == victim.0)
        .collect();
    let started: Vec<u64> = sync_events
        .iter()
        .filter(|e| e.stage == Stage::SyncStart)
        .map(|e| e.detail)
        .collect();
    let done: Vec<u64> = sync_events
        .iter()
        .filter(|e| e.stage == Stage::SyncDone)
        .map(|e| e.detail)
        .collect();
    assert!(
        !started.is_empty(),
        "restarted replica {victim} never entered the sync phase"
    );
    assert!(
        done.iter().any(|round| started.contains(round)),
        "restarted replica {victim} never finished a sync round it started \
         (started {started:?}, done {done:?})"
    );
    cluster.shutdown();
}

/// Companion demo to scenario 3: when a shard is unreachable, the hardened
/// client reports `ShardUnreachable` after its retry budget — long before
/// the 30 s global deadline would expire.
#[test]
fn partitioned_shard_append_fails_fast_with_shard_unreachable() {
    let spec = ClusterSpec {
        client_retry: Duration::from_millis(30),
        client_max_retry: Duration::from_millis(120),
        client_deadline: Duration::from_secs(30),
        ..ClusterSpec::single_shard()
    };
    let cluster = FlexLogCluster::start(spec);
    cluster.add_color(RED).unwrap();
    let mut h = cluster.handle();
    h.append(b"reachable", RED).unwrap();

    for replica in cluster.data().shard_replicas(ShardId(0)) {
        cluster.network().isolate(replica);
    }

    let started = Instant::now();
    let err = h.append(b"into-the-void", RED).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, ClientError::ShardUnreachable(_)),
        "expected ShardUnreachable, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "unreachable shard must be detected well before the 30s deadline; took {elapsed:?}"
    );

    // After healing, the same client appends again: the failure was
    // diagnosed, not terminal.
    cluster.network().heal();
    h.append(b"back-online", RED).unwrap();
    cluster.shutdown();
}

/// `FLEXLOG_CHAOS_SEED` accepts decimal and 0x-hex; absent means default.
/// Env manipulation stays inside this one test (process-global state).
#[test]
fn chaos_seed_env_parsing() {
    std::env::set_var("FLEXLOG_CHAOS_SEED", "123");
    assert_eq!(seed_from_env(7), 123);
    std::env::set_var("FLEXLOG_CHAOS_SEED", "0xBEEF");
    assert_eq!(seed_from_env(7), 0xBEEF);
    std::env::remove_var("FLEXLOG_CHAOS_SEED");
    assert_eq!(seed_from_env(7), 7);
}
