//! Migration-safety nemesis scenarios: a color migration runs while the
//! nemesis crashes a source replica, a destination replica, or the owning
//! sequencer — and the §7 invariant suite (via [`flexlog_chaos::HistoryChecker`]
//! inside `run_chaos`) must hold regardless of whether the migration
//! completes or aborts. No committed SN may be lost, none duplicated.

use std::time::Duration;

use flexlog_chaos::{
    run_chaos, seed_from_env, ChaosOptions, FaultEvent, FaultKind, FaultPlan, ReconfigFn,
    WorkloadConfig,
};
use flexlog_core::{ClusterSpec, FlexLogCluster};
use flexlog_ctrl::ControlPlane;
use flexlog_ordering::RoleId;
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, ShardId};

const RED: ColorId = ColorId(1);

fn resilient_spec() -> ClusterSpec {
    ClusterSpec {
        backups_per_sequencer: 2,
        delta: Duration::from_millis(80),
        client_retry: Duration::from_millis(20),
        client_max_retry: Duration::from_millis(200),
        ..ClusterSpec::single_shard()
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        clients: 3,
        colors: vec![RED],
        seed: 0, // overridden by the harness with the run seed
        multi_appends: false,
        trims: false,
        think_time: Duration::from_millis(5),
    }
}

/// A driver that scales out and migrates RED onto the new shard. The
/// result is deliberately ignored: under fire the migration may abort
/// (and unfreeze its sources); the invariants must hold either way.
fn migrate_red_driver() -> ReconfigFn {
    Box::new(|cluster: &FlexLogCluster| {
        let mut plane = ControlPlane::new(cluster);
        plane.timeout = Duration::from_millis(800);
        let dest = plane.add_shard(RoleId(0));
        let _ = plane.migrate_color(RED, dest.id);
    })
}

/// Scenario 1: a *source* replica power-fails mid-migration (inside the
/// freeze/drain/copy window) and restarts. Depending on timing the
/// migration either finishes after the replica recovers or aborts; either
/// way every acked append survives exactly once.
#[test]
fn source_replica_crash_mid_migration() {
    let seed = seed_from_env(0x316_A001);
    let victim = {
        let probe = FlexLogCluster::start(resilient_spec());
        let node = probe.data().shard_replicas(ShardId(0))[1];
        probe.shutdown();
        node
    };

    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            FaultEvent {
                at: Duration::from_millis(250),
                kind: FaultKind::CrashReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(550),
                kind: FaultKind::RestartReplica { node: victim },
            },
        ],
    ));
    options.reconfig = Some((Duration::from_millis(200), migrate_red_driver()));
    options.duration = Duration::from_millis(1500);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the migration window: {report:?}"
    );
}

/// Scenario 2: a *destination* replica power-fails right when the span
/// import lands on the new shard. The import round cannot complete, the
/// migration aborts, sources unfreeze — clients must keep appending to
/// the old shard with nothing lost.
#[test]
fn dest_replica_crash_mid_migration() {
    let seed = seed_from_env(0x316_A002);
    // The destination shard is spawned at runtime by the driver; its
    // replica ids are deterministic: the seed shard uses indices 0..3,
    // so the new shard gets 3, 4, 5.
    let dest_victim = NodeId::named(NodeId::CLASS_REPLICA, 3);

    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            FaultEvent {
                at: Duration::from_millis(350),
                kind: FaultKind::CrashReplica { node: dest_victim },
            },
            FaultEvent {
                at: Duration::from_millis(900),
                kind: FaultKind::RestartReplica { node: dest_victim },
            },
        ],
    ));
    // Driver at 100 ms guarantees the destination shard exists (and its
    // replicas are registered) well before the 350 ms crash.
    options.reconfig = Some((Duration::from_millis(100), migrate_red_driver()));
    options.duration = Duration::from_millis(1700);
    options.settle = Duration::from_millis(700);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must survive an aborted migration: {report:?}"
    );
}

/// A driver that holds the pre-freeze catch-up window open (threshold 0
/// never converges; the round cap or budget ends it), so scripted faults
/// land *inside* a catch-up round rather than the freeze window.
fn catchup_migrate_driver() -> ReconfigFn {
    Box::new(|cluster: &FlexLogCluster| {
        let mut plane = ControlPlane::new(cluster);
        plane.timeout = Duration::from_millis(800);
        plane.catchup_threshold = 0;
        plane.max_catchup_rounds = 64;
        let dest = plane.add_shard(RoleId(0));
        let _ = plane.migrate_color(RED, dest.id);
    })
}

/// Scenario 4: a *source* replica and the owning sequencer both die while
/// chained catch-up rounds are streaming the span (ROADMAP item 2's
/// crash-points-in-catch-up requirement). The migration may limp through
/// on the surviving replicas, stall until the election, or abort and
/// unfreeze — under every outcome the §7 history invariants must hold:
/// no acked record lost, none duplicated, per-color order unbroken.
#[test]
fn source_and_sequencer_crash_mid_catchup_round() {
    let seed = seed_from_env(0x316_A004);
    let victim = {
        let probe = FlexLogCluster::start(resilient_spec());
        let node = probe.data().shard_replicas(ShardId(0))[1];
        probe.shutdown();
        node
    };

    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![
            // The driver starts at 150 ms and its first rounds run in
            // milliseconds, so by 200 ms the migration is mid-catch-up.
            FaultEvent {
                at: Duration::from_millis(200),
                kind: FaultKind::CrashReplica { node: victim },
            },
            FaultEvent {
                at: Duration::from_millis(260),
                kind: FaultKind::CrashSequencer { role: RoleId(0) },
            },
            FaultEvent {
                at: Duration::from_millis(700),
                kind: FaultKind::RestartReplica { node: victim },
            },
        ],
    ));
    options.reconfig = Some((Duration::from_millis(150), catchup_migrate_driver()));
    options.duration = Duration::from_millis(1800);
    options.settle = Duration::from_millis(900);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must make progress around the catch-up faults: {report:?}"
    );
}

/// Scenario 3: the *owning sequencer* (the root) is crashed inside the
/// migration window, overlapping the epoch-bump fence with a leader
/// election. The bump may land on the old leader (lost) or the new one;
/// SN monotonicity and P1–P3 must hold across both epoch changes.
#[test]
fn sequencer_crash_mid_migration() {
    let seed = seed_from_env(0x316_A003);
    let mut options = ChaosOptions::new(seed);
    options.spec = resilient_spec();
    options.workload = workload();
    options.scripted = Some(FaultPlan::scripted(
        seed,
        vec![FaultEvent {
            at: Duration::from_millis(300),
            kind: FaultKind::CrashSequencer { role: RoleId(0) },
        }],
    ));
    options.reconfig = Some((Duration::from_millis(250), migrate_red_driver()));
    options.duration = Duration::from_millis(1500);
    options.settle = Duration::from_millis(900);

    let report = run_chaos(options);
    assert!(
        report.ok_appends > 0,
        "appends must resume after fail-over + migration: {report:?}"
    );
}
