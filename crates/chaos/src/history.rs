//! Operation history recording and invariant checking.
//!
//! Workload threads record one [`Observation`] per client operation with
//! wall-clock start/finish offsets. After the run quiesces, the
//! [`HistoryChecker`] validates the history plus the final log contents
//! against the paper's §7 correctness properties. Checks only compare
//! operations whose real-time order is certain (`a.finished ≤ b.started`),
//! so arbitrary thread interleavings never produce false positives.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

use flexlog_replication::ClientError;
use flexlog_types::{ColorId, SeqNum};
use parking_lot::Mutex;

/// What one client operation did and returned.
#[derive(Clone, Debug)]
pub enum OpKind {
    Append {
        color: ColorId,
        payload: Vec<u8>,
        result: Result<SeqNum, ClientError>,
    },
    MultiAppend {
        /// One marker payload per target color (each globally unique).
        sets: Vec<(ColorId, Vec<u8>)>,
        result: Result<(), ClientError>,
    },
    Subscribe {
        color: ColorId,
        /// `Err` snapshots are recorded but carry no records.
        records: Result<Vec<(SeqNum, Vec<u8>)>, ClientError>,
    },
    Read {
        color: ColorId,
        sn: SeqNum,
        value: Result<Option<Vec<u8>>, ClientError>,
    },
    Trim {
        color: ColorId,
        up_to: SeqNum,
        ok: bool,
    },
}

/// One recorded client operation.
#[derive(Clone, Debug)]
pub struct Observation {
    pub client: u32,
    /// Offsets from the harness start instant.
    pub started: Duration,
    pub finished: Duration,
    pub kind: OpKind,
}

/// Shared, append-only history of a chaos run.
pub struct History {
    t0: Instant,
    observations: Mutex<Vec<Observation>>,
}

impl History {
    pub fn new(t0: Instant) -> Self {
        History {
            t0,
            observations: Mutex::new(Vec::new()),
        }
    }

    /// Current offset from the run's start.
    pub fn now(&self) -> Duration {
        self.t0.elapsed()
    }

    pub fn record(&self, client: u32, started: Duration, kind: OpKind) {
        let finished = self.now();
        self.observations.lock().push(Observation {
            client,
            started,
            finished,
            kind,
        });
    }

    pub fn snapshot(&self) -> Vec<Observation> {
        self.observations.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.observations.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Validates a history against the §7 properties. See module docs.
pub struct HistoryChecker<'a> {
    history: &'a [Observation],
    /// Quiescent per-color log contents, subscribed after all faults healed.
    final_logs: &'a HashMap<ColorId, Vec<(SeqNum, Vec<u8>)>>,
}

impl<'a> HistoryChecker<'a> {
    pub fn new(
        history: &'a [Observation],
        final_logs: &'a HashMap<ColorId, Vec<(SeqNum, Vec<u8>)>>,
    ) -> Self {
        HistoryChecker { history, final_logs }
    }

    /// Runs every invariant; returns all violations found (empty = pass).
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let trim_bound = self.trim_bounds();
        self.check_p1_agreement(&mut violations);
        self.check_p1_no_phantoms(&mut violations);
        self.check_p1_no_duplicates(&mut violations);
        self.check_p2_stability(&trim_bound, &mut violations);
        self.check_p3_visibility(&trim_bound, &mut violations);
        self.check_multi_atomicity(&mut violations);
        self.check_sn_monotonicity(&mut violations);
        violations
    }

    /// Highest trim `up_to` *attempted* per color. Even a trim the client
    /// saw fail may have been applied by a subset of replicas, so any
    /// attempt weakens stability for SNs at or below its bound.
    fn trim_bounds(&self) -> HashMap<ColorId, SeqNum> {
        let mut bounds: HashMap<ColorId, SeqNum> = HashMap::new();
        for o in self.history {
            if let OpKind::Trim { color, up_to, .. } = &o.kind {
                let b = bounds.entry(*color).or_insert(SeqNum::ZERO);
                *b = (*b).max(*up_to);
            }
        }
        bounds
    }

    /// Every view of the log, anywhere in the run (subscribes, reads, final
    /// logs), must agree on which payload a (color, SN) slot holds — P1's
    /// "one immutable record per SN".
    fn check_p1_agreement(&self, violations: &mut Vec<String>) {
        let mut slot: BTreeMap<(ColorId, SeqNum), Vec<u8>> = BTreeMap::new();
        let mut claim = |color: ColorId,
                         sn: SeqNum,
                         payload: &[u8],
                         source: &str,
                         violations: &mut Vec<String>| {
            match slot.get(&(color, sn)) {
                None => {
                    slot.insert((color, sn), payload.to_vec());
                }
                Some(existing) if existing == payload => {}
                Some(existing) => violations.push(format!(
                    "P1 violated: {color} {sn:?} holds {:?} but {source} observed {:?}",
                    String::from_utf8_lossy(existing),
                    String::from_utf8_lossy(payload),
                )),
            }
        };
        for o in self.history {
            match &o.kind {
                OpKind::Subscribe {
                    color,
                    records: Ok(records),
                } => {
                    for (sn, p) in records {
                        claim(*color, *sn, p, "a subscribe", violations);
                    }
                }
                OpKind::Read {
                    color,
                    sn,
                    value: Ok(Some(p)),
                } => claim(*color, *sn, p, "a read", violations),
                _ => {}
            }
        }
        for (color, log) in self.final_logs {
            for (sn, p) in log {
                claim(*color, *sn, p, "the final log", violations);
            }
        }
    }

    /// Everything in the final logs must have been appended by the workload
    /// (to that color): nothing is invented by recovery or fail-over.
    fn check_p1_no_phantoms(&self, violations: &mut Vec<String>) {
        let mut legal: HashSet<(ColorId, Vec<u8>)> = HashSet::new();
        for o in self.history {
            match &o.kind {
                OpKind::Append { color, payload, .. } => {
                    legal.insert((*color, payload.clone()));
                }
                OpKind::MultiAppend { sets, .. } => {
                    for (color, payload) in sets {
                        legal.insert((*color, payload.clone()));
                    }
                }
                _ => {}
            }
        }
        for (color, log) in self.final_logs {
            for (sn, p) in log {
                if !legal.contains(&(*color, p.clone())) {
                    violations.push(format!(
                        "P1 violated: phantom record {sn:?} in {color}: {:?} was never appended there",
                        String::from_utf8_lossy(p),
                    ));
                }
            }
        }
    }

    /// Retransmitted appends are deduplicated by token: a payload commits at
    /// most once per color, no matter how many retries the fault window
    /// forced.
    fn check_p1_no_duplicates(&self, violations: &mut Vec<String>) {
        for (color, log) in self.final_logs {
            let mut seen: HashMap<&[u8], SeqNum> = HashMap::new();
            let mut last_sn: Option<SeqNum> = None;
            for (sn, p) in log {
                if let Some(prev) = last_sn {
                    if *sn <= prev {
                        violations.push(format!(
                            "final log of {color} not strictly SN-sorted: {sn:?} after {prev:?}"
                        ));
                    }
                }
                last_sn = Some(*sn);
                if let Some(first) = seen.insert(p.as_slice(), *sn) {
                    violations.push(format!(
                        "duplicate commit in {color}: {:?} at both {first:?} and {sn:?}",
                        String::from_utf8_lossy(p),
                    ));
                }
            }
        }
    }

    /// P2: a record observed committed never disappears from later views,
    /// unless a trim could have removed it.
    fn check_p2_stability(
        &self,
        trim_bound: &HashMap<ColorId, SeqNum>,
        violations: &mut Vec<String>,
    ) {
        type Snapshot<'h> = (&'h Observation, &'h ColorId, &'h Vec<(SeqNum, Vec<u8>)>);
        let snapshots: Vec<Snapshot<'_>> = self
            .history
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Subscribe {
                    color,
                    records: Ok(r),
                } => Some((o, color, r)),
                _ => None,
            })
            .collect();
        let trimmed = |color: ColorId, sn: SeqNum| {
            trim_bound.get(&color).is_some_and(|b| sn <= *b)
        };
        for (a, color_a, recs_a) in &snapshots {
            // Against strictly later snapshots of the same color…
            for (b, color_b, recs_b) in &snapshots {
                if color_a != color_b || a.finished > b.started {
                    continue;
                }
                let later: HashSet<SeqNum> = recs_b.iter().map(|(sn, _)| *sn).collect();
                for (sn, _) in recs_a.iter() {
                    if !later.contains(sn) && !trimmed(**color_a, *sn) {
                        violations.push(format!(
                            "P2 violated: {color_a} {sn:?} seen by client {} at {:?} but gone \
                             from client {}'s subscribe at {:?}",
                            a.client, a.finished, b.client, b.started,
                        ));
                    }
                }
            }
            // …and against the final quiescent log.
            if let Some(final_log) = self.final_logs.get(color_a) {
                let final_sns: HashSet<SeqNum> = final_log.iter().map(|(sn, _)| *sn).collect();
                for (sn, _) in recs_a.iter() {
                    if !final_sns.contains(sn) && !trimmed(**color_a, *sn) {
                        violations.push(format!(
                            "P2 violated: {color_a} {sn:?} observed during the run but absent \
                             from the final log",
                        ));
                    }
                }
            }
        }
    }

    /// P3: once an append has returned, every subscribe that *starts* later
    /// must include it (modulo trims).
    fn check_p3_visibility(
        &self,
        trim_bound: &HashMap<ColorId, SeqNum>,
        violations: &mut Vec<String>,
    ) {
        let trimmed = |color: ColorId, sn: SeqNum| {
            trim_bound.get(&color).is_some_and(|b| sn <= *b)
        };
        for append in self.history {
            let (color, sn) = match &append.kind {
                OpKind::Append {
                    color,
                    result: Ok(sn),
                    ..
                } => (*color, *sn),
                _ => continue,
            };
            for sub in self.history {
                let records = match &sub.kind {
                    OpKind::Subscribe {
                        color: c,
                        records: Ok(r),
                    } if *c == color && sub.started >= append.finished => r,
                    _ => continue,
                };
                if trimmed(color, sn) {
                    continue;
                }
                if !records.iter().any(|(s, _)| *s == sn) {
                    violations.push(format!(
                        "P3 violated: append {sn:?} to {color} finished at {:?} (client {}) \
                         but missing from client {}'s subscribe started at {:?}",
                        append.finished, append.client, sub.client, sub.started,
                    ));
                }
            }
            // The final log is the last subscribe of all.
            if !trimmed(color, sn)
                && !self
                    .final_logs
                    .get(&color)
                    .is_some_and(|log| log.iter().any(|(s, _)| *s == sn))
            {
                violations.push(format!(
                    "P3 violated: completed append {sn:?} to {color} missing from the final log",
                ));
            }
        }
    }

    /// §6.4 multi-color append: all of an op's sets commit, or none do.
    /// An op whose client saw `Ok` must be fully committed.
    fn check_multi_atomicity(&self, violations: &mut Vec<String>) {
        for o in self.history {
            let (sets, result) = match &o.kind {
                OpKind::MultiAppend { sets, result } => (sets, result),
                _ => continue,
            };
            let committed: Vec<bool> = sets
                .iter()
                .map(|(color, payload)| {
                    self.final_logs
                        .get(color)
                        .is_some_and(|log| log.iter().any(|(_, p)| p == payload))
                })
                .collect();
            let n_committed = committed.iter().filter(|&&c| c).count();
            if n_committed != 0 && n_committed != sets.len() {
                violations.push(format!(
                    "multi-append atomicity violated (client {}): {}/{} sets committed \
                     ({:?})",
                    o.client,
                    n_committed,
                    sets.len(),
                    sets.iter()
                        .zip(&committed)
                        .map(|((c, p), ok)| format!(
                            "{c}:{}={}",
                            String::from_utf8_lossy(p),
                            if *ok { "committed" } else { "missing" }
                        ))
                        .collect::<Vec<_>>(),
                ));
            }
            if result.is_ok() && n_committed != sets.len() {
                violations.push(format!(
                    "multi-append acked Ok to client {} but only {}/{} sets committed",
                    o.client,
                    n_committed,
                    sets.len(),
                ));
            }
        }
    }

    /// A client's successive appends to one color get strictly increasing
    /// SNs, across sequencer epochs: fail-over bumps the epoch half, so a
    /// new leader can never hand out an SN below a predecessor's.
    fn check_sn_monotonicity(&self, violations: &mut Vec<String>) {
        let mut last: HashMap<(u32, ColorId), SeqNum> = HashMap::new();
        for o in self.history {
            if let OpKind::Append {
                color,
                result: Ok(sn),
                ..
            } = &o.kind
            {
                if let Some(prev) = last.insert((o.client, *color), *sn) {
                    if *sn <= prev {
                        violations.push(format!(
                            "SN monotonicity violated: client {} got {sn:?} after {prev:?} \
                             on {color} (epoch went {:?} → {:?})",
                            o.client,
                            prev.epoch(),
                            sn.epoch(),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_types::Epoch;

    fn sn(e: u32, c: u32) -> SeqNum {
        SeqNum::new(Epoch(e), c)
    }

    fn obs(client: u32, s_ms: u64, f_ms: u64, kind: OpKind) -> Observation {
        Observation {
            client,
            started: Duration::from_millis(s_ms),
            finished: Duration::from_millis(f_ms),
            kind,
        }
    }

    const C: ColorId = ColorId(7);

    fn append_ok(client: u32, s: u64, f: u64, p: &str, at: SeqNum) -> Observation {
        obs(
            client,
            s,
            f,
            OpKind::Append {
                color: C,
                payload: p.as_bytes().to_vec(),
                result: Ok(at),
            },
        )
    }

    fn subscribe(client: u32, s: u64, f: u64, recs: &[(SeqNum, &str)]) -> Observation {
        obs(
            client,
            s,
            f,
            OpKind::Subscribe {
                color: C,
                records: Ok(recs
                    .iter()
                    .map(|(sn, p)| (*sn, p.as_bytes().to_vec()))
                    .collect()),
            },
        )
    }

    fn logs(recs: &[(SeqNum, &str)]) -> HashMap<ColorId, Vec<(SeqNum, Vec<u8>)>> {
        let mut m = HashMap::new();
        m.insert(
            C,
            recs.iter()
                .map(|(sn, p)| (*sn, p.as_bytes().to_vec()))
                .collect(),
        );
        m
    }

    #[test]
    fn clean_history_passes() {
        let h = vec![
            append_ok(1, 0, 10, "a", sn(1, 1)),
            append_ok(2, 5, 20, "b", sn(1, 2)),
            subscribe(1, 30, 40, &[(sn(1, 1), "a"), (sn(1, 2), "b")]),
        ];
        let logs = logs(&[(sn(1, 1), "a"), (sn(1, 2), "b")]);
        assert_eq!(HistoryChecker::new(&h, &logs).check(), Vec::<String>::new());
    }

    #[test]
    fn p1_detects_disagreeing_views() {
        let h = vec![
            subscribe(1, 0, 10, &[(sn(1, 1), "a")]),
            subscribe(2, 20, 30, &[(sn(1, 1), "OTHER")]),
        ];
        let logs = logs(&[]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("P1 violated")), "{v:?}");
    }

    #[test]
    fn p1_detects_phantom_records() {
        let h = vec![append_ok(1, 0, 10, "real", sn(1, 1))];
        let logs = logs(&[(sn(1, 1), "real"), (sn(1, 2), "phantom")]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("phantom")), "{v:?}");
    }

    #[test]
    fn p1_detects_duplicate_commit() {
        let h = vec![append_ok(1, 0, 10, "a", sn(1, 1))];
        let logs = logs(&[(sn(1, 1), "a"), (sn(1, 5), "a")]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("duplicate commit")), "{v:?}");
    }

    #[test]
    fn p2_detects_lost_record() {
        let h = vec![
            subscribe(1, 0, 10, &[(sn(1, 1), "a")]),
            subscribe(2, 20, 30, &[]),
        ];
        let logs = logs(&[]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("P2 violated")), "{v:?}");
    }

    #[test]
    fn p2_allows_trimmed_records_to_vanish() {
        let h = vec![
            subscribe(1, 0, 10, &[(sn(1, 1), "a")]),
            obs(
                1,
                11,
                12,
                OpKind::Trim {
                    color: C,
                    up_to: sn(1, 1),
                    ok: true,
                },
            ),
            subscribe(2, 20, 30, &[]),
        ];
        let logs = logs(&[]);
        let v: Vec<String> = HistoryChecker::new(&h, &logs)
            .check()
            .into_iter()
            .filter(|m| m.contains("P2"))
            .collect();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn p3_detects_invisible_append() {
        let h = vec![
            append_ok(1, 0, 10, "a", sn(1, 1)),
            subscribe(2, 20, 30, &[]),
        ];
        let logs = logs(&[(sn(1, 1), "a")]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("P3 violated")), "{v:?}");
    }

    #[test]
    fn p3_ignores_concurrent_subscribe() {
        // The subscribe started before the append finished: no ordering
        // guarantee, so absence is fine.
        let h = vec![
            append_ok(1, 0, 10, "a", sn(1, 1)),
            subscribe(2, 5, 8, &[]),
        ];
        let logs = logs(&[(sn(1, 1), "a")]);
        let v: Vec<String> = HistoryChecker::new(&h, &logs)
            .check()
            .into_iter()
            .filter(|m| m.contains("P3"))
            .collect();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multi_atomicity_detects_partial_commit() {
        let other = ColorId(8);
        let h = vec![obs(
            3,
            0,
            10,
            OpKind::MultiAppend {
                sets: vec![
                    (C, b"m1".to_vec()),
                    (other, b"m2".to_vec()),
                ],
                result: Err(ClientError::Timeout),
            },
        )];
        let mut logs = logs(&[(sn(1, 1), "m1")]);
        logs.insert(other, Vec::new());
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("atomicity violated")), "{v:?}");
    }

    #[test]
    fn multi_ok_requires_full_commit() {
        let other = ColorId(8);
        let h = vec![obs(
            3,
            0,
            10,
            OpKind::MultiAppend {
                sets: vec![(C, b"m1".to_vec()), (other, b"m2".to_vec())],
                result: Ok(()),
            },
        )];
        let mut logs = logs(&[]);
        logs.insert(other, Vec::new());
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(v.iter().any(|m| m.contains("acked Ok")), "{v:?}");
    }

    #[test]
    fn monotonicity_detects_sn_regression_across_epochs() {
        let h = vec![
            append_ok(1, 0, 10, "a", sn(2, 1)),
            append_ok(1, 20, 30, "b", sn(1, 99)), // older epoch ⇒ smaller SN
        ];
        let logs = logs(&[(sn(2, 1), "a"), (sn(1, 99), "b")]);
        let v = HistoryChecker::new(&h, &logs).check();
        assert!(
            v.iter().any(|m| m.contains("SN monotonicity violated")),
            "{v:?}"
        );
    }
}
