//! Concurrent client workload driven against a live cluster.
//!
//! Each workload client runs in its own thread with its own [`FlexLog`]
//! handle and its own seeded RNG, picking operations from a fixed mix and
//! recording every call (arguments, result, start/finish offsets) into the
//! shared [`History`]. Operation choice is deterministic per `(seed,
//! client)`; only the interleaving with faults varies, which is exactly the
//! nondeterminism the checker is built to tolerate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use flexlog_core::FlexLog;
use flexlog_types::{ColorId, SeqNum};
use rand::prelude::*;

use crate::history::{History, OpKind};

/// Shape of the generated client load.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Colors the workload writes to (must exist in the cluster).
    pub colors: Vec<ColorId>,
    /// Base seed; client `i` uses `seed ^ (i+1) * SPLIT` so threads draw
    /// independent but reproducible streams.
    pub seed: u64,
    /// Issue §6.4 multi-color appends (needs ≥ 2 colors).
    pub multi_appends: bool,
    /// Let client 0 occasionally trim old records.
    pub trims: bool,
    /// Pause between operations, so faults land between ops too, not only
    /// mid-flight.
    pub think_time: Duration,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            clients: 3,
            colors: vec![ColorId(0)],
            seed: 0,
            multi_appends: true,
            trims: false,
            think_time: Duration::from_millis(2),
        }
    }
}

/// Spawnable per-client workload loop. See module docs.
pub struct Workload;

impl Workload {
    /// Runs one client until `stop` is set. Designed to be called from a
    /// scoped thread; the handle is consumed because `FlexLog` is `!Sync`.
    pub fn run_client(
        config: &WorkloadConfig,
        client: u32,
        mut handle: FlexLog,
        history: &History,
        stop: &AtomicBool,
    ) {
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut op: u64 = 0;
        // SNs this client successfully appended, per color — read targets.
        let mut mine: Vec<(ColorId, SeqNum)> = Vec::new();

        while !stop.load(Ordering::Relaxed) {
            op += 1;
            let color = config.colors[rng.gen_range(0..config.colors.len())];
            let started = history.now();
            let dice = rng.gen_range(0..10u32);
            match dice {
                // Half the mix is appends: they are what faults corrupt.
                0..=4 => {
                    let payload = format!("a/{client}/{op}").into_bytes();
                    let result = handle.append(&payload, color);
                    if let Ok(sn) = result {
                        mine.push((color, sn));
                    }
                    history.record(
                        client,
                        started,
                        OpKind::Append {
                            color,
                            payload,
                            result,
                        },
                    );
                }
                5..=6 => {
                    let records = handle
                        .subscribe(color)
                        .map(|rs| rs.into_iter().map(|r| (r.sn, r.payload.to_vec())).collect());
                    history.record(client, started, OpKind::Subscribe { color, records });
                }
                7 => {
                    if !mine.is_empty() {
                        let (c, sn) = mine[rng.gen_range(0..mine.len())];
                        let value = handle.read(sn, c).map(|o| o.map(|p| p.to_vec()));
                        history.record(client, started, OpKind::Read { color: c, sn, value });
                    }
                }
                8 if config.multi_appends && config.colors.len() >= 2 => {
                    // Two distinct colors, one unique marker each.
                    let a = rng.gen_range(0..config.colors.len());
                    let mut b = rng.gen_range(0..config.colors.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    let sets: Vec<(ColorId, Vec<u8>)> = [a, b]
                        .iter()
                        .enumerate()
                        .map(|(idx, &i)| {
                            (config.colors[i], format!("m/{client}/{op}/{idx}").into_bytes())
                        })
                        .collect();
                    let arg: Vec<(ColorId, Vec<Vec<u8>>)> = sets
                        .iter()
                        .map(|(c, p)| (*c, vec![p.clone()]))
                        .collect();
                    let result = handle.multi_append(&arg);
                    history.record(client, started, OpKind::MultiAppend { sets, result });
                }
                _ => {
                    // Trim is rare, client 0 only: trimming everything as
                    // fast as it commits would leave the checker nothing to
                    // cross-examine.
                    if config.trims && client == 0 && rng.gen_bool(0.25) && mine.len() > 8 {
                        let (c, up_to) = mine[0];
                        let ok = handle.trim(up_to, c).is_ok();
                        history.record(client, started, OpKind::Trim { color: c, up_to, ok });
                    } else {
                        let payload = format!("a/{client}/{op}").into_bytes();
                        let result = handle.append(&payload, color);
                        if let Ok(sn) = result {
                            mine.push((color, sn));
                        }
                        history.record(
                            client,
                            started,
                            OpKind::Append {
                                color,
                                payload,
                                result,
                            },
                        );
                    }
                }
            }
            if !config.think_time.is_zero() {
                std::thread::sleep(config.think_time);
            }
        }
    }
}
