//! # flexlog-chaos
//!
//! Nemesis: a deterministic fault-injection harness for FlexLog clusters.
//!
//! A chaos run is three cooperating pieces:
//!
//! * a [`FaultPlan`] — a reproducible timeline of faults (crash/restart a
//!   replica, crash a sequencer leader, partition a shard away, heal)
//!   generated from a seeded RNG, so **the same seed always produces the
//!   same schedule**;
//! * a [`Workload`] — concurrent client threads that append, read,
//!   subscribe, trim and multi-append against the live cluster while the
//!   nemesis executes the plan, recording every operation into a
//!   [`History`];
//! * a [`HistoryChecker`] — validates the recorded history plus the final
//!   quiescent log contents against the paper's §7 properties:
//!   P1 (consistency: one immutable record per SN, agreed on by every
//!   observer), P2 (stability: committed records never disappear, except
//!   by trim), P3 (append visibility: a completed append is visible to
//!   every later subscribe), multi-color all-or-nothing atomicity (§6.4),
//!   and SN monotonicity across sequencer epochs.
//!
//! On a violation the harness panics with the seed and the full fault plan
//! so the failure replays exactly: re-run with `FLEXLOG_CHAOS_SEED=<seed>`.

mod harness;
mod history;
mod plan;
mod workload;

pub use harness::{run_chaos, seed_from_env, ChaosOptions, ChaosReport, PostCheckFn, ReconfigFn};
pub use history::{History, HistoryChecker, Observation, OpKind};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanConfig, PlanTargets};
pub use workload::{Workload, WorkloadConfig};
