//! The nemesis harness: runs a fault plan against a live cluster under
//! concurrent client load, then checks the recorded history.
//!
//! Lifecycle of [`run_chaos`]:
//!
//! 1. start a [`FlexLogCluster`] and register the workload's colors;
//! 2. extract [`PlanTargets`] from the live topology and generate the
//!    [`FaultPlan`] from the seed (or take a scripted plan as-is);
//! 3. spawn the workload clients and the nemesis thread, which sleeps
//!    between events and injects each fault at its planned offset;
//! 4. stop the workload, let the cluster settle (every plan ends healed),
//!    subscribe each color from a fresh client for the quiescent truth;
//! 5. run the [`HistoryChecker`]; on any violation, panic with the seed
//!    and the full plan so the failure can be replayed exactly via
//!    `FLEXLOG_CHAOS_SEED=<seed>`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use flexlog_core::{FlexLog, FlexLogCluster, ClusterSpec};
use flexlog_ctrl::ControlPlane;
use flexlog_types::{ColorId, SeqNum};

use crate::history::{History, HistoryChecker, OpKind};
use crate::plan::{FaultKind, FaultPlan, PlanConfig, PlanTargets};
use crate::workload::{Workload, WorkloadConfig};

/// A mid-run reconfiguration driver (see [`ChaosOptions::reconfig`]).
pub type ReconfigFn = Box<dyn FnOnce(&FlexLogCluster) + Send>;

/// A post-run invariant check (see [`ChaosOptions::post`]): runs against
/// the quiescent cluster after the history checker and returns extra
/// violations (empty = pass).
pub type PostCheckFn = Box<dyn FnOnce(&FlexLogCluster) -> Vec<String> + Send>;

/// Everything a chaos run needs. `seed` drives both the fault plan and the
/// workload's operation mix.
pub struct ChaosOptions {
    pub seed: u64,
    pub spec: ClusterSpec,
    pub workload: WorkloadConfig,
    pub plan_config: PlanConfig,
    /// Pin an exact timeline instead of generating one from the seed
    /// (scenario tests use this to aim a fault at a precise moment).
    pub scripted: Option<FaultPlan>,
    /// Optional control-plane activity during the run: the driver is
    /// invoked once, on its own thread, `offset` after the workload
    /// starts. Migration-safety scenarios use this to open a
    /// reconfiguration window and aim faults into it.
    pub reconfig: Option<(Duration, ReconfigFn)>,
    /// Scenario-specific invariants checked on the quiescent cluster after
    /// the workload stops and the §7 history checker runs (controller-crash
    /// scenarios assert "no color left frozen", recovery-counter
    /// consistency, topology shape). Violations merge into the same
    /// panic-with-plan report.
    pub post: Option<PostCheckFn>,
    /// The simulated object store backing the cluster's cold tier, when
    /// the spec configures one. The nemesis flips its availability on
    /// [`FaultKind::ObjectStoreOutage`] / [`FaultKind::ObjectStoreHeal`]
    /// directly (the `ObjectStore` trait has no fault surface — only the
    /// simulation does).
    pub object_store: Option<std::sync::Arc<flexlog_tier::SimObjectStore>>,
    /// How long the workload runs. Must cover the plan's horizon, or late
    /// faults fire against an idle cluster.
    pub duration: Duration,
    /// Quiesce time between stopping the workload and taking the final
    /// snapshot, so in-flight recoveries (sync phase, elections) finish.
    pub settle: Duration,
}

impl ChaosOptions {
    pub fn new(seed: u64) -> Self {
        ChaosOptions {
            seed,
            spec: ClusterSpec::single_shard(),
            workload: WorkloadConfig::default(),
            plan_config: PlanConfig::default(),
            scripted: None,
            reconfig: None,
            post: None,
            object_store: None,
            duration: Duration::from_millis(1500),
            settle: Duration::from_millis(500),
        }
    }
}

/// What a (passing) chaos run observed.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    pub seed: u64,
    pub plan: FaultPlan,
    /// Total operations the workload issued.
    pub operations: usize,
    /// Appends that returned `Ok` (including multi-appends).
    pub ok_appends: usize,
    /// Operations that returned an error (expected under faults).
    pub errors: usize,
    /// Highest sequencer epoch seen in any committed SN — `> 1` proves a
    /// fail-over happened during the run.
    pub max_epoch: u32,
    /// Records per color in the final quiescent logs.
    pub final_sizes: HashMap<ColorId, usize>,
    /// Flight-recorder ring occupancy at shutdown (must be ≤ capacity).
    pub trace_events: usize,
    /// Flight-recorder ring capacity.
    pub trace_capacity: usize,
    /// Trace events evicted because the ring was full.
    pub trace_dropped: u64,
}

/// Seed for a chaos run: `FLEXLOG_CHAOS_SEED` (decimal or `0x…` hex) if
/// set, otherwise `default`. Setting the variable replays the exact fault
/// schedule a failing run printed.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("FLEXLOG_CHAOS_SEED") {
        Ok(raw) => {
            let s = raw.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse::<u64>()
            };
            parsed.unwrap_or_else(|_| {
                panic!("FLEXLOG_CHAOS_SEED={raw:?} is not a decimal or 0x-hex u64")
            })
        }
        Err(_) => default,
    }
}

/// Runs one chaos experiment end to end. Panics (with seed + plan) on any
/// invariant violation; returns a [`ChaosReport`] otherwise.
pub fn run_chaos(options: ChaosOptions) -> ChaosReport {
    let mut options = options;
    let reconfig = options.reconfig.take();
    let post = options.post.take();
    let cluster = FlexLogCluster::start(options.spec.clone());
    for &color in &options.workload.colors {
        // Colors may collide with ones the spec pre-registered.
        let _ = cluster.add_color(color);
    }

    let targets = PlanTargets {
        shards: cluster
            .data()
            .topology
            .all_shards()
            .into_iter()
            .map(|s| (s.id, s.replicas))
            .collect(),
        leaf_roles: cluster.leaf_roles(),
    };
    let plan = options
        .scripted
        .clone()
        .unwrap_or_else(|| FaultPlan::generate(options.seed, &targets, &options.plan_config));

    let mut workload = options.workload.clone();
    workload.seed = options.seed;

    // Handles must exist before the scope so threads can take ownership.
    let handles: Vec<FlexLog> = (0..workload.clients).map(|_| cluster.handle()).collect();

    let t0 = Instant::now();
    let history = History::new(t0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for (i, handle) in handles.into_iter().enumerate() {
            let workload = &workload;
            let history = &history;
            let stop = &stop;
            scope.spawn(move || {
                Workload::run_client(workload, i as u32, handle, history, stop);
            });
        }

        // The nemesis itself.
        let cluster = &cluster;
        let plan_ref = &plan;
        let object_store = &options.object_store;
        scope.spawn(move || {
            let net = cluster.network();
            for event in &plan_ref.events {
                let target = t0 + event.at;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                match &event.kind {
                    FaultKind::CrashReplica { node } => {
                        cluster.data().crash_replica(net, *node);
                    }
                    FaultKind::RestartReplica { node } => {
                        cluster.data().restart_replica(net, cluster.directory(), *node);
                    }
                    FaultKind::CrashSequencer { role } => {
                        cluster.ordering().crash_leader(net, *role);
                    }
                    FaultKind::PartitionShard { replicas, .. } => {
                        // `partition()` only separates nodes it knows about;
                        // dynamically registered clients would still get
                        // through. Isolation cuts the replicas off from
                        // everyone, clients included.
                        for &n in replicas {
                            net.isolate(n);
                        }
                    }
                    FaultKind::CrashController => {
                        cluster.crash_controller();
                    }
                    FaultKind::RestartController => {
                        // A successor attaches to the surviving intent WAL,
                        // fences the zombie generation, and rolls every
                        // in-flight reconfiguration forward or back before
                        // this call returns.
                        let _ = ControlPlane::recover(cluster);
                    }
                    FaultKind::CrashReadReplica { node } => {
                        cluster.data().crash_read_replica(net, *node);
                    }
                    FaultKind::RestartReadReplica { node } => {
                        cluster.data().restart_read_replica(net, *node);
                    }
                    FaultKind::ObjectStoreOutage => {
                        if let Some(store) = object_store {
                            store.set_outage(true);
                        }
                    }
                    FaultKind::ObjectStoreHeal => {
                        if let Some(store) = object_store {
                            store.set_outage(false);
                        }
                    }
                    FaultKind::Heal => net.heal(),
                }
            }
        });

        // Mid-run reconfiguration (control-plane activity under fire).
        if let Some((at, driver)) = reconfig {
            scope.spawn(move || {
                let target = t0 + at;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                driver(cluster);
            });
        }

        std::thread::sleep(options.duration);
        stop.store(true, Ordering::Relaxed);
    });

    // All faults are healed by now (plans end with recoveries inside the
    // horizon); give elections and sync phases time to finish.
    std::thread::sleep(options.settle);

    let observations = history.snapshot();
    let mut final_logs: HashMap<ColorId, Vec<(SeqNum, Vec<u8>)>> = HashMap::new();
    let mut violations: Vec<String> = Vec::new();
    let mut reader = cluster.handle();
    for &color in &workload.colors {
        match final_snapshot(&mut reader, color) {
            Ok(log) => {
                final_logs.insert(color, log);
            }
            Err(e) => {
                violations.push(format!(
                    "cluster did not quiesce: final subscribe of {color} kept failing: {e}"
                ));
                final_logs.insert(color, Vec::new());
            }
        }
    }

    violations.extend(HistoryChecker::new(&observations, &final_logs).check());
    if let Some(post) = post {
        violations.extend(post(&cluster));
    }
    if !violations.is_empty() {
        let shown = violations.iter().take(20).cloned().collect::<Vec<_>>();
        panic!(
            "chaos run found {} invariant violation(s):\n  {}\n{}\n{}",
            violations.len(),
            shown.join("\n  "),
            plan,
            incomplete_token_traces(&cluster),
        );
    }

    let mut report = ChaosReport {
        seed: options.seed,
        plan,
        operations: observations.len(),
        ok_appends: 0,
        errors: 0,
        max_epoch: 0,
        final_sizes: final_logs.iter().map(|(c, l)| (*c, l.len())).collect(),
        trace_events: cluster.obs().tracer().len(),
        trace_capacity: cluster.obs().tracer().capacity(),
        trace_dropped: cluster.obs().tracer().dropped(),
    };
    for o in &observations {
        let (ok_append, err, sn) = match &o.kind {
            OpKind::Append { result, .. } => {
                (result.is_ok(), result.is_err(), result.ok())
            }
            OpKind::MultiAppend { result, .. } => (result.is_ok(), result.is_err(), None),
            OpKind::Subscribe { records, .. } => (false, records.is_err(), None),
            OpKind::Read { value, .. } => (false, value.is_err(), None),
            OpKind::Trim { ok, .. } => (false, !ok, None),
        };
        if ok_append {
            report.ok_appends += 1;
        }
        if err {
            report.errors += 1;
        }
        if let Some(sn) = sn {
            report.max_epoch = report.max_epoch.max(sn.epoch().0);
        }
    }
    for log in final_logs.values() {
        for (sn, _) in log {
            report.max_epoch = report.max_epoch.max(sn.epoch().0);
        }
    }

    cluster.shutdown();
    report
}

/// Flight-recorder context for a failed run: the traces of appends that
/// were sent but never acked, i.e. the tokens whose span chains stalled
/// somewhere between the client and the storage tier. Capped so a mass
/// outage does not drown the violation report.
fn incomplete_token_traces(cluster: &FlexLogCluster) -> String {
    use flexlog_core::{Stage, CTRL_TOKEN, SYNC_TOKEN};

    const MAX_TRACES: usize = 10;
    let mut sent: HashMap<flexlog_core::Token, bool> = HashMap::new();
    for e in cluster.obs().tracer().all_events() {
        if e.token == SYNC_TOKEN || e.token == CTRL_TOKEN {
            continue;
        }
        match e.stage {
            Stage::ClientSend => {
                sent.entry(e.token).or_insert(false);
            }
            Stage::ClientAck => {
                sent.insert(e.token, true);
            }
            _ => {}
        }
    }
    let mut incomplete: Vec<flexlog_core::Token> = sent
        .into_iter()
        .filter(|&(_, acked)| !acked)
        .map(|(t, _)| t)
        .collect();
    incomplete.sort_unstable();
    if incomplete.is_empty() {
        return "flight recorder: every sent append was acked".into();
    }
    let total = incomplete.len();
    let mut out = format!("flight recorder: {total} append(s) sent but never acked");
    if total > MAX_TRACES {
        out.push_str(&format!(" (showing first {MAX_TRACES})"));
    }
    out.push('\n');
    for token in incomplete.into_iter().take(MAX_TRACES) {
        out.push_str(&cluster.trace(token).render());
    }
    out
}

/// The quiescent truth for one color. Retries because the first subscribe
/// after a heavy fault window may still race a recovering replica.
fn final_snapshot(
    handle: &mut FlexLog,
    color: ColorId,
) -> Result<Vec<(SeqNum, Vec<u8>)>, flexlog_replication::ClientError> {
    let mut last_err = flexlog_replication::ClientError::Timeout;
    for attempt in 0..5 {
        match handle.subscribe(color) {
            Ok(records) => {
                return Ok(records.into_iter().map(|r| (r.sn, r.payload.to_vec())).collect())
            }
            Err(e) => {
                last_err = e;
                std::thread::sleep(Duration::from_millis(100 * (attempt + 1)));
            }
        }
    }
    Err(last_err)
}
