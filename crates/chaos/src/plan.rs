//! Seeded, reproducible fault timelines.
//!
//! A [`FaultPlan`] is the nemesis's entire script, generated up front from a
//! `u64` seed: the same seed over the same [`PlanTargets`] yields the same
//! events at the same offsets, which is what makes a chaos failure
//! replayable. The plan is data, not behavior — executing it against a live
//! cluster is the harness's job.

use std::fmt;
use std::time::Duration;

use flexlog_ordering::RoleId;
use flexlog_simnet::NodeId;
use flexlog_types::ShardId;
use rand::prelude::*;

/// One fault to inject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Power-fail one replica (network crash + storage power loss).
    CrashReplica { node: NodeId },
    /// Restart a previously crashed replica; it recovers from persistent
    /// storage and runs the §6.3 sync phase.
    RestartReplica { node: NodeId },
    /// Crash the current leader of a sequencer role; a backup takes over
    /// through the Δ-timeout election and bumps the epoch.
    CrashSequencer { role: RoleId },
    /// Cut every replica of a shard off from the rest of the world
    /// (clients included) until the next heal.
    PartitionShard { shard: ShardId, replicas: Vec<NodeId> },
    /// Kill the active controller: its network endpoint goes dark and any
    /// in-flight reconfiguration it was driving stalls mid-phase. The
    /// intent WAL (a separate PM device) survives.
    CrashController,
    /// Start a successor controller: replays the intent WAL, bumps the
    /// generation (fencing the zombie), and rolls every in-flight
    /// reconfiguration forward or back.
    RestartController,
    /// Power-fail one read-only replica (it leaves the read path; clients
    /// re-route reads and push subscriptions to the quorum).
    CrashReadReplica { node: NodeId },
    /// Restart a crashed read replica; it recovers from media and refills
    /// through its steady-state sync pull — no quorum barrier.
    RestartReadReplica { node: NodeId },
    /// The cold object store stops acking: every put/get/list/delete
    /// fails until [`FaultKind::ObjectStoreHeal`]. Archive rounds must
    /// stop releasing PM/SSD bytes (nothing new is durable below) and
    /// reads must degrade to the live tiers — never lose history.
    ObjectStoreOutage,
    /// The object store recovers; archive rounds and read-through resume.
    ObjectStoreHeal,
    /// Restore full connectivity.
    Heal,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CrashReplica { node } => write!(f, "crash replica {node}"),
            FaultKind::RestartReplica { node } => write!(f, "restart replica {node}"),
            FaultKind::CrashSequencer { role } => write!(f, "crash sequencer leader {role:?}"),
            FaultKind::PartitionShard { shard, .. } => {
                write!(f, "partition shard {shard:?} away")
            }
            FaultKind::CrashController => write!(f, "crash controller"),
            FaultKind::RestartController => write!(f, "restart controller"),
            FaultKind::CrashReadReplica { node } => write!(f, "crash read replica {node}"),
            FaultKind::RestartReadReplica { node } => {
                write!(f, "restart read replica {node}")
            }
            FaultKind::ObjectStoreOutage => write!(f, "object store outage"),
            FaultKind::ObjectStoreHeal => write!(f, "object store heals"),
            FaultKind::Heal => write!(f, "heal all partitions"),
        }
    }
}

/// A fault at an offset from the start of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: Duration,
    pub kind: FaultKind,
}

/// What the generator may aim at (extracted from a cluster's topology).
#[derive(Clone, Debug)]
pub struct PlanTargets {
    /// Every shard with its replica set.
    pub shards: Vec<(ShardId, Vec<NodeId>)>,
    /// Sequencer roles whose leader may be crashed (must have backups,
    /// otherwise the color is gone for good).
    pub leaf_roles: Vec<RoleId>,
}

/// Shape of the generated timeline.
#[derive(Clone, Debug)]
pub struct PlanConfig {
    /// Last instant at which a *recovery* event may land; all fault/heal
    /// pairs complete within the horizon.
    pub horizon: Duration,
    /// Number of fault episodes (a crash+restart pair is one episode).
    pub episodes: usize,
    /// Downtime between a crash (or partition) and its recovery.
    pub downtime: Duration,
    pub replica_crashes: bool,
    pub sequencer_crashes: bool,
    pub shard_partitions: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            horizon: Duration::from_millis(1200),
            episodes: 3,
            downtime: Duration::from_millis(250),
            replica_crashes: true,
            sequencer_crashes: true,
            shard_partitions: true,
        }
    }
}

/// A reproducible fault timeline. See module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates a plan from `seed`. Deterministic: same seed, same
    /// targets, same config → identical plan.
    pub fn generate(seed: u64, targets: &PlanTargets, config: &PlanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events: Vec<FaultEvent> = Vec::new();

        // Candidate fault families, in a fixed order for determinism.
        let mut kinds: Vec<u8> = Vec::new();
        if config.replica_crashes && !targets.shards.is_empty() {
            kinds.push(0);
        }
        if config.sequencer_crashes && !targets.leaf_roles.is_empty() {
            kinds.push(1);
        }
        if config.shard_partitions && !targets.shards.is_empty() {
            kinds.push(2);
        }
        if kinds.is_empty() || config.episodes == 0 {
            return FaultPlan { seed, events };
        }

        // Episode start times: spaced so each episode's recovery lands
        // before the next episode begins and before the horizon — the
        // checker's quiescent phase needs a healthy cluster at the end.
        let horizon_ms = config.horizon.as_millis() as u64;
        let downtime_ms = config.downtime.as_millis() as u64;
        let usable = horizon_ms.saturating_sub(downtime_ms).max(1);
        let slot = (usable / config.episodes as u64).max(1);

        // One node may only be downed again after it recovered.
        let mut down_until: std::collections::HashMap<NodeId, u64> = Default::default();

        for ep in 0..config.episodes {
            let lo = ep as u64 * slot + 1;
            let hi = (lo + slot * 3 / 4).max(lo + 1);
            let at_ms = rng.gen_range(lo..hi).min(usable);
            let recover_ms = at_ms + downtime_ms;
            let kind = kinds[rng.gen_range(0..kinds.len())];
            match kind {
                0 => {
                    // Crash one replica of a random shard, restart later.
                    let (_, replicas) = &targets.shards[rng.gen_range(0..targets.shards.len())];
                    let node = replicas[rng.gen_range(0..replicas.len())];
                    if down_until.get(&node).copied().unwrap_or(0) >= at_ms {
                        continue; // still down from a previous episode
                    }
                    down_until.insert(node, recover_ms);
                    events.push(FaultEvent {
                        at: Duration::from_millis(at_ms),
                        kind: FaultKind::CrashReplica { node },
                    });
                    events.push(FaultEvent {
                        at: Duration::from_millis(recover_ms),
                        kind: FaultKind::RestartReplica { node },
                    });
                }
                1 => {
                    let role =
                        targets.leaf_roles[rng.gen_range(0..targets.leaf_roles.len())];
                    events.push(FaultEvent {
                        at: Duration::from_millis(at_ms),
                        kind: FaultKind::CrashSequencer { role },
                    });
                }
                _ => {
                    let (shard, replicas) =
                        targets.shards[rng.gen_range(0..targets.shards.len())].clone();
                    if replicas
                        .iter()
                        .any(|n| down_until.get(n).copied().unwrap_or(0) >= at_ms)
                    {
                        continue;
                    }
                    for &n in &replicas {
                        down_until.insert(n, recover_ms);
                    }
                    events.push(FaultEvent {
                        at: Duration::from_millis(at_ms),
                        kind: FaultKind::PartitionShard { shard, replicas },
                    });
                    // `heal` is global, which is why partitions never
                    // overlap: the generator spaces episodes one slot apart.
                    events.push(FaultEvent {
                        at: Duration::from_millis(recover_ms),
                        kind: FaultKind::Heal,
                    });
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// A hand-written plan (scenario tests pin exact timelines).
    pub fn scripted(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault plan (seed {:#x}, {} events; replay with FLEXLOG_CHAOS_SEED={}):",
            self.seed,
            self.events.len(),
            self.seed
        )?;
        for e in &self.events {
            writeln!(f, "  +{:>6}ms  {}", e.at.as_millis(), e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> PlanTargets {
        PlanTargets {
            shards: vec![
                (ShardId(0), vec![NodeId::named(1, 0), NodeId::named(1, 1)]),
                (ShardId(1), vec![NodeId::named(1, 2), NodeId::named(1, 3)]),
            ],
            leaf_roles: vec![RoleId(0), RoleId(1)],
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = PlanConfig::default();
        let a = FaultPlan::generate(0xC0FFEE, &targets(), &cfg);
        let b = FaultPlan::generate(0xC0FFEE, &targets(), &cfg);
        assert_eq!(a, b, "a seed fully determines the plan");
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = PlanConfig::default();
        let a = FaultPlan::generate(1, &targets(), &cfg);
        let b = FaultPlan::generate(2, &targets(), &cfg);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_sorted_and_recoveries_paired() {
        let cfg = PlanConfig {
            episodes: 6,
            ..PlanConfig::default()
        };
        let plan = FaultPlan::generate(42, &targets(), &cfg);
        let mut last = Duration::ZERO;
        let mut crashes = 0i64;
        for e in &plan.events {
            assert!(e.at >= last, "events must be time-sorted");
            last = e.at;
            match &e.kind {
                FaultKind::CrashReplica { .. } => crashes += 1,
                FaultKind::RestartReplica { .. } => crashes -= 1,
                _ => {}
            }
        }
        assert_eq!(crashes, 0, "every crash has a matching restart");
        let partitions = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PartitionShard { .. }))
            .count();
        let heals = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Heal))
            .count();
        assert_eq!(partitions, heals, "every partition has a matching heal");
    }

    #[test]
    fn display_includes_seed_for_replay() {
        let plan = FaultPlan::generate(0xBEEF, &targets(), &PlanConfig::default());
        let s = plan.to_string();
        assert!(s.contains("0xbeef"), "{s}");
        assert!(s.contains("FLEXLOG_CHAOS_SEED="), "{s}");
    }
}
