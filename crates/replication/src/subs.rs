//! Server-side subscription groups: standing per-color tail cursors.
//!
//! A subscriber registers once ([`DataMsg::SubscribeFrom`]) and the serving
//! replica — quorum or read-only — pushes committed spans to it in batched
//! [`DataMsg::SubPushBatch`] messages as they land, instead of the
//! subscriber polling. The table is shared by [`crate::ReplicaNode`] and
//! [`crate::ReadReplicaNode`]:
//!
//! * **One scan, N subscribers.** Each pump scans a color once from the
//!   *lowest* cursor (bounded by [`SUB_PUSH_MAX`]) and slices the result
//!   per subscriber — fan-out costs one DRAM-cache-friendly sequential
//!   scan plus N refcount bumps, not N scans.
//! * **Ordering.** Within one serving replica, records are pushed in SN
//!   order. A commit-order hole the replica *knows* about (an OResp that
//!   outran its append broadcast) acts as a push barrier so the late
//!   record is not skipped; a hole that fills through recovery paths is
//!   delivered late as a single-record fill. Subscribers deduplicate.
//! * **Cursors.** `cursor` is the optimistic push frontier; `acked` is
//!   what the subscriber confirmed. Only `acked` travels in a migration
//!   handoff ([`crate::msg::SubCursor`]) — re-pushing the in-flight window
//!   is safe, losing it is not.
//! * **Liveness.** An idle subscription gets an empty heartbeat batch;
//!   subscribers re-attach elsewhere when heartbeats stop (crash) or a
//!   [`DataMsg::SubRedirect`] arrives (cutover / drop).

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use flexlog_obs::{Counter, Histogram, ObsHandle, Stage, SUB_TOKEN};
use flexlog_simnet::{Endpoint, NodeId};
use flexlog_storage::StorageServer;
use flexlog_types::{ColorId, CommittedRecord, SeqNum, Token};

use crate::msg::{ClusterMsg, DataMsg, RejectReason, SubCursor};

/// Cap on records per push pump per color: bounds the time one pump steals
/// from the serving replica's event loop. A subscriber further behind
/// catches up across consecutive pumps.
pub(crate) const SUB_PUSH_MAX: usize = 512;

/// How many committed (color, sn) → token pairs a server remembers for
/// per-record `SubPush` tracing. Older pushes fall back to one batch-level
/// event under [`SUB_TOKEN`].
const RECENT_TOKEN_WINDOW: usize = 8192;

struct Sub {
    color: ColorId,
    target: NodeId,
    /// Optimistic push frontier: highest SN sent to the subscriber.
    cursor: SeqNum,
    /// Highest SN the subscriber acknowledged.
    acked: SeqNum,
    last_sent: Instant,
}

/// Bounded (color, sn) → token memory for trace attribution of pushes.
pub(crate) struct RecentTokens {
    map: HashMap<(ColorId, SeqNum), Token>,
    order: VecDeque<(ColorId, SeqNum)>,
}

impl RecentTokens {
    pub(crate) fn new() -> Self {
        RecentTokens {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub(crate) fn insert(&mut self, color: ColorId, sn: SeqNum, token: Token) {
        if self.map.insert((color, sn), token).is_none() {
            self.order.push_back((color, sn));
            while self.order.len() > RECENT_TOKEN_WINDOW {
                if let Some(k) = self.order.pop_front() {
                    self.map.remove(&k);
                }
            }
        }
    }

    fn get(&self, color: ColorId, sn: SeqNum) -> Option<Token> {
        self.map.get(&(color, sn)).copied()
    }
}

/// The subscription table of one serving replica. All methods run inside
/// the owner's single-threaded event loop.
pub(crate) struct SubTable {
    subs: HashMap<u64, Sub>,
    by_color: HashMap<ColorId, Vec<u64>>,
    heartbeat: Duration,
    obs: ObsHandle,
    push_batches: Counter,
    push_records: Counter,
    registered: Counter,
    redirects: Counter,
    push_hist: Histogram,
}

impl SubTable {
    pub(crate) fn new(obs: &ObsHandle, heartbeat: Duration) -> Self {
        SubTable {
            subs: HashMap::new(),
            by_color: HashMap::new(),
            heartbeat,
            push_batches: obs.counter("sub.push_batches"),
            push_records: obs.counter("sub.push_records"),
            registered: obs.counter("sub.registered"),
            redirects: obs.counter("sub.redirects"),
            push_hist: obs.histogram("sub.push_ns"),
            obs: obs.clone(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Colors with at least one live subscription.
    pub(crate) fn colors(&self) -> Vec<ColorId> {
        self.by_color.keys().copied().collect()
    }

    /// Registers (or re-registers — idempotent per `sub`, the cursor moves
    /// to `from`) and immediately answers with a first batch so the
    /// subscriber learns the registration took even on an idle color.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        storage: &StorageServer,
        tokens: &RecentTokens,
        sub: u64,
        color: ColorId,
        from: SeqNum,
        target: NodeId,
        barrier: Option<SeqNum>,
    ) {
        self.remove(sub);
        self.subs.insert(
            sub,
            Sub {
                color,
                target,
                cursor: from,
                acked: from,
                // Force an immediate (possibly empty) first batch below.
                last_sent: Instant::now() - self.heartbeat,
            },
        );
        self.by_color.entry(color).or_default().push(sub);
        self.registered.inc();
        self.pump_color(ep, storage, tokens, color, barrier);
        // Idle color (or everything below the barrier): confirm with an
        // empty batch so the client can tell registration from loss.
        if let Some(s) = self.subs.get_mut(&sub) {
            if s.last_sent + self.heartbeat <= Instant::now() {
                s.last_sent = Instant::now();
                let _ = ep.send(
                    target,
                    DataMsg::SubPushBatch {
                        sub,
                        color,
                        records: Vec::new(),
                    }
                    .into(),
                );
            }
        }
    }

    /// Adopts cursors handed over by a migrating source replica. Resumes
    /// from each subscriber's **acked** SN: anything the source pushed but
    /// the subscriber never confirmed is re-pushed here and deduplicated
    /// client-side.
    pub(crate) fn adopt_cursors(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        storage: &StorageServer,
        tokens: &RecentTokens,
        color: ColorId,
        cursors: &[SubCursor],
    ) {
        for c in cursors {
            self.register(ep, storage, tokens, c.sub, color, c.acked, c.target, None);
        }
    }

    /// The cursors to ship in a migration handoff for `color`.
    pub(crate) fn export_cursors(&self, color: ColorId) -> Vec<SubCursor> {
        self.by_color
            .get(&color)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| {
                        self.subs.get(id).map(|s| SubCursor {
                            sub: *id,
                            target: s.target,
                            acked: s.acked,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    pub(crate) fn ack(&mut self, sub: u64, upto: SeqNum) {
        if let Some(s) = self.subs.get_mut(&sub) {
            s.acked = s.acked.max(upto);
            // The push frontier can never trail the acked frontier (a
            // re-attached subscriber may ack records another replica sent).
            s.cursor = s.cursor.max(s.acked);
        }
    }

    pub(crate) fn cancel(&mut self, sub: u64) {
        self.remove(sub);
    }

    fn remove(&mut self, sub: u64) {
        if let Some(s) = self.subs.remove(&sub) {
            if let Some(ids) = self.by_color.get_mut(&s.color) {
                ids.retain(|&id| id != sub);
                if ids.is_empty() {
                    self.by_color.remove(&s.color);
                }
            }
        }
    }

    /// Tears down every subscription of `color` with a redirect: the
    /// subscriber re-resolves the topology (`ColorMoved`) or terminates
    /// (`Dropped`).
    pub(crate) fn redirect_color(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        color: ColorId,
        reason: RejectReason,
    ) {
        let Some(ids) = self.by_color.remove(&color) else {
            return;
        };
        for id in ids {
            if let Some(s) = self.subs.remove(&id) {
                self.redirects.inc();
                let _ = ep.send(
                    s.target,
                    DataMsg::SubRedirect {
                        sub: id,
                        color,
                        reason,
                    }
                    .into(),
                );
            }
        }
    }

    /// Whether every subscriber has been pushed everything committed —
    /// when false the owner should tick fast to keep catch-up moving.
    pub(crate) fn all_caught_up(&self, storage: &StorageServer) -> bool {
        self.by_color.iter().all(|(&color, ids)| {
            let tail = storage.tail(color).unwrap_or(SeqNum::ZERO);
            ids.iter()
                .all(|id| self.subs.get(id).is_none_or(|s| s.cursor >= tail))
        })
    }

    /// One push pass over every subscribed color. `barrier` is the lowest
    /// SN of a commit the owner knows is still in flight (pending OResp):
    /// nothing at or above it is pushed, so the late record cannot be
    /// skipped past.
    pub(crate) fn pump(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        storage: &StorageServer,
        tokens: &RecentTokens,
        barrier: Option<SeqNum>,
    ) {
        if self.subs.is_empty() {
            return;
        }
        let colors: Vec<ColorId> = self.by_color.keys().copied().collect();
        for color in colors {
            self.pump_color(ep, storage, tokens, color, barrier);
        }
        // Liveness heartbeats for idle subscriptions.
        let now = Instant::now();
        let mut beats: Vec<(NodeId, u64, ColorId)> = Vec::new();
        for (&id, s) in self.subs.iter_mut() {
            if now.saturating_duration_since(s.last_sent) >= self.heartbeat {
                s.last_sent = now;
                beats.push((s.target, id, s.color));
            }
        }
        for (target, sub, color) in beats {
            let _ = ep.send(
                target,
                DataMsg::SubPushBatch {
                    sub,
                    color,
                    records: Vec::new(),
                }
                .into(),
            );
        }
    }

    fn pump_color(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        storage: &StorageServer,
        tokens: &RecentTokens,
        color: ColorId,
        barrier: Option<SeqNum>,
    ) {
        let Some(ids) = self.by_color.get(&color) else {
            return;
        };
        let Some(tail) = storage.tail(color) else {
            return;
        };
        let min_cursor = ids
            .iter()
            .filter_map(|id| self.subs.get(id))
            .map(|s| s.cursor)
            .filter(|&c| c < tail)
            .min();
        let Some(min_cursor) = min_cursor else {
            return;
        };
        let start = Instant::now();
        // A failed archive read-through skips this pump round entirely —
        // pushing the live suffix would skip the stream's cursor past the
        // archived records it still owes. The next round retries.
        let Ok(mut records) = storage.scan_capped(color, min_cursor, SUB_PUSH_MAX) else {
            return;
        };
        if let Some(b) = barrier {
            records.retain(|r| r.sn < b);
        }
        if records.is_empty() {
            return;
        }
        let ids: Vec<u64> = ids.clone();
        let mut pushed = false;
        let mut spans: Vec<(Token, Stage, u64, u64)> = Vec::new();
        for id in ids {
            let Some(s) = self.subs.get_mut(&id) else {
                continue;
            };
            let slice: Vec<CommittedRecord> = records
                .iter()
                .filter(|r| r.sn > s.cursor)
                .cloned()
                .collect();
            let Some(last) = slice.last() else {
                continue;
            };
            s.cursor = last.sn;
            s.last_sent = Instant::now();
            let mut traced = 0usize;
            spans.clear();
            for r in &slice {
                if let Some(t) = tokens.get(color, r.sn) {
                    spans.push((t, Stage::SubPush, ep.id().0, color.0 as u64));
                    traced += 1;
                }
            }
            if traced < slice.len() {
                // Backlog records whose tokens aged out: one batch event.
                spans.push((SUB_TOKEN, Stage::SubPush, ep.id().0, color.0 as u64));
            }
            self.push_batches.inc();
            self.push_records.add(slice.len() as u64);
            // Stamp before the batch leaves: once the subscriber holds the
            // records their traces must already be whole (the same rule the
            // commit path applies to acks).
            self.obs.tracer().record_many(&spans);
            pushed = true;
            let _ = ep.send(
                s.target,
                DataMsg::SubPushBatch {
                    sub: id,
                    color,
                    records: slice,
                }
                .into(),
            );
        }
        if pushed {
            self.push_hist.record_ns(start.elapsed());
        }
    }

    /// Delivers one late-filling record (a commit below some push
    /// frontier, e.g. an OResp that outran its append past the barrier
    /// window, or a recovery import): pushed out of band to every
    /// subscriber whose frontier already moved past it. Rare; subscribers
    /// reorder/dedup.
    pub(crate) fn push_fill(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        storage: &StorageServer,
        color: ColorId,
        sn: SeqNum,
        token: Token,
    ) {
        let Some(ids) = self.by_color.get(&color) else {
            return;
        };
        let targets: Vec<u64> = ids
            .iter()
            .filter(|id| {
                self.subs
                    .get(id)
                    .is_some_and(|s| s.acked < sn && s.cursor > sn)
            })
            .copied()
            .collect();
        if targets.is_empty() {
            return;
        }
        let Some(payload) = storage.get(color, sn) else {
            return;
        };
        let record = CommittedRecord { sn, payload };
        for id in targets {
            let Some(s) = self.subs.get_mut(&id) else {
                continue;
            };
            s.last_sent = Instant::now();
            self.push_batches.inc();
            self.push_records.inc();
            self.obs
                .tracer()
                .record(token, Stage::SubPush, ep.id().0, color.0 as u64);
            let _ = ep.send(
                s.target,
                DataMsg::SubPushBatch {
                    sub: id,
                    color,
                    records: vec![record.clone()],
                }
                .into(),
            );
        }
    }
}
