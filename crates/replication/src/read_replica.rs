//! Read-only replica: a follower that serves the read path without ever
//! joining the write quorum.
//!
//! A read replica attaches to one shard and **follows** its quorum
//! replicas through the §6.3 sync machinery: it periodically issues
//! [`DataMsg::SyncFetch`] for every color resident on the shard (from its
//! own tail) and imports the [`DataMsg::SyncRecords`] replies — the exact
//! protocol a recovering quorum replica uses to catch up, run as a
//! steady-state pull loop. It serves:
//!
//! * `Read` — with the same bounded hold rule as a quorum replica, plus a
//!   **read-through**: a read above the local tail triggers an immediate
//!   sync fetch, so the answer is ⊥ only if the record is still absent
//!   upstream after the hold window (the freshness guarantee: staleness is
//!   bounded by one sync round-trip, not by the pull cadence).
//! * `Subscribe` (one-shot pull) and `SubscribeFrom` (standing push
//!   subscriptions via the shared [`SubTable`]).
//!
//! It never sees appends, order requests, or OResps; the write quorum
//! stays exactly the paper's write-all set. Reconfiguration is observed
//! through the shared topology: when a subscribed color stops being
//! resident on this shard the subscribers are redirected (`ColorMoved`
//! when the color lives elsewhere, `Dropped` when it is gone).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flexlog_obs::Counter;
use flexlog_pm::virtual_time;
use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_storage::{StorageConfig, StorageServer};
use flexlog_types::{ColorId, SeqNum, ShardId};

use crate::msg::{ClusterMsg, DataMsg, RejectReason};
use crate::subs::{RecentTokens, SubTable};
use crate::TopologyView;

/// Modelled per-message handling cost (ns); same calibration as
/// [`crate::ReplicaNode`].
const HANDLE_MSG_NS: u64 = 500;
/// Modelled per-imported-record cost (ns).
const HANDLE_PER_RECORD_NS: u64 = 800;

/// Configuration of one read-only replica.
#[derive(Clone)]
pub struct ReadReplicaConfig {
    /// The shard this read replica follows.
    pub shard: ShardId,
    /// The shard's quorum replicas (sync sources, rotated round-robin).
    pub quorum: Vec<NodeId>,
    pub storage: StorageConfig,
    /// Bounded hold for reads above the local tail (mirrors the quorum
    /// replicas' hole rule).
    pub read_hold: Duration,
    /// Sync-pull cadence while readers or subscribers are active.
    pub sync_interval: Duration,
    /// Sync-pull cadence when idle.
    pub idle_interval: Duration,
    /// Liveness heartbeat interval for idle push subscriptions.
    pub sub_heartbeat: Duration,
}

impl Default for ReadReplicaConfig {
    fn default() -> Self {
        ReadReplicaConfig {
            shard: ShardId(0),
            quorum: Vec::new(),
            storage: StorageConfig::default(),
            read_hold: Duration::from_millis(20),
            sync_interval: Duration::from_millis(1),
            idle_interval: Duration::from_millis(10),
            sub_heartbeat: Duration::from_millis(150),
        }
    }
}

struct HeldRead {
    from: NodeId,
    req: u64,
    color: ColorId,
    sn: SeqNum,
    deadline: Instant,
}

/// A one-shot pull (`Subscribe`) parked behind a sync round: serving it
/// straight from local storage could miss records the quorum already
/// committed (worst case: a just-restarted replica still refilling).
struct HeldScan {
    from: NodeId,
    req: u64,
    color: ColorId,
    from_sn: SeqNum,
    deadline: Instant,
    /// Only a sync round numbered at or above this (i.e. *started* after
    /// the scan arrived) may release it — an already-in-flight fetch could
    /// predate records the client has seen acked.
    min_round: u64,
}

/// See module docs.
pub struct ReadReplicaNode {
    config: ReadReplicaConfig,
    topology: TopologyView,
    storage: Arc<StorageServer>,
    subs: SubTable,
    recent_tokens: RecentTokens,
    held_reads: Vec<HeldRead>,
    held_scans: Vec<HeldScan>,
    /// Monotonic fetch round / request id source.
    round: u64,
    /// Per-color fetch in flight (round, sent-at) — avoids duplicate
    /// fetches while a reply is pending.
    inflight: HashMap<ColorId, (u64, Instant)>,
    /// Outstanding head/count probes: req → color.
    probes: HashMap<u64, ColorId>,
    /// Round-robin index over the quorum sources.
    rr: usize,
    last_sync: Instant,
    busy_ns: Option<Counter>,
    sync_fetches: Counter,
    imported: Counter,
}

impl ReadReplicaNode {
    pub fn new(config: ReadReplicaConfig, topology: TopologyView) -> Self {
        let storage = Arc::new(StorageServer::new(config.storage.clone()));
        Self::with_storage(config, topology, storage)
    }

    /// A read replica recovering its storage from crashed devices. No sync
    /// barrier is needed — it was never part of the write quorum; the
    /// steady-state pull loop refills whatever was lost.
    pub fn recovered(
        config: ReadReplicaConfig,
        topology: TopologyView,
        storage: Arc<StorageServer>,
    ) -> Self {
        Self::with_storage(config, topology, storage)
    }

    fn with_storage(
        config: ReadReplicaConfig,
        topology: TopologyView,
        storage: Arc<StorageServer>,
    ) -> Self {
        let obs = &config.storage.obs;
        let subs = SubTable::new(obs, config.sub_heartbeat);
        let sync_fetches = obs.counter("rreplica.sync_fetches");
        let imported = obs.counter("rreplica.imported_records");
        ReadReplicaNode {
            config,
            topology,
            storage,
            subs,
            recent_tokens: RecentTokens::new(),
            held_reads: Vec::new(),
            held_scans: Vec::new(),
            round: 0,
            inflight: HashMap::new(),
            probes: HashMap::new(),
            rr: 0,
            last_sync: Instant::now(),
            busy_ns: None,
            sync_fetches,
            imported,
        }
    }

    /// Shared storage handle (benchmarks read tier stats through it).
    pub fn storage(&self) -> Arc<StorageServer> {
        Arc::clone(&self.storage)
    }

    fn active(&self) -> bool {
        !self.subs.is_empty() || !self.held_reads.is_empty() || !self.held_scans.is_empty()
    }

    /// Runs the read-replica loop until shutdown or crash.
    pub fn run(mut self, ep: Endpoint<ClusterMsg>) {
        const MAX_DRAIN: usize = 128;
        self.storage.set_node(ep.id().0);
        self.busy_ns = Some(
            self.config
                .storage
                .obs
                .counter(&format!("node.busy_ns.rreplica.{}", ep.id().index())),
        );
        virtual_time::take();
        let mut burst: Vec<(NodeId, ClusterMsg)> = Vec::new();
        loop {
            let tick = if self.active() {
                self.config.sync_interval.max(Duration::from_millis(1))
            } else {
                self.config.idle_interval.max(Duration::from_millis(1))
            };
            burst.clear();
            match ep.recv_batch(tick, MAX_DRAIN, &mut burst) {
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => return,
            }
            let n_msgs = burst.len() as u64;
            for (from, msg) in burst.drain(..) {
                match msg {
                    ClusterMsg::Data(DataMsg::Shutdown) => return,
                    ClusterMsg::Data(m) => self.handle_data(&ep, from, m),
                    ClusterMsg::Order(_) => {} // never part of ordering
                }
            }
            self.tick(&ep);
            let dev_ns = virtual_time::take();
            if n_msgs > 0 || dev_ns > 0 {
                if let Some(c) = &self.busy_ns {
                    c.add(HANDLE_MSG_NS * n_msgs + dev_ns);
                }
            }
        }
    }

    fn handle_data(&mut self, ep: &Endpoint<ClusterMsg>, from: NodeId, msg: DataMsg) {
        match msg {
            DataMsg::Read { color, sn, req } => {
                if let Some(value) = self.storage.get(color, sn) {
                    let _ = ep.send(from, DataMsg::ReadResp { req, value: Some(value) }.into());
                    return;
                }
                let max_seen = self.storage.tail(color).unwrap_or(SeqNum::ZERO);
                if sn > max_seen {
                    // Possibly not replicated here yet: hold and fetch
                    // eagerly (read-through) instead of answering a stale ⊥.
                    self.held_reads.push(HeldRead {
                        from,
                        req,
                        color,
                        sn,
                        deadline: Instant::now() + self.config.read_hold,
                    });
                    self.fetch_color(ep, color);
                } else {
                    let _ = ep.send(from, DataMsg::ReadResp { req, value: None }.into());
                }
            }
            DataMsg::Subscribe { color, from: from_sn, req } => {
                // Park the scan behind a sync round so the reply is as
                // fresh as the quorum at request time; the hold deadline
                // degrades to a best-effort local scan if the quorum is
                // unreachable.
                self.held_scans.push(HeldScan {
                    from,
                    req,
                    color,
                    from_sn,
                    deadline: Instant::now() + self.config.read_hold,
                    min_round: self.round + 1,
                });
                self.fetch_color(ep, color);
            }
            DataMsg::SubscribeFrom { color, from: from_sn, sub, reply_to } => {
                if !self.topology.colors_on(self.config.shard).contains(&color) {
                    let reason = if self.topology.knows_color(color) {
                        RejectReason::ColorMoved
                    } else {
                        RejectReason::Dropped
                    };
                    let _ = ep.send(reply_to, DataMsg::SubRedirect { sub, color, reason }.into());
                    return;
                }
                self.subs.register(
                    ep,
                    &self.storage,
                    &self.recent_tokens,
                    sub,
                    color,
                    from_sn,
                    reply_to,
                    None,
                );
                // Pull the color promptly so the backlog starts flowing.
                self.fetch_color(ep, color);
            }
            DataMsg::SubAck { sub, upto } => self.subs.ack(sub, upto),
            DataMsg::SubCancel { sub } => self.subs.cancel(sub),
            DataMsg::SyncRecords { round, color, records, done } => {
                let mut fresh: Vec<(SeqNum, flexlog_types::Token)> = Vec::new();
                for (token, sn, payload) in records {
                    if self.storage.import(color, sn, token, &payload).unwrap_or(false) {
                        self.recent_tokens.insert(color, sn, token);
                        fresh.push((sn, token));
                    }
                }
                if done {
                    self.inflight.remove(&color);
                    self.release_held_scans(ep, color, round);
                }
                if !fresh.is_empty() {
                    self.imported.add(fresh.len() as u64);
                    if let Some(c) = &self.busy_ns {
                        c.add(HANDLE_PER_RECORD_NS * fresh.len() as u64);
                    }
                    // Late fills (below a push frontier) go out of band;
                    // everything else rides the in-order pump.
                    for &(sn, token) in &fresh {
                        self.subs.push_fill(ep, &self.storage, color, sn, token);
                    }
                    self.subs.pump(ep, &self.storage, &self.recent_tokens, None);
                    self.release_held_reads(ep);
                }
            }
            DataMsg::CtrlColorInfo { req, head, tail, count, .. } => {
                // Reply to a head/count probe: adopt the trim head, and if
                // the quorum holds more records under the same tail a hole
                // filled late upstream — refetch the retained span.
                let Some(color) = self.probes.remove(&req) else {
                    return;
                };
                if let Some(h) = head {
                    let _ = self.storage.install_head(color, h);
                }
                if tail == self.storage.tail(color)
                    && count > self.storage.record_count(color) as u64
                {
                    let from = self.storage.head(color).unwrap_or(SeqNum::ZERO);
                    self.round += 1;
                    let src = self.next_source();
                    if let Some(src) = src {
                        self.sync_fetches.inc();
                        let _ = ep.send(
                            src,
                            DataMsg::SyncFetch { round: self.round, color, from }.into(),
                        );
                    }
                }
            }
            DataMsg::Trim { color, up_to, req } => {
                // Quorum replicas run the two-round trim protocol; a read
                // replica just applies and acks (it holds no authority).
                let _ = self.storage.trim(color, up_to);
                let (head, tail) = (self.storage.head(color), self.storage.tail(color));
                let _ = ep.send(from, DataMsg::TrimAck { req, head, tail }.into());
            }
            DataMsg::Shutdown => unreachable!("handled by the run loop"),
            _ => {
                // Everything else belongs to the write quorum or the
                // control plane; a read replica ignores strays.
            }
        }
    }

    fn next_source(&mut self) -> Option<NodeId> {
        if self.config.quorum.is_empty() {
            return None;
        }
        let src = self.config.quorum[self.rr % self.config.quorum.len()];
        self.rr += 1;
        Some(src)
    }

    /// Issues a sync fetch for one color unless one is already pending
    /// (younger than a redelivery window).
    fn fetch_color(&mut self, ep: &Endpoint<ClusterMsg>, color: ColorId) {
        let now = Instant::now();
        if let Some(&(_, at)) = self.inflight.get(&color) {
            if now.saturating_duration_since(at) < self.config.read_hold {
                return; // reply still expected
            }
        }
        let from = self.storage.tail(color).unwrap_or(SeqNum::ZERO);
        self.round += 1;
        let round = self.round;
        let Some(src) = self.next_source() else { return };
        self.sync_fetches.inc();
        self.inflight.insert(color, (round, now));
        let _ = ep.send(src, DataMsg::SyncFetch { round, color, from }.into());
        // Every 32nd fetch of a color doubles as a head/count probe so the
        // replica adopts trims and notices late hole fills upstream.
        if round.is_multiple_of(32) {
            self.probes.insert(round, color);
            let _ = ep.send(src, DataMsg::ColorStatus { color, req: round }.into());
        }
    }

    /// Serves every parked `Subscribe` of `color` waiting on a round that
    /// `round` satisfies — local storage now reflects the quorum as of the
    /// fetch.
    fn release_held_scans(&mut self, ep: &Endpoint<ClusterMsg>, color: ColorId, round: u64) {
        let storage = &self.storage;
        let mut still = Vec::new();
        for s in self.held_scans.drain(..) {
            if s.color == color && round >= s.min_round {
                // An unreachable archive withholds the reply (never a log
                // with a silent hole); the client retries elsewhere.
                if let Ok(records) = storage.scan(s.color, s.from_sn) {
                    let _ =
                        ep.send(s.from, DataMsg::SubscribeResp { req: s.req, records }.into());
                }
            } else {
                still.push(s);
            }
        }
        self.held_scans = still;
    }

    fn release_held_reads(&mut self, ep: &Endpoint<ClusterMsg>) {
        let storage = &self.storage;
        let mut still_held = Vec::new();
        for h in self.held_reads.drain(..) {
            if let Some(value) = storage.get(h.color, h.sn) {
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: Some(value) }.into());
            } else if storage.tail(h.color).unwrap_or(SeqNum::ZERO) >= h.sn {
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: None }.into());
            } else {
                still_held.push(h);
            }
        }
        self.held_reads = still_held;
    }

    fn tick(&mut self, ep: &Endpoint<ClusterMsg>) {
        let now = Instant::now();
        // Expire held reads.
        let mut still = Vec::new();
        for h in self.held_reads.drain(..) {
            if now >= h.deadline {
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: None }.into());
            } else {
                still.push(h);
            }
        }
        self.held_reads = still;

        // Expired scans degrade to a best-effort local answer (quorum
        // unreachable): stale beats unavailable for a follower.
        let mut still_scans = Vec::new();
        for s in self.held_scans.drain(..) {
            if now >= s.deadline {
                // Stale beats unavailable, but a hole beats neither: if the
                // archive cannot serve the prefix, stay silent instead.
                if let Ok(records) = self.storage.scan(s.color, s.from_sn) {
                    let _ =
                        ep.send(s.from, DataMsg::SubscribeResp { req: s.req, records }.into());
                }
            } else {
                still_scans.push(s);
            }
        }
        self.held_scans = still_scans;

        // Redirect subscriptions of colors that left this shard (cutover
        // or drop observed through the shared topology).
        let resident = self.topology.colors_on(self.config.shard);
        for color in self.subs.colors() {
            if !resident.contains(&color) {
                let reason = if self.topology.knows_color(color) {
                    RejectReason::ColorMoved
                } else {
                    RejectReason::Dropped
                };
                self.subs.redirect_color(ep, color, reason);
            }
        }

        // The steady-state pull loop.
        let cadence = if self.active() {
            self.config.sync_interval
        } else {
            self.config.idle_interval
        };
        if now.saturating_duration_since(self.last_sync) >= cadence {
            self.last_sync = now;
            for color in resident {
                self.fetch_color(ep, color);
            }
        }

        // Catch-up continuation + heartbeats.
        self.subs.pump(ep, &self.storage, &self.recent_tokens, None);
    }
}
