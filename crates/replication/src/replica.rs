//! The replica node: one member of a data-layer shard.
//!
//! A replica is a single-threaded event loop owning a
//! [`StorageServer`]. In normal operation it:
//!
//! * stages appends and requests SNs from its leaf sequencer (Algorithm 1);
//! * commits on OResp and acks every client that asked for the token;
//! * serves linearizable local reads, holding requests above its max-seen
//!   SN for a bounded time (the hole rule, §6.3);
//! * answers subscribes/trims, and replays multi-color append sets on the
//!   client's `end` marker (Algorithm 2).
//!
//! When it restarts after a crash, or a newly elected sequencer sends
//! `InitSequencer`, it runs the **sync-phase** (§6.3): pause appends and
//! sequencer messages, exchange per-color state with all shard peers, fetch
//! missing records from the most up-to-date replica, and pass an all-to-all
//! `SyncDone` barrier before resuming. Staged-but-uncommitted tokens
//! re-issue their order requests afterwards.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use flexlog_obs::{Counter, Histogram, Stage, CTRL_TOKEN, SYNC_TOKEN};
use flexlog_pm::virtual_time;
use flexlog_ordering::{Directory, OrderMsg, RoleId, RouteTable};
use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_storage::{StorageConfig, StorageServer};
use flexlog_types::{ColorId, Epoch, FunctionId, Payload, SeqNum, ShardId, Token};

use crate::msg::{ClusterMsg, DataMsg, RejectReason};
use crate::subs::{RecentTokens, SubTable};
use crate::TopologyView;

/// Magic prefix of a multi-color-append set staged in the special color.
pub(crate) const MULTI_MAGIC: &[u8; 4] = b"MCA1";

/// Modelled per-message handling cost (ns) on the paper's testbed — same
/// calibration as the sequencer's constants (a Go gRPC server spends
/// ~0.5–1.5 µs of CPU per message). Together with the storage device's
/// virtual clock this feeds the per-node `node.busy_ns.*` capacity
/// counters: on this single-CPU host, wall time cannot express multi-node
/// parallelism, so scaling experiments divide work by the **busiest node's
/// modelled busy time** instead (see the substitution table in DESIGN.md).
const HANDLE_MSG_NS: u64 = 500;
/// Modelled per-record commit cost (ns) beyond the raw device time
/// (index bookkeeping, ack fan-out — the paper's per-record server CPU).
const HANDLE_PER_RECORD_NS: u64 = 800;

/// Folds every consecutive OResp / ORespBatch at the head of `iter` into
/// `resps`, preserving arrival order, so one [`StorageServer::commit_many`]
/// transaction covers the whole run.
fn coalesce_oresps<I: Iterator<Item = (NodeId, ClusterMsg)>>(
    iter: &mut std::iter::Peekable<I>,
    resps: &mut Vec<(Token, SeqNum)>,
) {
    while matches!(
        iter.peek(),
        Some((
            _,
            ClusterMsg::Order(OrderMsg::OResp { .. } | OrderMsg::ORespBatch { .. })
        ))
    ) {
        match iter.next() {
            Some((_, ClusterMsg::Order(OrderMsg::OResp { token, last_sn }))) => {
                resps.push((token, last_sn));
            }
            Some((_, ClusterMsg::Order(OrderMsg::ORespBatch { resps: more }))) => {
                resps.extend(more);
            }
            _ => unreachable!("peeked an OResp"),
        }
    }
}

/// Configuration of one replica.
#[derive(Clone)]
pub struct ReplicaConfig {
    pub shard: ShardId,
    /// The other replicas of this shard.
    pub peers: Vec<NodeId>,
    /// The leaf sequencer role this shard is attached to.
    pub leaf_role: RoleId,
    pub storage: StorageConfig,
    /// How long to hold a read above the max-seen SN before answering ⊥
    /// (the paper suggests 1 ms, §6.3).
    pub read_hold: Duration,
    /// Resend window for unanswered order requests.
    pub oreq_resend: Duration,
    /// Restart window for a stalled sync-phase.
    pub sync_timeout: Duration,
    /// Per-color OReq routing overrides (leaf-sequencer splits re-home
    /// colors away from `leaf_role` without moving the shard).
    pub routes: RouteTable,
    /// Liveness heartbeat interval for idle push subscriptions (an empty
    /// `SubPushBatch`; subscribers re-attach elsewhere when these stop).
    pub sub_heartbeat: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            shard: ShardId(0),
            peers: Vec::new(),
            leaf_role: RoleId(0),
            storage: StorageConfig::default(),
            read_hold: Duration::from_millis(20),
            oreq_resend: Duration::from_millis(200),
            sync_timeout: Duration::from_millis(500),
            routes: RouteTable::new(),
            sub_heartbeat: Duration::from_millis(150),
        }
    }
}

struct HeldRead {
    from: NodeId,
    req: u64,
    color: ColorId,
    sn: SeqNum,
    deadline: Instant,
}

struct TrimPending {
    color: ColorId,
    up_to: SeqNum,
    caller: NodeId,
    req: u64,
    peer_acks: HashSet<NodeId>,
}

/// In-flight multi-color append this replica is driving (acting as client).
struct MultiPending {
    req: u64,
    reply_to: NodeId,
    /// sub-token → replicas still owing an AppendAck.
    waiting: HashMap<Token, HashSet<NodeId>>,
}

struct SyncRound {
    round: u64,
    /// Who initiated init (to InitAck after the barrier), with the epoch.
    init: Option<(NodeId, Epoch)>,
    states: HashMap<NodeId, Vec<(ColorId, SeqNum, u64)>>,
    /// Fetches in flight.
    fetching: HashSet<ColorId>,
    /// Fetches already completed this round (never re-issued).
    fetched: HashSet<ColorId>,
    done: HashSet<NodeId>,
    self_done: bool,
    started: Instant,
}

enum Mode {
    Operational,
    Syncing(Box<SyncRound>),
}

/// See module docs.
pub struct ReplicaNode {
    config: ReplicaConfig,
    directory: Directory,
    topology: TopologyView,
    storage: Arc<StorageServer>,
    known_epoch: Epoch,
    mode: Mode,
    /// Clients (and peer replicas acting as clients) awaiting acks per token.
    reply_tos: HashMap<Token, HashSet<NodeId>>,
    /// OResps that arrived before the matching Append, with arrival time —
    /// young entries act as a push barrier so subscription pushes never
    /// skip past a commit-order hole the replica knows will fill.
    pending_oresp: HashMap<Token, (SeqNum, Instant)>,
    /// Last OReq send time per staged token (resend on silence).
    oreq_sent: HashMap<Token, Instant>,
    /// Last staged-token resend scan (see [`Replica::tick`]): the scan
    /// decodes every staged record from the pool, so running it every loop
    /// pass makes busy replicas pay O(staged) per burst for a path that
    /// only matters on sequencer fail-over. Rate-limited instead.
    last_oreq_scan: Instant,
    held_reads: Vec<HeldRead>,
    trims: HashMap<u64, TrimPending>,
    multi: Vec<MultiPending>,
    processed_multi: HashSet<Token>,
    /// Appends/OResps deferred while syncing.
    deferred: VecDeque<(NodeId, Deferred)>,
    round_counter: u64,
    /// Highest sync round seen (restart rounds must exceed it).
    last_round: u64,
    rng: StdRng,
    /// If a recovery sync must start immediately on boot.
    start_with_sync: bool,
    /// Wall time of one batched OResp commit (`replica.commit_batch_ns`).
    commit_hist: Histogram,
    /// Per-node modelled busy time (`node.busy_ns.replica.<idx>`);
    /// registered on loop entry when the node id is known.
    busy_ns: Option<Counter>,
    /// Colors fenced for migration: new appends are nacked `Frozen` while
    /// already-staged records drain through their OResp commits.
    frozen: HashSet<ColorId>,
    /// Colors cut over to another shard: appends are nacked `ColorMoved`
    /// so the client re-resolves from the topology.
    moved: HashSet<ColorId>,
    /// Colors destroyed at runtime: appends are nacked `Dropped`.
    dropped: HashSet<ColorId>,
    /// Highest controller generation seen — the zombie fence. Mutating
    /// ctrl messages carrying a lower generation are nacked.
    ctrl_gen: u64,
    /// Standing push subscriptions served by this replica.
    subs: SubTable,
    /// Staged token → color (so a commit knows which color's subscribers
    /// to push to); rebuilt from the storage staged set on the throttled
    /// resend scan, kept incrementally in between.
    staged_colors: HashMap<Token, ColorId>,
    /// Recently committed (color, sn) → token, for `SubPush` tracing.
    recent_tokens: RecentTokens,
}

enum Deferred {
    Data(DataMsg),
    Order(OrderMsg),
}

impl ReplicaNode {
    /// A fresh replica with empty storage.
    pub fn new(config: ReplicaConfig, directory: Directory, topology: TopologyView) -> Self {
        let storage = Arc::new(StorageServer::new(config.storage.clone()));
        Self::with_storage(config, directory, topology, storage, false)
    }

    /// A replica recovering from crashed devices: replays storage and runs
    /// the sync-phase before serving (§6.3 "Recovery").
    pub fn recovered(
        config: ReplicaConfig,
        directory: Directory,
        topology: TopologyView,
        storage: Arc<StorageServer>,
    ) -> Self {
        Self::with_storage(config, directory, topology, storage, true)
    }

    fn with_storage(
        config: ReplicaConfig,
        directory: Directory,
        topology: TopologyView,
        storage: Arc<StorageServer>,
        start_with_sync: bool,
    ) -> Self {
        let commit_hist = config.storage.obs.histogram("replica.commit_batch_ns");
        let subs = SubTable::new(&config.storage.obs, config.sub_heartbeat);
        ReplicaNode {
            config,
            directory,
            topology,
            storage,
            known_epoch: Epoch(1),
            mode: Mode::Operational,
            reply_tos: HashMap::new(),
            pending_oresp: HashMap::new(),
            oreq_sent: HashMap::new(),
            last_oreq_scan: Instant::now(),
            held_reads: Vec::new(),
            trims: HashMap::new(),
            multi: Vec::new(),
            processed_multi: HashSet::new(),
            deferred: VecDeque::new(),
            round_counter: 0,
            last_round: 0,
            rng: StdRng::seed_from_u64(0xF1E7),
            start_with_sync,
            commit_hist,
            busy_ns: None,
            frozen: HashSet::new(),
            moved: HashSet::new(),
            dropped: HashSet::new(),
            ctrl_gen: 0,
            subs,
            staged_colors: HashMap::new(),
            recent_tokens: RecentTokens::new(),
        }
    }

    /// Zombie fence: raises the generation floor, or — for a command from
    /// a generation we have already seen superseded — nacks and reports
    /// `true` so the caller drops the command on the floor.
    fn ctrl_stale(&mut self, ep: &Endpoint<ClusterMsg>, from: NodeId, gen: u64, req: u64) -> bool {
        if gen < self.ctrl_gen {
            let _ = ep.send(from, DataMsg::CtrlNack { req, gen: self.ctrl_gen }.into());
            return true;
        }
        self.ctrl_gen = gen;
        false
    }

    /// Shared storage handle (benchmarks read tier stats through it).
    pub fn storage(&self) -> Arc<StorageServer> {
        Arc::clone(&self.storage)
    }

    /// Runs the replica loop until shutdown or crash.
    ///
    /// Messages are drained in bounded bursts rather than strictly one at a
    /// time: a run of consecutive `OResp`s (the common shape under pipelined
    /// clients — the sequencer answers a burst of order requests back to
    /// back) commits through **one** PM transaction via
    /// [`StorageServer::commit_many`], mirroring the sequencer's aggregation
    /// window at the data layer. Per-message semantics are unchanged — the
    /// burst is processed in arrival order.
    pub fn run(mut self, ep: Endpoint<ClusterMsg>) {
        /// Upper bound of one opportunistic drain (keeps ticks timely).
        const MAX_DRAIN: usize = 128;

        // Storage commits run inside this replica's process: stamp its
        // trace events with our node id.
        self.storage.set_node(ep.id().0);
        self.busy_ns = Some(
            self.config
                .storage
                .obs
                .counter(&format!("node.busy_ns.replica.{}", ep.id().index())),
        );
        // Drop any virtual device time a previous occupant of this thread
        // accumulated, so the per-node capacity counter starts clean.
        virtual_time::take();

        if self.start_with_sync && !self.config.peers.is_empty() {
            self.begin_sync(&ep, None);
        } else if self.start_with_sync {
            // Single-replica shard: nothing to sync with; just re-issue
            // order requests for staged tokens.
            self.reissue_staged_oreqs(&ep);
        }
        let mut burst: Vec<(NodeId, ClusterMsg)> = Vec::new();
        loop {
            // Adaptive idle tick: with no held reads and no sync in flight
            // nothing in `tick()` is deadline-sensitive below the resend
            // scan granularity, so sleep longer and cut idle wakeups. A
            // subscriber still catching up (its push frontier trails the
            // tail) forces the short tick: each pump ships one capped
            // chunk, and the next chunk must not wait a full idle period.
            let tick = if self.held_reads.is_empty()
                && matches!(self.mode, Mode::Operational)
                && (self.subs.is_empty() || self.subs.all_caught_up(&self.storage))
            {
                self.config.oreq_resend / 8
            } else {
                self.config
                    .read_hold
                    .min(Duration::from_millis(5))
                    .max(Duration::from_millis(1))
            };
            burst.clear();
            match ep.recv_batch(tick, MAX_DRAIN, &mut burst) {
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => return,
            }
            let n_msgs = burst.len() as u64;
            let mut iter = burst.drain(..).peekable();
            while let Some((from, msg)) = iter.next() {
                match msg {
                    ClusterMsg::Data(DataMsg::Shutdown) => return,
                    ClusterMsg::Data(m) => {
                        if !self.handle_data(&ep, from, m) {
                            return;
                        }
                    }
                    ClusterMsg::Order(OrderMsg::OResp { token, last_sn })
                        if !matches!(self.mode, Mode::Syncing(_)) =>
                    {
                        // Coalesce the whole consecutive OResp run into one
                        // batched commit.
                        let mut resps = vec![(token, last_sn)];
                        coalesce_oresps(&mut iter, &mut resps);
                        self.apply_oresp_batch(&ep, &resps);
                    }
                    ClusterMsg::Order(OrderMsg::ORespBatch { mut resps })
                        if !matches!(self.mode, Mode::Syncing(_)) =>
                    {
                        coalesce_oresps(&mut iter, &mut resps);
                        self.apply_oresp_batch(&ep, &resps);
                    }
                    ClusterMsg::Order(m) => self.handle_order(&ep, from, m),
                }
            }
            self.tick(&ep);
            // Charge this pass to the per-node capacity counter: a modelled
            // per-message handling cost plus whatever virtual device time
            // storage commits accrued (per-record costs are added where the
            // records are counted, in `apply_oresp_batch`).
            let dev_ns = virtual_time::take();
            if n_msgs > 0 || dev_ns > 0 {
                if let Some(c) = &self.busy_ns {
                    c.add(HANDLE_MSG_NS * n_msgs + dev_ns);
                }
            }
        }
    }

    // ----- normal-path handlers ------------------------------------------

    /// Returns false on shutdown.
    fn handle_data(&mut self, ep: &Endpoint<ClusterMsg>, from: NodeId, msg: DataMsg) -> bool {
        match msg {
            DataMsg::Append {
                color,
                token,
                payloads,
                reply_to,
            } => {
                if matches!(self.mode, Mode::Syncing(_)) {
                    // Appends pause during the sync-phase.
                    self.deferred.push_back((
                        from,
                        Deferred::Data(DataMsg::Append {
                            color,
                            token,
                            payloads,
                            reply_to,
                        }),
                    ));
                    return true;
                }
                self.handle_append(ep, color, token, payloads, reply_to);
            }
            DataMsg::Read { color, sn, req } => {
                self.handle_read(ep, from, color, sn, req);
            }
            DataMsg::Subscribe { color, from: from_sn, req } => {
                // Archive read-through can fail while the object store is
                // down; withholding the reply makes the client retry (or
                // time out) instead of replaying a log with a silent hole
                // where the archived prefix belongs.
                if let Ok(records) = self.storage.scan(color, from_sn) {
                    let _ = ep.send(from, DataMsg::SubscribeResp { req, records }.into());
                }
            }
            DataMsg::SubscribeFrom { color, from: from_sn, sub, reply_to } => {
                if matches!(self.mode, Mode::Syncing(_)) {
                    // The log may be mid-fetch; register once it is whole.
                    self.deferred.push_back((
                        from,
                        Deferred::Data(DataMsg::SubscribeFrom { color, from: from_sn, sub, reply_to }),
                    ));
                    return true;
                }
                match self.fence_reason(color) {
                    Some(reason @ (RejectReason::ColorMoved | RejectReason::Dropped)) => {
                        let _ = ep.send(
                            reply_to,
                            DataMsg::SubRedirect { sub, color, reason }.into(),
                        );
                    }
                    // Frozen colors still serve reads and subscriptions.
                    _ => {
                        let barrier = self.sub_barrier();
                        self.subs.register(
                            ep,
                            &self.storage,
                            &self.recent_tokens,
                            sub,
                            color,
                            from_sn,
                            reply_to,
                            barrier,
                        );
                    }
                }
            }
            DataMsg::SubAck { sub, upto } => self.subs.ack(sub, upto),
            DataMsg::SubCancel { sub } => self.subs.cancel(sub),
            DataMsg::Trim { color, up_to, req } => {
                let _ = self.storage.trim(color, up_to);
                // Second round: tell every peer we applied it; collect
                // theirs before answering the caller (§6.2).
                let _ = ep.broadcast(
                    &self.config.peers,
                    DataMsg::TrimPeerAck { color, up_to, req }.into(),
                );
                let entry = self.trims.entry(req).or_insert_with(|| TrimPending {
                    color,
                    up_to,
                    caller: from,
                    req,
                    peer_acks: HashSet::new(),
                });
                entry.caller = from;
                self.maybe_finish_trim(ep, req);
            }
            DataMsg::TrimPeerAck { req, .. } => {
                // Register the ack even if our own Trim has not arrived yet.
                let peer_count = self.config.peers.len();
                let entry = self.trims.entry(req).or_insert_with(|| TrimPending {
                    color: ColorId::MASTER,
                    up_to: SeqNum::ZERO,
                    caller: from, // placeholder until our Trim arrives
                    req,
                    peer_acks: HashSet::new(),
                });
                entry.peer_acks.insert(from);
                let _ = peer_count;
                self.maybe_finish_trim(ep, req);
            }
            DataMsg::AppendAck { token, last_sn } => {
                // We are a client here: a multi-color sub-append got acked.
                self.note_multi_ack(ep, from, token, last_sn);
            }
            DataMsg::MultiEnd { fid, req, reply_to } => {
                self.handle_multi_end(ep, fid, req, reply_to);
            }
            DataMsg::SyncRequest { round } => {
                self.join_sync(ep, round, None);
            }
            DataMsg::SyncState { round, epoch, tails, ctrl_gen, frozen, moved, dropped } => {
                if epoch > self.known_epoch {
                    self.known_epoch = epoch;
                }
                self.merge_ctrl_marks(ctrl_gen, &frozen, &moved, &dropped);
                if let Mode::Syncing(ref mut s) = self.mode {
                    if s.round == round {
                        s.states.insert(from, tails);
                        self.advance_sync(ep);
                    } else if round > s.round {
                        self.join_sync(ep, round, None);
                        if let Mode::Syncing(ref mut s) = self.mode {
                            s.states.insert(from, tails);
                        }
                        self.advance_sync(ep);
                    }
                } else {
                    // A peer entered sync; join it.
                    self.join_sync(ep, round, None);
                    if let Mode::Syncing(ref mut s) = self.mode {
                        s.states.insert(from, tails);
                    }
                    self.advance_sync(ep);
                }
            }
            DataMsg::SyncFetch { round, color, from: from_sn } => {
                // Serve regardless of our own mode: the requester decided we
                // are the most up-to-date for this color.
                let records = self.storage.scan_with_tokens(color, from_sn);
                let _ = ep.send(
                    from,
                    DataMsg::SyncRecords {
                        round,
                        color,
                        records,
                        done: true,
                    }
                    .into(),
                );
            }
            DataMsg::SyncRecords { round, color, records, done } => {
                if let Mode::Syncing(ref mut s) = self.mode {
                    if s.round == round {
                        for (token, sn, payload) in records {
                            let _ = self.storage.import(color, sn, token, &payload);
                        }
                        if done {
                            s.fetching.remove(&color);
                            s.fetched.insert(color);
                        }
                        self.advance_sync(ep);
                    }
                }
            }
            DataMsg::SyncDone { round } => {
                if let Mode::Syncing(ref mut s) = self.mode {
                    if s.round == round {
                        s.done.insert(from);
                        self.maybe_finish_sync(ep);
                    }
                }
            }
            // ----- reconfiguration control plane --------------------------
            DataMsg::FreezeColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                self.frozen.insert(color);
                self.config.storage.obs.trace_event(
                    CTRL_TOKEN,
                    Stage::MigrateFreeze,
                    ep.id().0,
                    color.0 as u64,
                );
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::UnfreezeColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                self.frozen.remove(&color);
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::ArchiveColor { color, keep_tail, max_records, demote, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                // A color mid-migration is off limits: its span is being
                // exported or discarded and the tiering tick will retry
                // after cutover. Ack without acting so the round completes.
                if !self.frozen.contains(&color) && !self.moved.contains(&color) {
                    if demote {
                        let _ = self.storage.demote_color(color, max_records);
                    } else if self
                        .storage
                        .archive_prefix(color, keep_tail, max_records)
                        .unwrap_or(0)
                        > 0
                    {
                        self.config.storage.obs.trace_event(
                            CTRL_TOKEN,
                            Stage::Archive,
                            ep.id().0,
                            color.0 as u64,
                        );
                    }
                }
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::ColorStatus { color, req } => {
                let staged = self
                    .storage
                    .staged_tokens()
                    .into_iter()
                    .filter(|&(_, c, _)| c == color)
                    .count() as u64;
                let _ = ep.send(
                    from,
                    DataMsg::CtrlColorInfo {
                        req,
                        staged,
                        head: self.storage.head(color),
                        tail: self.storage.tail(color),
                        count: self.storage.record_count(color) as u64,
                    }
                    .into(),
                );
            }
            DataMsg::ExportSpan { color, req, above, limit } => {
                // Trim-aware: scan starts above the head, and the head
                // itself ships so the destination hides the trimmed prefix.
                // Catch-up rounds narrow the scan further (above the
                // control plane's last-shipped watermark) and cap it, so
                // concurrent appends interleave between chunks instead of
                // stalling behind one full-span scan.
                let head = self.storage.head(color);
                let from_sn = head.unwrap_or(SeqNum::ZERO).max(above.unwrap_or(SeqNum::ZERO));
                let cap = usize::try_from(limit).unwrap_or(usize::MAX);
                let records = self.storage.scan_with_tokens_capped(color, from_sn, cap);
                let cursors = self.subs.export_cursors(color);
                let _ = ep.send(
                    from,
                    DataMsg::SpanRecords { req, color, head, records, cursors }.into(),
                );
            }
            DataMsg::SpanDigest { color, req } => {
                let head = self.storage.head(color);
                let sns = self.storage.committed_sns(color, head.unwrap_or(SeqNum::ZERO));
                let _ = ep.send(from, DataMsg::SpanDigestResp { req, color, head, sns }.into());
            }
            DataMsg::FetchRecords { color, req, sns } => {
                let head = self.storage.head(color);
                let records = self.storage.fetch_with_tokens(color, &sns);
                let cursors = self.subs.export_cursors(color);
                let _ = ep.send(
                    from,
                    DataMsg::SpanRecords { req, color, head, records, cursors }.into(),
                );
            }
            DataMsg::ImportSpan { color, gen, req, head, records, cold, cursors } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                let mut imported = 0u64;
                if cold {
                    imported = self.storage.import_cold(color, &records).unwrap_or(0);
                } else {
                    for (token, sn, payload) in records {
                        if self.storage.import(color, sn, token, &payload).unwrap_or(false) {
                            imported += 1;
                        }
                    }
                }
                if let Some(h) = head {
                    let _ = self.storage.install_head(color, h);
                }
                self.config.storage.obs.trace_event(
                    CTRL_TOKEN,
                    Stage::MigrateCopy,
                    ep.id().0,
                    color.0 as u64,
                );
                // Subscription cursors ride the final hot sliver. Only the
                // shard's delegate adopts them — every destination replica
                // receives the import, and N replicas each pushing to the
                // same subscriber would multiply every record by N.
                if !cursors.is_empty() && self.is_oreq_delegate(ep) {
                    self.subs
                        .adopt_cursors(ep, &self.storage, &self.recent_tokens, color, &cursors);
                }
                let _ = ep.send(from, DataMsg::ImportAck { req, imported }.into());
            }
            DataMsg::AdoptColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                self.frozen.remove(&color);
                self.moved.remove(&color);
                self.dropped.remove(&color);
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::CutoverColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                self.frozen.remove(&color);
                self.moved.insert(color);
                // Never strand a subscriber on the old shard: its cursor
                // already rode the final ImportSpan to the destination;
                // the redirect tells it to re-resolve the topology too.
                self.subs.redirect_color(ep, color, RejectReason::ColorMoved);
                self.config.storage.obs.trace_event(
                    CTRL_TOKEN,
                    Stage::MigrateCutover,
                    ep.id().0,
                    color.0 as u64,
                );
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::DropColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                self.frozen.remove(&color);
                self.dropped.insert(color);
                // Terminal for subscribers: the color will never commit
                // another record anywhere.
                self.subs.redirect_color(ep, color, RejectReason::Dropped);
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::DiscardColor { color, gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                // Roll-back of a partial import: wipe the color's committed
                // records (idempotent — a repeat discard finds nothing).
                let _ = self.storage.discard_color(color);
                self.frozen.remove(&color);
                // Cursors adopted from an aborted migration go back through
                // topology re-resolution (the source was unfrozen).
                self.subs.redirect_color(ep, color, RejectReason::ColorMoved);
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::ControllerHello { gen, req } => {
                if self.ctrl_stale(ep, from, gen, req) {
                    return true;
                }
                let _ = ep.send(from, DataMsg::CtrlAck { req }.into());
            }
            DataMsg::ReadResp { .. } | DataMsg::SubscribeResp { .. } | DataMsg::TrimAck { .. }
            | DataMsg::MultiAck { .. } | DataMsg::CtrlAck { .. } | DataMsg::CtrlColorInfo { .. }
            | DataMsg::SpanRecords { .. } | DataMsg::ImportAck { .. }
            | DataMsg::SpanDigestResp { .. } | DataMsg::Rejected { .. }
            | DataMsg::CtrlNack { .. } | DataMsg::SubPushBatch { .. }
            | DataMsg::SubRedirect { .. } => {
                // Client-side messages; a replica can ignore strays.
            }
            DataMsg::Shutdown => return false,
        }
        true
    }

    fn handle_order(&mut self, ep: &Endpoint<ClusterMsg>, from: NodeId, msg: OrderMsg) {
        match msg {
            OrderMsg::OResp { token, last_sn } => {
                if matches!(self.mode, Mode::Syncing(_)) {
                    // Sequencer messages pause during the sync-phase.
                    self.deferred
                        .push_back((from, Deferred::Order(OrderMsg::OResp { token, last_sn })));
                    return;
                }
                self.apply_oresp(ep, token, last_sn);
            }
            OrderMsg::ORespBatch { resps } => {
                if matches!(self.mode, Mode::Syncing(_)) {
                    self.deferred
                        .push_back((from, Deferred::Order(OrderMsg::ORespBatch { resps })));
                    return;
                }
                self.apply_oresp_batch(ep, &resps);
            }
            OrderMsg::InitSequencer { role, epoch } => {
                if role != self.config.leaf_role {
                    return;
                }
                if epoch > self.known_epoch {
                    self.known_epoch = epoch;
                }
                // The new sequencer waits for *all* replicas to sync and
                // ack before serving (§6.3).
                if self.config.peers.is_empty() {
                    let _ = ep.send(from, ClusterMsg::Order(OrderMsg::InitAck { epoch }));
                    self.reissue_staged_oreqs(ep);
                } else {
                    self.begin_sync(ep, Some((from, epoch)));
                }
            }
            _ => {}
        }
    }

    fn handle_append(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        color: ColorId,
        token: Token,
        payloads: Vec<Payload>,
        reply_to: NodeId,
    ) {
        if let Some(sn) = self.storage.committed_sn(token) {
            // Duplicate of a completed append: re-ack (client retry or the
            // multi-color replay path). This must run BEFORE any
            // reconfiguration fence — a late retransmit of a pre-migration
            // append still deserves its ack (post-cutover, the imported
            // token map answers the same way at the destination).
            let _ = ep.send(reply_to, DataMsg::AppendAck { token, last_sn: sn }.into());
            return;
        }
        if let Some(reason) = self.fence_reason(color) {
            if reason == RejectReason::Frozen && self.storage.is_staged(token) {
                // The batch is already in the pre-freeze pipeline: its
                // OResp is still coming (freeze does not stop the drain),
                // so register the ack target and stay silent.
                self.reply_tos.entry(token).or_default().insert(reply_to);
                return;
            }
            let _ = ep.send(reply_to, DataMsg::Rejected { token, reason }.into());
            return;
        }
        self.reply_tos.entry(token).or_default().insert(reply_to);
        let n = payloads.len() as u32;
        let newly = match self.storage.stage(token, color, &payloads) {
            Ok(newly) => newly,
            Err(e) => {
                // Storage full: drop; the client will time out. (The paper
                // assumes trims keep the log bounded.)
                eprintln!("replica {}: stage failed: {e}", ep.id());
                return;
            }
        };
        self.staged_colors.insert(token, color);
        if newly {
            self.config
                .storage
                .obs
                .trace_event(token, Stage::ReplicaStaged, ep.id().0, 0);
        }
        if let Some((sn, _)) = self.pending_oresp.remove(&token) {
            self.apply_oresp(ep, token, sn);
            return;
        }
        // All replicas of a shard would send byte-identical OReqs and the
        // sequencer discards all but the first, so in steady state only the
        // delegate (lowest node id of the shard) relays it. If the delegate
        // is down the append still completes: a client retransmit re-stages
        // (`!newly`) and then *every* replica sends the OReq, as does the
        // periodic staged-token resend tick.
        if !newly || self.is_oreq_delegate(ep) {
            self.send_oreq(ep, color, token, n);
        }
    }

    /// The reconfiguration fence for `color`, if one is in force. `Dropped`
    /// wins over `ColorMoved` wins over `Frozen`.
    fn fence_reason(&self, color: ColorId) -> Option<RejectReason> {
        if self.dropped.contains(&color) {
            Some(RejectReason::Dropped)
        } else if self.moved.contains(&color) {
            Some(RejectReason::ColorMoved)
        } else if self.frozen.contains(&color) {
            Some(RejectReason::Frozen)
        } else {
            None
        }
    }

    /// Whether this replica is its shard's designated eager-OReq sender.
    fn is_oreq_delegate(&self, ep: &Endpoint<ClusterMsg>) -> bool {
        self.config.peers.iter().all(|&p| ep.id() < p)
    }

    fn send_oreq(&mut self, ep: &Endpoint<ClusterMsg>, color: ColorId, token: Token, n: u32) {
        // A route override (installed by a leaf split) beats the shard's
        // static leaf role; either way the directory resolves the node.
        let role = self.config.routes.route(color).unwrap_or(self.config.leaf_role);
        let Some(leaf) = self.directory.get(role) else {
            return; // sequencer fail-over window; the resend tick retries
        };
        let mut shard: Vec<NodeId> = self.config.peers.clone();
        shard.push(ep.id());
        shard.sort_unstable();
        let _ = ep.send(
            leaf,
            ClusterMsg::Order(OrderMsg::OReq {
                color,
                token,
                nrecords: n,
                shard,
            }),
        );
        self.config
            .storage
            .obs
            .trace_event(token, Stage::OReqSent, ep.id().0, 0);
        self.oreq_sent.insert(token, Instant::now());
    }

    fn apply_oresp(&mut self, ep: &Endpoint<ClusterMsg>, token: Token, last_sn: SeqNum) {
        self.apply_oresp_batch(ep, &[(token, last_sn)]);
    }

    /// Commits a burst of OResps through a single PM transaction
    /// ([`StorageServer::commit_many`]) and acks every waiting client.
    /// Unknown tokens (append broadcast still in flight) are remembered
    /// individually and commit on arrival, exactly as in the one-at-a-time
    /// path.
    fn apply_oresp_batch(&mut self, ep: &Endpoint<ClusterMsg>, resps: &[(Token, SeqNum)]) {
        let batch_start = Instant::now();
        if let Some(c) = &self.busy_ns {
            c.add(HANDLE_PER_RECORD_NS * resps.len() as u64);
        }
        let results = self.storage.commit_many(resps);
        let mut committed: Vec<(Token, SeqNum)> = Vec::new();
        let mut spans: Vec<(Token, Stage, u64, u64)> = Vec::new();
        let mut fills: Vec<(ColorId, SeqNum, Token)> = Vec::new();
        for (&(token, last_sn), result) in resps.iter().zip(results) {
            match result {
                Ok(_) => {
                    self.oreq_sent.remove(&token);
                    spans.push((token, Stage::ReplicaCommit, ep.id().0, 0));
                    committed.push((token, last_sn));
                    if let Some(color) = self.staged_colors.remove(&token) {
                        self.recent_tokens.insert(color, last_sn, token);
                        fills.push((color, last_sn, token));
                    }
                }
                Err(_) => {
                    // Append not here yet (client broadcast still in
                    // flight): remember the SN.
                    self.pending_oresp.insert(token, (last_sn, Instant::now()));
                }
            }
        }
        if committed.is_empty() {
            return;
        }
        self.commit_hist.record_ns(batch_start.elapsed());
        // Record before acking: once an ack reaches the client the append
        // counts as completed, and its trace must already be whole.
        self.config.storage.obs.tracer().record_many(&spans);
        for (token, last_sn) in committed {
            if let Some(reply_tos) = self.reply_tos.remove(&token) {
                for r in reply_tos {
                    let _ = ep.send(r, DataMsg::AppendAck { token, last_sn }.into());
                }
            }
        }
        self.release_held_reads(ep);
        if !self.subs.is_empty() {
            // A commit below some subscriber's push frontier is a hole that
            // just filled (its OResp outlived the barrier window): deliver
            // it out of band, then pump the in-order frontier forward.
            for (color, sn, token) in fills {
                self.subs.push_fill(ep, &self.storage, color, sn, token);
            }
            self.pump_subs(ep);
        }
    }

    /// The lowest SN of a commit this replica knows is still in flight (an
    /// OResp whose append broadcast has not arrived yet, observed less than
    /// a hold window ago): subscription pushes stop short of it so the late
    /// record is not skipped past. Entries older than the window stop
    /// blocking pushes (the append may never arrive — client crash or
    /// partition) and are delivered by `push_fill` if they do commit.
    fn sub_barrier(&self) -> Option<SeqNum> {
        if self.pending_oresp.is_empty() {
            return None;
        }
        let now = Instant::now();
        self.pending_oresp
            .values()
            .filter(|&&(_, at)| now.saturating_duration_since(at) < self.config.read_hold)
            .map(|&(sn, _)| sn)
            .min()
    }

    fn pump_subs(&mut self, ep: &Endpoint<ClusterMsg>) {
        if self.subs.is_empty() {
            return;
        }
        let barrier = self.sub_barrier();
        self.subs
            .pump(ep, &self.storage, &self.recent_tokens, barrier);
    }

    fn handle_read(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        from: NodeId,
        color: ColorId,
        sn: SeqNum,
        req: u64,
    ) {
        if let Some(value) = self.storage.get(color, sn) {
            let _ = ep.send(from, DataMsg::ReadResp { req, value: Some(value) }.into());
            return;
        }
        let max_seen = self.storage.tail(color).unwrap_or(SeqNum::ZERO);
        if sn > max_seen {
            // Possibly an in-flight append: hold the read for a bounded time
            // instead of answering ⊥ (§6.3 "Safety", problem 2).
            self.held_reads.push(HeldRead {
                from,
                req,
                color,
                sn,
                deadline: Instant::now() + self.config.read_hold,
            });
        } else {
            // A hole (or trimmed/not on this shard): answer ⊥ immediately.
            let _ = ep.send(from, DataMsg::ReadResp { req, value: None }.into());
        }
    }

    fn release_held_reads(&mut self, ep: &Endpoint<ClusterMsg>) {
        let storage = &self.storage;
        let mut still_held = Vec::new();
        for h in self.held_reads.drain(..) {
            if let Some(value) = storage.get(h.color, h.sn) {
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: Some(value) }.into());
            } else if storage.tail(h.color).unwrap_or(SeqNum::ZERO) >= h.sn {
                // A bigger SN arrived: the requested SN is a hole here.
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: None }.into());
            } else {
                still_held.push(h);
            }
        }
        self.held_reads = still_held;
    }

    fn maybe_finish_trim(&mut self, ep: &Endpoint<ClusterMsg>, req: u64) {
        let finished = {
            let Some(t) = self.trims.get(&req) else { return };
            // Our own Trim must have arrived (caller known ≠ placeholder is
            // encoded by up_to > ZERO or empty-peers case) and all peers
            // must have acked.
            t.up_to > SeqNum::ZERO && t.peer_acks.len() >= self.config.peers.len()
        };
        if finished {
            let t = self.trims.remove(&req).expect("checked above");
            let (head, tail) = (self.storage.head(t.color), self.storage.tail(t.color));
            let _ = ep.send(t.caller, DataMsg::TrimAck { req: t.req, head, tail }.into());
        }
    }

    // ----- multi-color append (Algorithm 2) -------------------------------

    fn handle_multi_end(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        fid: FunctionId,
        req: u64,
        reply_to: NodeId,
    ) {
        // read_records(FID): this function's multi-append sets staged in the
        // special color (Algorithm 2, line 12).
        let sets: Vec<(Token, Payload)> = self
            .storage
            .scan_with_tokens(ColorId::MASTER, SeqNum::ZERO)
            .into_iter()
            .filter(|(token, _, payload)| {
                token.fid() == fid
                    && payload.len() >= 4
                    && &payload[..4] == MULTI_MAGIC
                    && !self.processed_multi.contains(token)
            })
            .map(|(token, _, payload)| (token, payload))
            .collect();
        let mut pending = MultiPending {
            req,
            reply_to,
            waiting: HashMap::new(),
        };
        for (token, payload) in sets {
            self.processed_multi.insert(token);
            let Some((target_color, payloads)) = decode_multi_set(&payload) else {
                continue;
            };
            // Derive the sub-append token from the staged set's token: the
            // flipped top bit keeps it disjoint from client tokens while
            // staying deterministic across replicas (idempotence).
            let sub_token = Token(token.0 ^ (1 << 63));
            let Some(shard) = self.topology.random_shard_of(target_color, &mut self.rng) else {
                continue;
            };
            let _ = ep.broadcast(
                &shard.replicas,
                DataMsg::Append {
                    color: target_color,
                    token: sub_token,
                    payloads,
                    reply_to: ep.id(),
                }
                .into(),
            );
            pending
                .waiting
                .insert(sub_token, shard.replicas.iter().copied().collect());
        }
        if pending.waiting.is_empty() {
            let _ = ep.send(reply_to, DataMsg::MultiAck { req }.into());
        } else {
            self.multi.push(pending);
        }
    }

    fn note_multi_ack(
        &mut self,
        ep: &Endpoint<ClusterMsg>,
        from: NodeId,
        token: Token,
        _sn: SeqNum,
    ) {
        let mut finished = Vec::new();
        for (i, m) in self.multi.iter_mut().enumerate() {
            if let Some(waiting) = m.waiting.get_mut(&token) {
                waiting.remove(&from);
                if waiting.is_empty() {
                    m.waiting.remove(&token);
                }
                if m.waiting.is_empty() {
                    finished.push(i);
                }
                break;
            }
        }
        for i in finished.into_iter().rev() {
            let m = self.multi.remove(i);
            let _ = ep.send(m.reply_to, DataMsg::MultiAck { req: m.req }.into());
        }
    }

    // ----- sync-phase (§6.3) ----------------------------------------------

    fn new_round(&mut self, ep: &Endpoint<ClusterMsg>) -> u64 {
        self.round_counter += 1;
        // Unique across nodes (node id in the low bits) and strictly above
        // any round seen so far (so restarts supersede stalled rounds).
        let base = (self.round_counter << 20) | (ep.id().index() & 0xFFFFF);
        let round = base.max(((self.last_round >> 20 << 20) + (1 << 20)) | (ep.id().index() & 0xFFFFF));
        self.last_round = self.last_round.max(round);
        round
    }

    fn begin_sync(&mut self, ep: &Endpoint<ClusterMsg>, init: Option<(NodeId, Epoch)>) {
        let round = match &self.mode {
            Mode::Syncing(s) => s.round.max(self.new_round(ep)),
            Mode::Operational => self.new_round(ep),
        };
        let _ = ep.broadcast(&self.config.peers, DataMsg::SyncRequest { round }.into());
        self.join_sync(ep, round, init);
    }

    fn join_sync(&mut self, ep: &Endpoint<ClusterMsg>, round: u64, init: Option<(NodeId, Epoch)>) {
        if let Mode::Syncing(ref s) = self.mode {
            if s.round >= round {
                return; // already in this (or a newer) round
            }
        }
        let carried_init = match &self.mode {
            Mode::Syncing(s) => s.init.or(init),
            Mode::Operational => init,
        };
        let mut states = HashMap::new();
        states.insert(ep.id(), self.my_tails());
        self.last_round = self.last_round.max(round);
        self.config
            .storage
            .obs
            .trace_event(SYNC_TOKEN, Stage::SyncStart, ep.id().0, round);
        self.mode = Mode::Syncing(Box::new(SyncRound {
            round,
            init: carried_init,
            states,
            fetching: HashSet::new(),
            fetched: HashSet::new(),
            done: HashSet::new(),
            self_done: false,
            started: Instant::now(),
        }));
        let _ = ep.broadcast(
            &self.config.peers,
            DataMsg::SyncState {
                round,
                epoch: self.known_epoch,
                tails: self.my_tails(),
                ctrl_gen: self.ctrl_gen,
                frozen: self.frozen.iter().copied().collect(),
                moved: self.moved.iter().copied().collect(),
                dropped: self.dropped.iter().copied().collect(),
            }
            .into(),
        );
        self.advance_sync(ep);
    }

    /// Re-learn reconfiguration marks from a sync peer. The marks are
    /// volatile, so a replica that crashed mid-migration boots with them
    /// cleared and would otherwise accept appends inside the copy window;
    /// peers that stayed up re-assert them through the §6.3 handshake.
    /// Marks UNION in (a union can only add fencing, never weaken it);
    /// clears arrive exclusively as acked controller commands, which the
    /// controller retries until every live replica has applied them. The
    /// one unprotected configuration is a single-replica shard (no peer
    /// remembers the mark) — documented in DESIGN.md.
    fn merge_ctrl_marks(
        &mut self,
        ctrl_gen: u64,
        frozen: &[ColorId],
        moved: &[ColorId],
        dropped: &[ColorId],
    ) {
        if ctrl_gen < self.ctrl_gen {
            return; // stale peer: its marks may predate an unfreeze
        }
        self.ctrl_gen = ctrl_gen;
        self.frozen.extend(frozen.iter().copied());
        self.moved.extend(moved.iter().copied());
        self.dropped.extend(dropped.iter().copied());
    }

    fn my_tails(&self) -> Vec<(ColorId, SeqNum, u64)> {
        self.topology
            .colors()
            .into_iter()
            .filter_map(|c| {
                let tail = self.storage.tail(c)?;
                Some((c, tail, self.storage.record_count(c) as u64))
            })
            .collect()
    }

    /// Once states from the whole shard are in, fetch what we miss.
    fn advance_sync(&mut self, ep: &Endpoint<ClusterMsg>) {
        let (fetches, ready) = {
            let Mode::Syncing(ref mut s) = self.mode else { return };
            if s.self_done {
                return;
            }
            if s.states.len() < self.config.peers.len() + 1 {
                return; // waiting for more states
            }
            if !s.fetching.is_empty() {
                return; // fetches already in flight
            }
            // For every color: find the most up-to-date holder.
            let my = s.states.get(&ep.id()).cloned().unwrap_or_default();
            let my_map: HashMap<ColorId, (SeqNum, u64)> =
                my.into_iter().map(|(c, t, n)| (c, (t, n))).collect();
            let mut fetches: Vec<(NodeId, ColorId, SeqNum)> = Vec::new();
            let mut best: HashMap<ColorId, (SeqNum, u64, NodeId)> = HashMap::new();
            for (&node, tails) in s.states.iter() {
                for &(color, tail, count) in tails {
                    let e = best.entry(color).or_insert((tail, count, node));
                    if (tail, count) > (e.0, e.1) {
                        *e = (tail, count, node);
                    }
                }
            }
            for (color, (tail, _count, holder)) in best {
                if holder == ep.id() || s.fetched.contains(&color) {
                    continue;
                }
                let (my_tail, _my_count) = my_map
                    .get(&color)
                    .copied()
                    .unwrap_or((SeqNum::ZERO, 0));
                if tail > my_tail {
                    // Fetch everything above our tail from the holder.
                    fetches.push((holder, color, my_tail));
                    s.fetching.insert(color);
                }
            }
            let round = s.round;
            for &(holder, color, from) in &fetches {
                let _ = ep.send(
                    holder,
                    DataMsg::SyncFetch { round, color, from }.into(),
                );
            }
            (fetches.len(), s.fetching.is_empty())
        };
        let _ = fetches;
        if ready {
            self.finish_fetch(ep);
        }
    }

    fn finish_fetch(&mut self, ep: &Endpoint<ClusterMsg>) {
        let round = {
            let Mode::Syncing(ref mut s) = self.mode else { return };
            if s.self_done {
                return;
            }
            s.self_done = true;
            s.round
        };
        let _ = ep.broadcast(&self.config.peers, DataMsg::SyncDone { round }.into());
        self.maybe_finish_sync(ep);
    }

    fn maybe_finish_sync(&mut self, ep: &Endpoint<ClusterMsg>) {
        let finished = {
            let Mode::Syncing(ref s) = self.mode else { return };
            s.self_done && s.done.len() >= self.config.peers.len()
        };
        if !finished {
            // Re-check: fetches might have just drained.
            let ready = {
                let Mode::Syncing(ref s) = self.mode else { return };
                !s.self_done
                    && s.states.len() > self.config.peers.len()
                    && s.fetching.is_empty()
            };
            if ready {
                self.finish_fetch(ep);
            }
            return;
        }
        let Mode::Syncing(s) = std::mem::replace(&mut self.mode, Mode::Operational) else {
            return;
        };
        self.config
            .storage
            .obs
            .trace_event(SYNC_TOKEN, Stage::SyncDone, ep.id().0, s.round);
        // Barrier passed: acknowledge the new sequencer if this sync was an
        // initialization (§6.3 "Sequencer failures").
        if let Some((seq, epoch)) = s.init {
            let _ = ep.send(seq, ClusterMsg::Order(OrderMsg::InitAck { epoch }));
        }
        // Re-issue order requests for staged-but-uncommitted tokens.
        self.reissue_staged_oreqs(ep);
        // Drain deferred appends/OResps in arrival order.
        let deferred: Vec<(NodeId, Deferred)> = self.deferred.drain(..).collect();
        for (from, d) in deferred {
            match d {
                Deferred::Data(m) => {
                    let _ = self.handle_data(ep, from, m);
                }
                Deferred::Order(m) => self.handle_order(ep, from, m),
            }
        }
        self.release_held_reads(ep);
        // Sync may have installed records (possibly below push frontiers —
        // those were never pushed from here and re-attachment covers them);
        // push whatever the frontier can now advance over.
        self.pump_subs(ep);
    }

    fn reissue_staged_oreqs(&mut self, ep: &Endpoint<ClusterMsg>) {
        for (token, color, n) in self.storage.staged_tokens() {
            self.staged_colors.insert(token, color);
            self.send_oreq(ep, color, token, n as u32);
        }
    }

    // ----- periodic work ---------------------------------------------------

    fn tick(&mut self, ep: &Endpoint<ClusterMsg>) {
        // Expire held reads.
        let now = Instant::now();
        let mut still = Vec::new();
        for h in self.held_reads.drain(..) {
            if now >= h.deadline {
                let _ = ep.send(h.from, DataMsg::ReadResp { req: h.req, value: None }.into());
            } else {
                still.push(h);
            }
        }
        self.held_reads = still;

        match &self.mode {
            Mode::Operational => {
                // Resend unanswered OReqs (covers sequencer fail-over). The
                // scan decodes every staged record, so throttle it to a
                // quarter of the resend window — a resend fires at most
                // 1.25 × `oreq_resend` after the OReq was lost, and the
                // normal path (OResp arrives well within the window) never
                // pays the scan at all.
                if now.saturating_duration_since(self.last_oreq_scan)
                    >= self.config.oreq_resend / 4
                {
                    self.last_oreq_scan = now;
                    let staged = self.storage.staged_tokens();
                    // The staged set is authoritative for token → color:
                    // resync the incremental map to it (drops entries whose
                    // records were discarded, repopulates after recovery).
                    self.staged_colors = staged.iter().map(|&(t, c, _)| (t, c)).collect();
                    let stale: Vec<(Token, ColorId, usize)> = staged
                        .into_iter()
                        .filter(|(t, _, _)| {
                            self.oreq_sent
                                .get(t)
                                .is_none_or(|&at| now - at >= self.config.oreq_resend)
                        })
                        .collect();
                    for (token, color, n) in stale {
                        self.send_oreq(ep, color, token, n as u32);
                    }
                }
                // Keep pushes flowing between commits: catch-up chunks for
                // subscribers behind the tail, heartbeats for idle ones,
                // and barrier lifts (a pending OResp aged out).
                self.pump_subs(ep);
            }
            Mode::Syncing(s) => {
                if now - s.started > self.config.sync_timeout {
                    // Stalled (peer died mid-sync): restart with a new round.
                    let init = s.init;
                    self.mode = Mode::Operational;
                    self.begin_sync(ep, init);
                }
            }
        }
    }
}

/// Encodes a multi-color-append set for staging in the special color
/// (client side of Algorithm 2, line 4: `records[i]:colors[i]:ID`).
pub(crate) fn encode_multi_set(target: ColorId, payloads: &[Payload]) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + payloads.iter().map(|p| p.len() + 4).sum::<usize>());
    v.extend_from_slice(MULTI_MAGIC);
    v.extend_from_slice(&target.0.to_le_bytes());
    v.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        v.extend_from_slice(&(p.len() as u32).to_le_bytes());
        v.extend_from_slice(p);
    }
    v
}

/// Decodes a staged multi-color set; `None` if malformed.
pub(crate) fn decode_multi_set(v: &[u8]) -> Option<(ColorId, Vec<Payload>)> {
    if v.len() < 12 || &v[..4] != MULTI_MAGIC {
        return None;
    }
    let target = ColorId(u32::from_le_bytes(v[4..8].try_into().ok()?));
    let count = u32::from_le_bytes(v[8..12].try_into().ok()?) as usize;
    let mut payloads = Vec::with_capacity(count);
    let mut off = 12;
    for _ in 0..count {
        let len = u32::from_le_bytes(v.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        payloads.push(Payload::from(v.get(off..off + len)?));
        off += len;
    }
    Some((target, payloads))
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn multi_set_roundtrip() {
        let payloads = vec![
            Payload::from(&b"a"[..]),
            Payload::from(vec![0u8; 100]),
            Payload::empty(),
        ];
        let enc = encode_multi_set(ColorId(7), &payloads);
        let (color, dec) = decode_multi_set(&enc).unwrap();
        assert_eq!(color, ColorId(7));
        assert_eq!(dec, payloads);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_multi_set(b""), None);
        assert_eq!(decode_multi_set(b"nope-not-multi"), None);
        // Truncated payload.
        let mut enc = encode_multi_set(ColorId(1), &[Payload::from(vec![9u8; 50])]);
        enc.truncate(20);
        assert_eq!(decode_multi_set(&enc), None);
    }
}
