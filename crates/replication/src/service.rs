//! Assembly of the data layer: spawns shards of replica threads and exposes
//! crash / recover fault injection.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use flexlog_ordering::{Directory, RoleId};
use flexlog_pm::{PmDevice, SsdDevice};
use flexlog_simnet::{Network, NodeId};
use flexlog_storage::{StorageConfig, StorageServer};
use flexlog_types::{ColorId, ShardId};

use crate::msg::{ClusterMsg, DataMsg};
use crate::{
    ReadReplicaConfig, ReadReplicaNode, ReplicaConfig, ReplicaNode, ShardInfo, TopologyView,
};

/// One shard to spawn.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    pub id: ShardId,
    /// Replication factor r (paper default 3).
    pub replicas: usize,
    /// Leaf sequencer role this shard attaches to.
    pub leaf_role: RoleId,
}

/// Data-layer specification.
#[derive(Clone)]
pub struct DataLayerSpec {
    pub shards: Vec<ShardSpec>,
    /// Per-replica template (shard/peers/leaf_role are filled in).
    pub replica: ReplicaConfig,
    /// Initial color → shards mapping.
    pub colors: Vec<(ColorId, Vec<ShardId>)>,
    /// Read-only replicas to attach to every shard (0 = reads are served
    /// by the write quorum, the pre-PR9 behavior).
    pub read_replicas_per_shard: usize,
}

impl DataLayerSpec {
    /// `n_shards` shards of `r` replicas each, all attached to leaf roles
    /// round-robin from `leaf_roles`, and every listed color served by all
    /// shards of its leaf's region.
    pub fn uniform(n_shards: usize, r: usize, leaf_roles: &[RoleId]) -> Self {
        let shards = (0..n_shards)
            .map(|i| ShardSpec {
                id: ShardId(i as u32),
                replicas: r,
                leaf_role: leaf_roles[i % leaf_roles.len()],
            })
            .collect();
        DataLayerSpec {
            shards,
            replica: ReplicaConfig::default(),
            colors: Vec::new(),
            read_replicas_per_shard: 0,
        }
    }
}

struct ReplicaSlot {
    config: ReplicaConfig,
    devices: (Arc<PmDevice>, Arc<SsdDevice>),
    storage: Arc<StorageServer>,
}

struct ReadReplicaSlot {
    config: ReadReplicaConfig,
    devices: (Arc<PmDevice>, Arc<SsdDevice>),
    storage: Arc<StorageServer>,
}

/// Running data layer.
pub struct DataLayerHandle {
    pub topology: TopologyView,
    threads: Mutex<Vec<JoinHandle<()>>>,
    slots: Mutex<HashMap<NodeId, ReplicaSlot>>,
    read_slots: Mutex<HashMap<NodeId, ReadReplicaSlot>>,
    control: flexlog_simnet::Endpoint<ClusterMsg>,
    /// Per-replica template for shards added at runtime (scale-out).
    template: ReplicaConfig,
}

/// Spawner for data layers.
pub struct DataLayerService;

impl DataLayerService {
    /// Spawns every replica of `spec` on `net`. The returned topology view
    /// is shared with the replicas (multi-append routing) and with clients.
    pub fn start(
        net: &Network<ClusterMsg>,
        directory: &Directory,
        spec: &DataLayerSpec,
    ) -> DataLayerHandle {
        let topology = TopologyView::new();
        let mut threads = Vec::new();
        let mut slots = HashMap::new();

        // First pass: decide node ids and register shards.
        let mut shard_nodes: HashMap<ShardId, Vec<NodeId>> = HashMap::new();
        let mut next = 0u64;
        for shard in &spec.shards {
            let nodes: Vec<NodeId> = (0..shard.replicas)
                .map(|_| {
                    let id = NodeId::named(NodeId::CLASS_REPLICA, next);
                    next += 1;
                    id
                })
                .collect();
            topology.add_shard(ShardInfo {
                id: shard.id,
                replicas: nodes.clone(),
                leaf: shard.leaf_role,
                read_replicas: Vec::new(),
            });
            shard_nodes.insert(shard.id, nodes);
        }
        for (color, shards) in &spec.colors {
            topology.set_color_shards(*color, shards.clone());
        }

        // Second pass: spawn replicas.
        for shard in &spec.shards {
            let nodes = shard_nodes[&shard.id].clone();
            for &node in &nodes {
                let peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != node).collect();
                let config = ReplicaConfig {
                    shard: shard.id,
                    peers,
                    leaf_role: shard.leaf_role,
                    ..spec.replica.clone()
                };
                let replica = ReplicaNode::new(config.clone(), directory.clone(), topology.clone());
                let storage = replica.storage();
                let devices = storage.devices();
                slots.insert(
                    node,
                    ReplicaSlot {
                        config,
                        devices,
                        storage,
                    },
                );
                let ep = net.register(node);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{node}"))
                        .spawn(move || replica.run(ep))
                        .expect("spawn replica"),
                );
            }
        }

        let control = net.register(NodeId::named(0, (u64::MAX >> 4) - 1));
        let handle = DataLayerHandle {
            topology,
            threads: Mutex::new(threads),
            slots: Mutex::new(slots),
            read_slots: Mutex::new(HashMap::new()),
            control,
            template: spec.replica.clone(),
        };
        // Third pass: attach read-only replicas.
        for shard in &spec.shards {
            for _ in 0..spec.read_replicas_per_shard {
                handle.add_read_replica(net, shard.id);
            }
        }
        handle
    }
}

impl DataLayerHandle {
    /// Replica node ids of a shard.
    pub fn shard_replicas(&self, shard: ShardId) -> Vec<NodeId> {
        self.topology
            .shard(shard)
            .map(|s| s.replicas)
            .unwrap_or_default()
    }

    /// All replica node ids (for ordering-layer init lists).
    pub fn all_replicas(&self) -> Vec<NodeId> {
        self.topology
            .all_shards()
            .into_iter()
            .flat_map(|s| s.replicas)
            .collect()
    }

    /// Replica node ids grouped by the leaf role their shard attaches to
    /// (input for `OrderingService::start`'s `replicas_by_role`).
    pub fn replicas_by_leaf_role(&self) -> HashMap<RoleId, Vec<NodeId>> {
        let mut m: HashMap<RoleId, Vec<NodeId>> = HashMap::new();
        for s in self.topology.all_shards() {
            m.entry(s.leaf).or_default().extend(s.replicas);
        }
        m
    }

    /// The storage server of a replica (tier stats in benchmarks/tests).
    pub fn storage_of(&self, node: NodeId) -> Option<Arc<StorageServer>> {
        self.slots.lock().get(&node).map(|s| Arc::clone(&s.storage))
    }

    /// Crashes a replica process. Its devices retain their durable state.
    pub fn crash_replica(&self, net: &Network<ClusterMsg>, node: NodeId) {
        net.crash(node);
    }

    /// Restarts a crashed replica: devices lose their volatile state
    /// (power-fail semantics), storage recovers from the media, and the
    /// replica runs the sync-phase before serving (§6.3).
    pub fn restart_replica(&self, net: &Network<ClusterMsg>, directory: &Directory, node: NodeId) {
        let (config, storage) = {
            let mut slots = self.slots.lock();
            let slot = slots.get_mut(&node).expect("unknown replica");
            let (pm, ssd) = slot.devices.clone();
            pm.crash();
            ssd.crash();
            let storage = Arc::new(StorageServer::recover(
                pm,
                ssd,
                slot.config.storage.clone(),
            ));
            slot.storage = Arc::clone(&storage);
            (slot.config.clone(), storage)
        };
        let replica =
            ReplicaNode::recovered(config, directory.clone(), self.topology.clone(), storage);
        let ep = net.register(node);
        self.threads.lock().push(
            std::thread::Builder::new()
                .name(format!("{node}-r"))
                .spawn(move || replica.run(ep))
                .expect("respawn replica"),
        );
    }

    /// Default storage configuration helper for specs.
    pub fn default_storage() -> StorageConfig {
        StorageConfig::default()
    }

    /// Spawns a brand-new shard of `r` replicas attached to `leaf_role`
    /// (elastic scale-out). The shard starts empty and serves no colors
    /// until the control plane migrates or creates one there.
    pub fn add_shard(
        &self,
        net: &Network<ClusterMsg>,
        directory: &Directory,
        leaf_role: RoleId,
        r: usize,
    ) -> ShardInfo {
        let mut slots = self.slots.lock();
        let shard_id = ShardId(
            self.topology
                .all_shards()
                .iter()
                .map(|s| s.id.0 + 1)
                .max()
                .unwrap_or(0),
        );
        let mut next = slots
            .keys()
            .filter(|n| n.class() == NodeId::CLASS_REPLICA)
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        let nodes: Vec<NodeId> = (0..r)
            .map(|_| {
                let id = NodeId::named(NodeId::CLASS_REPLICA, next);
                next += 1;
                id
            })
            .collect();
        let info = ShardInfo {
            id: shard_id,
            replicas: nodes.clone(),
            leaf: leaf_role,
            read_replicas: Vec::new(),
        };
        self.topology.add_shard(info.clone());
        let mut threads = self.threads.lock();
        for &node in &nodes {
            let peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != node).collect();
            let config = ReplicaConfig {
                shard: shard_id,
                peers,
                leaf_role,
                ..self.template.clone()
            };
            let replica = ReplicaNode::new(config.clone(), directory.clone(), self.topology.clone());
            let storage = replica.storage();
            let devices = storage.devices();
            slots.insert(
                node,
                ReplicaSlot {
                    config,
                    devices,
                    storage,
                },
            );
            let ep = net.register(node);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{node}"))
                    .spawn(move || replica.run(ep))
                    .expect("spawn replica"),
            );
        }
        info
    }

    /// Attaches one new read-only replica to `shard` and spawns it. The
    /// topology registers it as a read target, so client read traffic
    /// shifts onto it from the next resolution.
    pub fn add_read_replica(&self, net: &Network<ClusterMsg>, shard: ShardId) -> NodeId {
        let quorum = self.shard_replicas(shard);
        assert!(!quorum.is_empty(), "unknown shard {shard:?}");
        let mut read_slots = self.read_slots.lock();
        let next = read_slots
            .keys()
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        let node = NodeId::named(NodeId::CLASS_READ_REPLICA, next);
        let config = ReadReplicaConfig {
            shard,
            quorum,
            storage: self.template.storage.clone(),
            read_hold: self.template.read_hold,
            sub_heartbeat: self.template.sub_heartbeat,
            ..ReadReplicaConfig::default()
        };
        let rr = ReadReplicaNode::new(config.clone(), self.topology.clone());
        let storage = rr.storage();
        let devices = storage.devices();
        read_slots.insert(
            node,
            ReadReplicaSlot {
                config,
                devices,
                storage,
            },
        );
        drop(read_slots);
        let ep = net.register(node);
        self.threads.lock().push(
            std::thread::Builder::new()
                .name(format!("{node}"))
                .spawn(move || rr.run(ep))
                .expect("spawn read replica"),
        );
        self.topology.add_read_replica(shard, node);
        node
    }

    /// All read-replica node ids, sorted.
    pub fn read_replicas(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.read_slots.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// The storage server of a read replica.
    pub fn read_storage_of(&self, node: NodeId) -> Option<Arc<StorageServer>> {
        self.read_slots
            .lock()
            .get(&node)
            .map(|s| Arc::clone(&s.storage))
    }

    /// Crashes a read replica and deregisters it as a read target so
    /// clients re-route (its durable devices keep their state).
    pub fn crash_read_replica(&self, net: &Network<ClusterMsg>, node: NodeId) {
        let shard = self.read_slots.lock().get(&node).map(|s| s.config.shard);
        net.crash(node);
        if let Some(shard) = shard {
            self.topology.remove_read_replica(shard, node);
        }
    }

    /// Restarts a crashed read replica. Devices power-fail, storage
    /// recovers from media, and the steady-state sync pull refills the
    /// rest — no quorum barrier is needed for a follower.
    pub fn restart_read_replica(&self, net: &Network<ClusterMsg>, node: NodeId) {
        let (config, storage) = {
            let mut slots = self.read_slots.lock();
            let slot = slots.get_mut(&node).expect("unknown read replica");
            let (pm, ssd) = slot.devices.clone();
            pm.crash();
            ssd.crash();
            let storage = Arc::new(StorageServer::recover(
                pm,
                ssd,
                slot.config.storage.clone(),
            ));
            slot.storage = Arc::clone(&storage);
            (slot.config.clone(), storage)
        };
        let rr = ReadReplicaNode::recovered(config.clone(), self.topology.clone(), storage);
        let ep = net.register(node);
        self.threads.lock().push(
            std::thread::Builder::new()
                .name(format!("{node}-r"))
                .spawn(move || rr.run(ep))
                .expect("respawn read replica"),
        );
        self.topology.add_read_replica(config.shard, node);
    }

    /// Sends shutdown to every replica and joins the threads.
    pub fn shutdown(self) {
        let slots = self.slots.lock();
        for &node in slots.keys() {
            let _ = self.control.send(node, DataMsg::Shutdown.into());
        }
        drop(slots);
        let read_slots = self.read_slots.lock();
        for &node in read_slots.keys() {
            let _ = self.control.send(node, DataMsg::Shutdown.into());
        }
        drop(read_slots);
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}
