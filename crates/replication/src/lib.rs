//! # flexlog-replication
//!
//! FlexLog's data layer (paper §5.2 "Data layer", §6 "System protocols"):
//! shards of replicas that store the colored logs and drive the
//! append/read/subscribe/trim protocols against the ordering layer.
//!
//! * A **shard** is a set of `r` replicas (the replication factor), all
//!   connected to the same leaf sequencer. The replication protocol is a
//!   read-one/write-all atomic broadcast: an append is broadcast to every
//!   replica of one shard, each replica persists the records and requests an
//!   SN, the leaf sequencer broadcasts the SN back, every replica commits,
//!   and the append completes when the client holds an ack from **all**
//!   replicas — which is what makes local reads on any single replica
//!   linearizable (§5.2).
//! * **Sync-phase recovery** (§6.3): a recovering replica (or one told about
//!   a new sequencer epoch) pauses appends, exchanges per-color tails with
//!   its shard peers, fetches what it is missing from the most up-to-date
//!   replica, and passes an all-to-all barrier before going operational.
//!   Staged-but-uncommitted tokens re-issue their order requests.
//! * **Holes** are legal: the log is not necessarily consecutive after a
//!   sequencer fail-over. Replicas hold a read above their max-seen SN for a
//!   bounded time before answering ⊥ (§6.3 "Safety").
//! * The **multi-color append** (Algorithm 2) stages record sets in the
//!   special color with their target colors, then replays each set through
//!   the normal (idempotent) append path when the client's `end` marker
//!   arrives — all-or-nothing across colors.

mod client;
mod msg;
mod read_replica;
mod replica;
mod service;
mod subs;
mod topology;

pub use client::{ClientConfig, ClientError, FlexLogClient, Subscription};
pub use msg::{ClusterMsg, DataMsg, RejectReason, SubCursor};
pub use read_replica::{ReadReplicaConfig, ReadReplicaNode};
pub use replica::{ReplicaConfig, ReplicaNode};
pub use service::{DataLayerHandle, DataLayerService, DataLayerSpec};
pub use topology::{ShardInfo, TopologyView};

#[cfg(test)]
mod tests;
