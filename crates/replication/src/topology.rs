//! Shared topology view: shards, their replicas and leaf sequencers, and
//! the color → shards mapping.
//!
//! Clients need to know which shards serve a color (appends pick a random
//! one, reads contact one replica of each, §5.1); replicas executing
//! multi-color appends act as clients themselves (Algorithm 2). Both resolve
//! through this shared view. `AddColor` updates it at runtime.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::Rng;

use flexlog_ordering::RoleId;
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, ShardId};

/// One shard of the data layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    pub id: ShardId,
    /// All replicas (write-all set).
    pub replicas: Vec<NodeId>,
    /// The leaf sequencer role this shard is attached to.
    pub leaf: RoleId,
}

#[derive(Default)]
struct Inner {
    shards: HashMap<ShardId, ShardInfo>,
    /// Shards serving each color (the shards of the color's region).
    colors: HashMap<ColorId, Vec<ShardId>>,
}

/// Cheap-to-clone shared topology.
#[derive(Clone, Default)]
pub struct TopologyView {
    inner: Arc<RwLock<Inner>>,
}

impl TopologyView {
    pub fn new() -> Self {
        TopologyView::default()
    }

    /// Registers a shard.
    pub fn add_shard(&self, info: ShardInfo) {
        self.inner.write().shards.insert(info.id, info);
    }

    /// Maps `color` to the shards that may store it (replacing any previous
    /// mapping).
    pub fn set_color_shards(&self, color: ColorId, shards: Vec<ShardId>) {
        self.inner.write().colors.insert(color, shards);
    }

    /// The shards serving `color`.
    pub fn shards_of(&self, color: ColorId) -> Vec<ShardInfo> {
        let inner = self.inner.read();
        inner
            .colors
            .get(&color)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| inner.shards.get(id).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A uniformly random shard of `color` (append target selection).
    pub fn random_shard_of<R: Rng>(&self, color: ColorId, rng: &mut R) -> Option<ShardInfo> {
        let shards = self.shards_of(color);
        if shards.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..shards.len());
        Some(shards[i].clone())
    }

    /// Shard lookup by id.
    pub fn shard(&self, id: ShardId) -> Option<ShardInfo> {
        self.inner.read().shards.get(&id).cloned()
    }

    /// All registered shards.
    pub fn all_shards(&self) -> Vec<ShardInfo> {
        let mut v: Vec<ShardInfo> = self.inner.read().shards.values().cloned().collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// All colors with a shard mapping.
    pub fn colors(&self) -> Vec<ColorId> {
        let mut v: Vec<ColorId> = self.inner.read().colors.keys().copied().collect();
        v.sort();
        v
    }

    /// True if the color has at least one shard.
    pub fn knows_color(&self, color: ColorId) -> bool {
        self.inner
            .read()
            .colors
            .get(&color)
            .is_some_and(|s| !s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shard(i: u32, leaf: u32) -> ShardInfo {
        ShardInfo {
            id: ShardId(i),
            replicas: vec![NodeId(100 + i as u64), NodeId(200 + i as u64)],
            leaf: RoleId(leaf),
        }
    }

    #[test]
    fn color_to_shard_resolution() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 0));
        t.set_color_shards(ColorId(5), vec![ShardId(1), ShardId(2)]);
        let shards = t.shards_of(ColorId(5));
        assert_eq!(shards.len(), 2);
        assert!(t.knows_color(ColorId(5)));
        assert!(!t.knows_color(ColorId(6)));
    }

    #[test]
    fn random_shard_is_member() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 1));
        t.set_color_shards(ColorId(1), vec![ShardId(1), ShardId(2)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let s = t.random_shard_of(ColorId(1), &mut rng).unwrap();
            seen.insert(s.id);
        }
        assert_eq!(seen.len(), 2, "both shards should be picked eventually");
        assert!(t.random_shard_of(ColorId(9), &mut rng).is_none());
    }

    #[test]
    fn remapping_a_color_replaces_shards() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 0));
        t.set_color_shards(ColorId(1), vec![ShardId(1)]);
        t.set_color_shards(ColorId(1), vec![ShardId(2)]);
        let shards = t.shards_of(ColorId(1));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].id, ShardId(2));
    }
}
