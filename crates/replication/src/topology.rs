//! Shared topology view: shards, their replicas and leaf sequencers, and
//! the color → shards mapping.
//!
//! Clients need to know which shards serve a color (appends pick a random
//! one, reads contact one replica of each, §5.1); replicas executing
//! multi-color appends act as clients themselves (Algorithm 2). Both resolve
//! through this shared view. `AddColor` updates it at runtime.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rand::Rng;

use flexlog_ordering::RoleId;
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, ShardId};

/// One shard of the data layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    pub id: ShardId,
    /// All replicas (write-all set).
    pub replicas: Vec<NodeId>,
    /// The leaf sequencer role this shard is attached to.
    pub leaf: RoleId,
    /// Read-only replicas attached to this shard: they follow the quorum
    /// via the §6.3 sync path and serve reads/subscriptions, but never
    /// join the write-all set. May be empty.
    pub read_replicas: Vec<NodeId>,
}

impl ShardInfo {
    /// The nodes client read traffic (reads, pulls, push subscriptions)
    /// should land on: read replicas when the shard has them, otherwise
    /// the quorum replicas.
    pub fn read_targets(&self) -> &[NodeId] {
        if self.read_replicas.is_empty() {
            &self.replicas
        } else {
            &self.read_replicas
        }
    }

    /// A uniformly random read target (see [`ShardInfo::read_targets`]).
    pub fn random_read_target<R: Rng>(&self, rng: &mut R) -> NodeId {
        let t = self.read_targets();
        t[rng.gen_range(0..t.len())]
    }
}

#[derive(Default)]
struct Inner {
    shards: HashMap<ShardId, ShardInfo>,
    /// Shards serving each color (the shards of the color's region).
    colors: HashMap<ColorId, Vec<ShardId>>,
}

/// Cheap-to-clone shared topology.
#[derive(Clone, Default)]
pub struct TopologyView {
    inner: Arc<RwLock<Inner>>,
}

impl TopologyView {
    pub fn new() -> Self {
        TopologyView::default()
    }

    /// Registers a shard.
    pub fn add_shard(&self, info: ShardInfo) {
        self.inner.write().shards.insert(info.id, info);
    }

    /// Attaches a read-only replica to an existing shard.
    pub fn add_read_replica(&self, shard: ShardId, node: NodeId) {
        if let Some(s) = self.inner.write().shards.get_mut(&shard) {
            if !s.read_replicas.contains(&node) {
                s.read_replicas.push(node);
            }
        }
    }

    /// Detaches a read-only replica (crash handling: clients stop routing
    /// reads to it).
    pub fn remove_read_replica(&self, shard: ShardId, node: NodeId) {
        if let Some(s) = self.inner.write().shards.get_mut(&shard) {
            s.read_replicas.retain(|&n| n != node);
        }
    }

    /// The colors currently mapped to `shard` (what a read replica of the
    /// shard must follow).
    pub fn colors_on(&self, shard: ShardId) -> Vec<ColorId> {
        let inner = self.inner.read();
        let mut v: Vec<ColorId> = inner
            .colors
            .iter()
            .filter(|(_, shards)| shards.contains(&shard))
            .map(|(&c, _)| c)
            .collect();
        v.sort();
        v
    }

    /// Maps `color` to the shards that may store it (replacing any previous
    /// mapping).
    pub fn set_color_shards(&self, color: ColorId, shards: Vec<ShardId>) {
        self.inner.write().colors.insert(color, shards);
    }

    /// The shards serving `color`.
    pub fn shards_of(&self, color: ColorId) -> Vec<ShardInfo> {
        let inner = self.inner.read();
        inner
            .colors
            .get(&color)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| inner.shards.get(id).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A uniformly random shard of `color` (append target selection).
    pub fn random_shard_of<R: Rng>(&self, color: ColorId, rng: &mut R) -> Option<ShardInfo> {
        let shards = self.shards_of(color);
        if shards.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..shards.len());
        Some(shards[i].clone())
    }

    /// Shard lookup by id.
    pub fn shard(&self, id: ShardId) -> Option<ShardInfo> {
        self.inner.read().shards.get(&id).cloned()
    }

    /// All registered shards.
    pub fn all_shards(&self) -> Vec<ShardInfo> {
        let mut v: Vec<ShardInfo> = self.inner.read().shards.values().cloned().collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// All colors with a shard mapping.
    pub fn colors(&self) -> Vec<ColorId> {
        let mut v: Vec<ColorId> = self.inner.read().colors.keys().copied().collect();
        v.sort();
        v
    }

    /// True if the color has at least one shard.
    pub fn knows_color(&self, color: ColorId) -> bool {
        self.inner
            .read()
            .colors
            .get(&color)
            .is_some_and(|s| !s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shard(i: u32, leaf: u32) -> ShardInfo {
        ShardInfo {
            id: ShardId(i),
            replicas: vec![NodeId(100 + i as u64), NodeId(200 + i as u64)],
            leaf: RoleId(leaf),
            read_replicas: Vec::new(),
        }
    }

    #[test]
    fn read_targets_prefer_read_replicas() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        let s = t.shard(ShardId(1)).unwrap();
        assert_eq!(s.read_targets(), &s.replicas[..]);
        t.add_read_replica(ShardId(1), NodeId(900));
        t.add_read_replica(ShardId(1), NodeId(900)); // idempotent
        let s = t.shard(ShardId(1)).unwrap();
        assert_eq!(s.read_targets(), &[NodeId(900)]);
        t.remove_read_replica(ShardId(1), NodeId(900));
        let s = t.shard(ShardId(1)).unwrap();
        assert_eq!(s.read_targets(), &s.replicas[..]);
    }

    #[test]
    fn colors_on_reports_shard_residency() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 0));
        t.set_color_shards(ColorId(1), vec![ShardId(1)]);
        t.set_color_shards(ColorId(2), vec![ShardId(1), ShardId(2)]);
        assert_eq!(t.colors_on(ShardId(1)), vec![ColorId(1), ColorId(2)]);
        assert_eq!(t.colors_on(ShardId(2)), vec![ColorId(2)]);
    }

    #[test]
    fn color_to_shard_resolution() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 0));
        t.set_color_shards(ColorId(5), vec![ShardId(1), ShardId(2)]);
        let shards = t.shards_of(ColorId(5));
        assert_eq!(shards.len(), 2);
        assert!(t.knows_color(ColorId(5)));
        assert!(!t.knows_color(ColorId(6)));
    }

    #[test]
    fn random_shard_is_member() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 1));
        t.set_color_shards(ColorId(1), vec![ShardId(1), ShardId(2)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let s = t.random_shard_of(ColorId(1), &mut rng).unwrap();
            seen.insert(s.id);
        }
        assert_eq!(seen.len(), 2, "both shards should be picked eventually");
        assert!(t.random_shard_of(ColorId(9), &mut rng).is_none());
    }

    #[test]
    fn remapping_a_color_replaces_shards() {
        let t = TopologyView::new();
        t.add_shard(shard(1, 0));
        t.add_shard(shard(2, 0));
        t.set_color_shards(ColorId(1), vec![ShardId(1)]);
        t.set_color_shards(ColorId(1), vec![ShardId(2)]);
        let shards = t.shards_of(ColorId(1));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].id, ShardId(2));
    }
}
