//! Data-layer messages and the cluster-wide wire enum.

use flexlog_ordering::{OrderMsg, OrderWire};
use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, CommittedRecord, Epoch, FunctionId, Payload, SeqNum, Token};

/// Messages of the data layer (client ↔ replica and replica ↔ replica).
#[derive(Clone, Debug, PartialEq)]
pub enum DataMsg {
    /// Client → every replica of one shard: append `payloads` to `color`
    /// under `token` (Algorithm 1, line 7). Acks go to `reply_to`.
    /// Payloads are zero-copy [`Payload`]s: a shard-wide broadcast clones
    /// refcounts, never record bytes.
    Append {
        color: ColorId,
        token: Token,
        payloads: Vec<Payload>,
        reply_to: NodeId,
    },
    /// Replica → client: the batch identified by `token` is committed, its
    /// last record holds `last_sn` (Algorithm 1, line 24).
    AppendAck { token: Token, last_sn: SeqNum },

    /// Client → one replica per shard of the color: read `sn`.
    Read { color: ColorId, sn: SeqNum, req: u64 },
    /// Replica → client: the record, or ⊥ if this shard does not hold it.
    ReadResp {
        req: u64,
        value: Option<Payload>,
    },

    /// Client → one replica per shard: all records of `color` above `from`.
    Subscribe { color: ColorId, from: SeqNum, req: u64 },
    /// Replica → client: this shard's slice of the colored log.
    SubscribeResp {
        req: u64,
        records: Vec<CommittedRecord>,
    },

    // ----- push subscriptions (subscription groups) -----
    /// Client → one replica of one shard: register a standing tail cursor
    /// for `color` at `from`. The replica answers immediately with a
    /// (possibly empty) [`DataMsg::SubPushBatch`] and from then on pushes
    /// committed spans as they land. Registration is idempotent per `sub`:
    /// re-registering moves the cursor to `from`.
    SubscribeFrom {
        color: ColorId,
        from: SeqNum,
        sub: u64,
        reply_to: NodeId,
    },
    /// Replica → subscriber: committed records of `color` above the
    /// subscriber's cursor, in SN order. An empty batch is a liveness
    /// heartbeat (the subscriber re-attaches elsewhere when these stop).
    SubPushBatch {
        sub: u64,
        color: ColorId,
        records: Vec<CommittedRecord>,
    },
    /// Subscriber → replica: delivered everything up to `upto`; the acked
    /// cursor is what survives crash re-attach and migration handoff.
    SubAck { sub: u64, upto: SeqNum },
    /// Subscriber → replica: tear the subscription down.
    SubCancel { sub: u64 },
    /// Replica → subscriber: this replica stopped serving the color
    /// (`ColorMoved` after a cutover — re-resolve the topology and
    /// re-register; `Dropped` — terminal, the color was destroyed).
    SubRedirect {
        sub: u64,
        color: ColorId,
        reason: RejectReason,
    },

    /// Client → all replicas of all shards of the color: delete ≤ `up_to`.
    Trim { color: ColorId, up_to: SeqNum, req: u64 },
    /// Replica → replica: I applied this trim (second round of §6.2).
    TrimPeerAck { color: ColorId, up_to: SeqNum, req: u64 },
    /// Replica → client: trim complete here; the color now spans
    /// `[head, tail]` (third round of §6.2).
    TrimAck {
        req: u64,
        head: Option<SeqNum>,
        tail: Option<SeqNum>,
    },

    /// Client → all replicas of the special-color shard: end of a
    /// multi-color append (Algorithm 2, line 5).
    MultiEnd { fid: FunctionId, req: u64, reply_to: NodeId },
    /// Replica → client: every set of the multi-color append is committed
    /// in its target color (Algorithm 2, line 18).
    MultiAck { req: u64 },

    /// Recovering replica → shard peers: begin a sync-phase round (§6.3).
    SyncRequest { round: u64 },
    /// Replica → all shard peers: my state for this round — known sequencer
    /// epoch and per-color (tail, record count), plus the reconfiguration
    /// marks (controller generation and frozen/moved/dropped colors) so a
    /// restarted peer re-learns a freeze it lost with its volatile state.
    SyncState {
        round: u64,
        epoch: Epoch,
        tails: Vec<(ColorId, SeqNum, u64)>,
        /// Highest controller generation this peer has obeyed.
        ctrl_gen: u64,
        /// Colors currently frozen for migration on this peer.
        frozen: Vec<ColorId>,
        /// Colors cut over to another shard.
        moved: Vec<ColorId>,
        /// Colors destroyed.
        dropped: Vec<ColorId>,
    },
    /// Replica → most-up-to-date peer: send me `color` records above `from`.
    SyncFetch { round: u64, color: ColorId, from: SeqNum },
    /// Reply to [`DataMsg::SyncFetch`]: the records, with their tokens so
    /// idempotence survives recovery.
    SyncRecords {
        round: u64,
        color: ColorId,
        records: Vec<(Token, SeqNum, Payload)>,
        done: bool,
    },
    /// Replica → all shard peers: I am synchronized for this round (the
    /// all-to-all barrier of §6.3).
    SyncDone { round: u64 },

    // ----- reconfiguration control (color migration, §elasticity) -----
    /// Control plane → source replicas: stop admitting NEW appends of
    /// `color`. Already-staged records keep flowing (their OReq resends and
    /// OResp commits proceed), which is what drains the staged set; fresh
    /// appends are nacked with [`DataMsg::Rejected`] and the client retries
    /// until cutover re-routes it.
    /// Carries the controller generation `gen`: a replica that has seen a
    /// higher generation nacks with [`DataMsg::CtrlNack`] (zombie fencing).
    FreezeColor { color: ColorId, gen: u64, req: u64 },
    /// Control plane → source replicas: migration aborted, admit again.
    UnfreezeColor { color: ColorId, gen: u64, req: u64 },
    /// Control plane → storage replicas: run one tiering round for
    /// `color` — archive its cold prefix (all but the newest `keep_tail`
    /// records, at most `max_records`) to the object store, or, when
    /// `demote` is set, move records from PM down to the SSD instead.
    /// Each replica archives its own storage (idempotent: segments are
    /// deterministic, re-uploads are byte-identical). Replies
    /// [`DataMsg::CtrlAck`]. Gen-fenced like the other control verbs.
    ArchiveColor {
        color: ColorId,
        keep_tail: u64,
        max_records: u64,
        demote: bool,
        gen: u64,
        req: u64,
    },
    /// Control plane → one replica: report `color`'s local state (drain
    /// polling and span-export bounds).
    ColorStatus { color: ColorId, req: u64 },
    /// Reply to [`DataMsg::ColorStatus`].
    CtrlColorInfo {
        req: u64,
        /// Tokens staged here but not yet committed (any color — staging is
        /// not per color, but a zero means nothing can still commit).
        staged: u64,
        head: Option<SeqNum>,
        tail: Option<SeqNum>,
        /// Committed records of the color on this replica.
        count: u64,
    },
    /// Control plane → one source replica: ship `color`'s committed span
    /// (trim-aware: only records above the head, with their tokens).
    /// `above` narrows the export to records strictly above that SN — the
    /// catch-up watermark of an incremental migration round; `None` means
    /// the full span above the head. `limit` caps the records shipped per
    /// request (the scan runs inside the replica's event loop and blocks
    /// appends for its duration, so bulk exports chunk); `u64::MAX` means
    /// unbounded.
    ExportSpan {
        color: ColorId,
        req: u64,
        above: Option<SeqNum>,
        limit: u64,
    },
    /// Reply to [`DataMsg::ExportSpan`].
    SpanRecords {
        req: u64,
        color: ColorId,
        head: Option<SeqNum>,
        records: Vec<(Token, SeqNum, Payload)>,
        /// Subscription cursors registered on the exporting replica for
        /// this color: like freeze marks, they ride the migration so the
        /// destination resumes pushing where the source stopped.
        cursors: Vec<SubCursor>,
    },
    /// Control plane → destination replicas: install an exported span
    /// (idempotent per (color, sn); tokens feed the idempotence map so
    /// post-cutover client retries of pre-migration appends re-ack).
    ImportSpan {
        color: ColorId,
        gen: u64,
        req: u64,
        head: Option<SeqNum>,
        records: Vec<(Token, SeqNum, Payload)>,
        /// Cold imports land directly on the SSD tier: bulk catch-up
        /// history must not evict the destination's PM headroom (the hot
        /// append path runs there) nor pollute its DRAM cache. The final
        /// freeze-window sliver ships hot (`false`) so the records a
        /// client is about to re-read stay warm.
        cold: bool,
        /// Subscription cursors handed over from the source (final hot
        /// sliver only). The delegate destination replica adopts them and
        /// resumes pushing from each subscriber's acked SN.
        cursors: Vec<SubCursor>,
    },
    /// Reply to [`DataMsg::ImportSpan`]: `imported` new records installed.
    ImportAck { req: u64, imported: u64 },
    /// Control plane → one replica: list the SNs of `color`'s committed
    /// records above the head. Used inside the freeze window to verify the
    /// destination holds a superset of the source — the catch-up watermark
    /// can step over a commit-order hole that fills later, so counts alone
    /// cannot prove completeness.
    SpanDigest { color: ColorId, req: u64 },
    /// Reply to [`DataMsg::SpanDigest`].
    SpanDigestResp {
        req: u64,
        color: ColorId,
        head: Option<SeqNum>,
        sns: Vec<SeqNum>,
    },
    /// Control plane → one source replica: ship exactly these records of
    /// `color` (the digest diff). Answered with [`DataMsg::SpanRecords`].
    FetchRecords {
        color: ColorId,
        req: u64,
        sns: Vec<SeqNum>,
    },
    /// Control plane → destination replicas: begin serving `color` (clears
    /// any frozen/moved/dropped marks from an earlier residency).
    AdoptColor { color: ColorId, gen: u64, req: u64 },
    /// Control plane → source replicas: the color now lives elsewhere;
    /// nack its appends with `ColorMoved` so clients re-resolve the shard.
    CutoverColor { color: ColorId, gen: u64, req: u64 },
    /// Control plane → replicas: the color was destroyed.
    DropColor { color: ColorId, gen: u64, req: u64 },
    /// Control plane → destination replicas: discard every committed
    /// record of `color` (roll-back of a partially imported migration).
    /// The trim head is kept — heads only ever advance.
    DiscardColor { color: ColorId, gen: u64, req: u64 },
    /// New controller → all replicas: generation announcement. Replicas
    /// raise their fencing floor and ack; commands from lower generations
    /// are nacked from this point on.
    ControllerHello { gen: u64, req: u64 },
    /// Generic ack for the fire-and-forget control messages above.
    CtrlAck { req: u64 },
    /// Replica → controller: command refused — sender's generation is
    /// stale (`gen` is the highest this replica has seen).
    CtrlNack { req: u64, gen: u64 },
    /// Replica → client: this replica refuses the append; the reason tells
    /// the client whether to back off (`Frozen`), re-resolve the shard
    /// (`ColorMoved`), or fail (`Dropped`).
    Rejected { token: Token, reason: RejectReason },

    /// Orderly shutdown (test harness).
    Shutdown,
}

/// A subscription cursor in flight between replicas (migration handoff):
/// enough to resume pushing — the subscriber's address and the SN it has
/// acknowledged. Resuming from `acked` (not the optimistic push cursor)
/// means a handoff can re-push in-flight records; subscribers dedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubCursor {
    pub sub: u64,
    pub target: NodeId,
    pub acked: SeqNum,
}

/// Why a replica nacked an append (epoch-fencing during reconfiguration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Color is frozen for migration; retry shortly (same or new shard).
    Frozen,
    /// Color was cut over to another shard; re-resolve from the topology.
    ColorMoved,
    /// Color was destroyed; the append can never succeed.
    Dropped,
}

/// The cluster-wide message type: everything that can travel on a FlexLog
/// deployment's network.
#[derive(Clone, Debug)]
pub enum ClusterMsg {
    Order(OrderMsg),
    Data(DataMsg),
}

impl OrderWire for ClusterMsg {
    fn from_order(m: OrderMsg) -> Self {
        ClusterMsg::Order(m)
    }
    fn into_order(self) -> Option<OrderMsg> {
        match self {
            ClusterMsg::Order(m) => Some(m),
            ClusterMsg::Data(_) => None,
        }
    }
}

impl From<DataMsg> for ClusterMsg {
    fn from(m: DataMsg) -> Self {
        ClusterMsg::Data(m)
    }
}

impl ClusterMsg {
    /// Extracts the data-layer message, if any.
    pub fn into_data(self) -> Option<DataMsg> {
        match self {
            ClusterMsg::Data(m) => Some(m),
            ClusterMsg::Order(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_wire_roundtrips_order() {
        let m = OrderMsg::Shutdown;
        let w = ClusterMsg::from_order(m.clone());
        assert_eq!(w.into_order(), Some(m));
    }

    #[test]
    fn cluster_wire_separates_layers() {
        let d: ClusterMsg = DataMsg::Shutdown.into();
        assert!(d.clone().into_order().is_none());
        assert_eq!(d.into_data(), Some(DataMsg::Shutdown));
        let o = ClusterMsg::Order(OrderMsg::Shutdown);
        assert!(o.into_data().is_none());
    }
}
