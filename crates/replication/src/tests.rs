//! End-to-end tests of the data layer running against a real ordering
//! layer on the simulated network.

use std::time::Duration;

use flexlog_ordering::{Directory, OrderingHandle, OrderingService, RoleId, TreeSpec};
use flexlog_simnet::{Network, NodeId};
use flexlog_storage::StorageConfig;
use flexlog_types::{ColorId, Epoch, FunctionId, Payload, SeqNum, ShardId};

use crate::msg::ClusterMsg;
use crate::{ClientConfig, ClientError, DataLayerHandle, DataLayerService, DataLayerSpec, FlexLogClient, ReplicaConfig};

/// Shorthand: build a [`Payload`] from anything byte-like.
fn p(bytes: impl Into<Payload>) -> Payload {
    bytes.into()
}

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

struct Cluster {
    net: Network<ClusterMsg>,
    directory: Directory,
    data: DataLayerHandle,
    ordering: OrderingHandle<ClusterMsg>,
    next_client: u64,
}

/// Builds: `n_shards` shards × `r` replicas, one root sequencer owning the
/// master color + RED + GREEN, `backups` backups.
fn cluster(n_shards: usize, r: usize, backups: usize) -> Cluster {
    let net: Network<ClusterMsg> = Network::instant();
    let directory = Directory::new();

    let mut data_spec = DataLayerSpec::uniform(n_shards, r, &[RoleId(0)]);
    data_spec.replica = ReplicaConfig {
        storage: StorageConfig::default(),
        read_hold: Duration::from_millis(10),
        oreq_resend: Duration::from_millis(100),
        sync_timeout: Duration::from_millis(400),
        ..Default::default()
    };
    let all_shards: Vec<ShardId> = (0..n_shards as u32).map(ShardId).collect();
    data_spec.colors = vec![
        (ColorId::MASTER, all_shards.clone()),
        (RED, all_shards.clone()),
        (GREEN, all_shards),
    ];
    let data = DataLayerService::start(&net, &directory, &data_spec);

    let mut tree = TreeSpec::single(&[ColorId::MASTER, RED, GREEN]);
    tree.backups_per_position = backups;
    tree.heartbeat_interval = Duration::from_millis(10);
    tree.delta = Duration::from_millis(80);
    tree.election_window = Duration::from_millis(40);
    let ordering = OrderingService::start_with_directory(
        &net,
        &tree,
        &data.replicas_by_leaf_role(),
        directory.clone(),
    );

    Cluster {
        net,
        directory,
        data,
        ordering,
        next_client: 0,
    }
}

impl Cluster {
    fn client(&mut self) -> FlexLogClient {
        self.next_client += 1;
        let ep = self
            .net
            .register(NodeId::named(NodeId::CLASS_CLIENT, self.next_client));
        FlexLogClient::new(
            ep,
            self.data.topology.clone(),
            ClientConfig {
                fid: FunctionId(self.next_client as u32),
                retry: Duration::from_millis(100),
                deadline: Duration::from_secs(10),
                ..Default::default()
            },
        )
    }

    fn shutdown(self) {
        self.data.shutdown();
        self.ordering.shutdown(&self.net);
    }
}

#[test]
fn append_then_read_roundtrip() {
    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let sn = cl.append(RED, &[p(b"hello flexlog")]).unwrap();
    assert_eq!(sn.epoch(), Epoch(1));
    let v = cl.read(RED, sn).unwrap();
    assert_eq!(v.unwrap(), b"hello flexlog");
    c.shutdown();
}

#[test]
fn appends_are_totally_ordered_per_color() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let mut last = SeqNum::ZERO;
    for i in 0..20u32 {
        let sn = cl.append(RED, &[p(format!("r{i}"))]).unwrap();
        assert!(sn > last);
        last = sn;
    }
    c.shutdown();
}

#[test]
fn batch_append_assigns_range() {
    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let batch: Vec<Payload> = (0..4).map(|i| p(vec![i as u8])).collect();
    let last = cl.append(RED, &batch).unwrap();
    // The four records occupy the four counters ending at `last`.
    for i in 0..4u32 {
        let sn = SeqNum::new(last.epoch(), last.counter() - 3 + i);
        assert_eq!(cl.read(RED, sn).unwrap().unwrap(), vec![i as u8]);
    }
    c.shutdown();
}

#[test]
fn colors_are_independent_logs() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let r = cl.append(RED, &[p(b"red-1")]).unwrap();
    let g = cl.append(GREEN, &[p(b"green-1")]).unwrap();
    assert_eq!(r.counter(), 1);
    assert_eq!(g.counter(), 1, "each color starts its own SN space");
    assert_eq!(cl.read(RED, r).unwrap().unwrap(), b"red-1");
    assert_eq!(cl.read(GREEN, g).unwrap().unwrap(), b"green-1");
    c.shutdown();
}

#[test]
fn read_of_missing_sn_is_bottom() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let sn = cl.append(RED, &[p(b"only")]).unwrap();
    // Way past the tail: replicas hold the read briefly, then answer ⊥.
    let missing = SeqNum::new(sn.epoch(), sn.counter() + 100);
    assert_eq!(cl.read(RED, missing).unwrap(), None);
    c.shutdown();
}

#[test]
fn subscribe_returns_full_ordered_log() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let mut sns = Vec::new();
    for i in 0..15u32 {
        sns.push(cl.append(RED, &[p(format!("e{i}"))]).unwrap());
    }
    let log = cl.subscribe(RED).unwrap();
    assert_eq!(log.len(), 15);
    for w in log.windows(2) {
        assert!(w[0].sn < w[1].sn, "subscribe must be SN-ordered");
    }
    let payloads: Vec<Vec<u8>> = log.into_iter().map(|r| r.payload.to_vec()).collect();
    for i in 0..15u32 {
        assert!(payloads.contains(&format!("e{i}").into_bytes()));
    }
    c.shutdown();
}

#[test]
fn trim_erases_prefix_across_shards() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let mut sns = Vec::new();
    for i in 0..10u32 {
        sns.push(cl.append(RED, &[p(format!("t{i}"))]).unwrap());
    }
    let cut = sns[4];
    let (head, tail) = cl.trim(RED, cut).unwrap();
    assert_eq!(head, Some(cut));
    assert_eq!(tail, Some(sns[9]));
    for (i, &sn) in sns.iter().enumerate() {
        let v = cl.read(RED, sn).unwrap();
        if i <= 4 {
            assert_eq!(v, None, "record {i} must be trimmed");
        } else {
            assert!(v.is_some(), "record {i} must survive the trim");
        }
    }
    let log = cl.subscribe(RED).unwrap();
    assert_eq!(log.len(), 5);
    c.shutdown();
}

#[test]
fn multi_append_commits_to_all_colors() {
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    cl.multi_append(&[
        (RED, vec![p(b"red-a"), p(b"red-b")]),
        (GREEN, vec![p(b"green-a")]),
    ])
    .unwrap();
    // All records eventually readable in their target colors.
    let red_log = cl.subscribe(RED).unwrap();
    let green_log = cl.subscribe(GREEN).unwrap();
    let red_payloads: Vec<&[u8]> = red_log.iter().map(|r| r.payload.as_slice()).collect();
    assert!(red_payloads.contains(&b"red-a".as_slice()));
    assert!(red_payloads.contains(&b"red-b".as_slice()));
    assert_eq!(green_log.len(), 1);
    assert_eq!(green_log[0].payload, b"green-a");
    c.shutdown();
}

#[test]
fn multi_append_unknown_color_is_rejected_upfront() {
    let mut c = cluster(1, 2, 0);
    let mut cl = c.client();
    let err = cl
        .multi_append(&[(ColorId(99), vec![p(b"x")])])
        .unwrap_err();
    assert_eq!(err, ClientError::UnknownColor(ColorId(99)));
    // Nothing leaked into the special color's targets.
    assert_eq!(cl.subscribe(RED).unwrap().len(), 0);
    c.shutdown();
}

#[test]
fn replica_failure_blocks_appends_but_not_reads() {
    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let sn = cl.append(RED, &[p(b"before")]).unwrap();

    let victim = c.data.shard_replicas(ShardId(0))[0];
    c.data.crash_replica(&c.net, victim);

    // Reads still served by the remaining replicas (read-one).
    assert_eq!(cl.read(RED, sn).unwrap().unwrap(), b"before");

    // Appends need *all* replicas: they block (CAP choice, §4).
    let mut impatient = c.client();
    let ep_cfg = ClientConfig {
        fid: FunctionId(99),
        retry: Duration::from_millis(50),
        deadline: Duration::from_millis(400),
        ..Default::default()
    };
    let ep = c.net.register(NodeId::named(NodeId::CLASS_CLIENT, 999));
    let mut blocked = FlexLogClient::new(ep, c.data.topology.clone(), ep_cfg);
    assert_eq!(
        blocked.append(RED, &[p(b"blocked")]).unwrap_err(),
        ClientError::Timeout
    );
    let _ = &mut impatient;
    c.shutdown();
}

#[test]
fn restarted_replica_syncs_missing_records() {
    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let sn1 = cl.append(RED, &[p(b"one")]).unwrap();

    let victim = c.data.shard_replicas(ShardId(0))[2];
    c.data.crash_replica(&c.net, victim);

    // Kick off an append that blocks on the crashed replica, in a thread.
    let topo = c.data.topology.clone();
    let ep = c.net.register(NodeId::named(NodeId::CLASS_CLIENT, 500));
    let blocked = std::thread::spawn(move || {
        let mut cl2 = FlexLogClient::new(
            ep,
            topo,
            ClientConfig {
                fid: FunctionId(77),
                retry: Duration::from_millis(100),
                deadline: Duration::from_secs(20),
                ..Default::default()
            },
        );
        cl2.append(RED, &[p(b"two")]).unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // Restart: the replica recovers its devices, syncs with peers, and the
    // blocked append completes.
    c.data.restart_replica(&c.net, &c.directory, victim);
    let sn2 = blocked.join().unwrap();
    assert!(sn2 > sn1);

    // The restarted replica must hold *both* records: ask it directly by
    // reading many times (random replica selection) — simplest is checking
    // its storage.
    let storage = c.data.storage_of(victim).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while storage.get(RED, sn1).is_none() || storage.get(RED, sn2).is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "restarted replica never caught up: sn1={:?} sn2={:?}",
            storage.get(RED, sn1).is_some(),
            storage.get(RED, sn2).is_some()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(cl.read(RED, sn2).unwrap().unwrap(), b"two");
    c.shutdown();
}

#[test]
fn sequencer_failover_with_data_layer() {
    let mut c = cluster(1, 3, 2);
    let mut cl = c.client();
    let sn1 = cl.append(RED, &[p(b"epoch1")]).unwrap();
    assert_eq!(sn1.epoch(), Epoch(1));

    c.ordering.crash_leader(&c.net, RoleId(0));

    // The new sequencer initializes the replicas (sync-phase) and then
    // appends resume at a higher epoch.
    let sn2 = cl.append(RED, &[p(b"epoch2")]).unwrap();
    assert!(sn2.epoch() > Epoch(1), "got {sn2:?}");
    assert!(sn2 > sn1, "SNs increase across fail-over");

    // Old and new records all readable.
    assert_eq!(cl.read(RED, sn1).unwrap().unwrap(), b"epoch1");
    assert_eq!(cl.read(RED, sn2).unwrap().unwrap(), b"epoch2");
    c.shutdown();
}

#[test]
fn append_visibility_property() {
    // P3 (§7): a completed append is visible to any subsequent read and
    // subscribe.
    let mut c = cluster(2, 3, 0);
    let mut cl = c.client();
    for i in 0..25u32 {
        let payload = format!("p3-{i}").into_bytes();
        let sn = cl.append(RED, &[p(payload.clone())]).unwrap();
        assert_eq!(
            cl.read(RED, sn).unwrap().as_deref(),
            Some(payload.as_slice()),
            "append {i} invisible to read"
        );
        let log = cl.subscribe(RED).unwrap();
        assert!(
            log.iter().any(|r| r.sn == sn),
            "append {i} invisible to subscribe"
        );
    }
    c.shutdown();
}

#[test]
fn subscribe_stability_property() {
    // P2 (§7): absent trims, a later subscribe returns a superset that
    // preserves prefix order (s1 is a substring of s2).
    let mut c = cluster(2, 2, 0);
    let mut cl = c.client();
    let mut writer = c.client();
    let mut prev: Vec<SeqNum> = Vec::new();
    for round in 0..8u32 {
        for i in 0..3u32 {
            writer
                .append(RED, &[p(format!("s{round}-{i}"))])
                .unwrap();
        }
        let snapshot: Vec<SeqNum> = cl.subscribe(RED).unwrap().iter().map(|r| r.sn).collect();
        // prev must be a (not necessarily strict) prefix-ordered subsequence
        // of snapshot — with a single shard log and no trims it is exactly a
        // prefix; across shards it is a sorted sub-slice.
        assert!(
            snapshot.len() >= prev.len(),
            "snapshot shrank: {} -> {}",
            prev.len(),
            snapshot.len()
        );
        assert_eq!(&snapshot[..prev.len()], prev.as_slice(), "prefix violated");
        prev = snapshot;
    }
    c.shutdown();
}

#[test]
fn concurrent_clients_disjoint_sns() {
    let mut c = cluster(2, 2, 0);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let mut cl = c.client();
        handles.push(std::thread::spawn(move || {
            (0..10)
                .map(|i| cl.append(RED, &[p(format!("c{i}"))]).unwrap())
                .collect::<Vec<SeqNum>>()
        }));
    }
    let mut all: Vec<SeqNum> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "SNs must be unique across clients");
    c.shutdown();
}

#[test]
fn held_read_released_by_inflight_append() {
    // §6.3 "Safety", problem 2: a read for an SN just above the replica's
    // max-seen must be *held* (not answered ⊥) while the append carrying
    // that SN is still in flight, and answered with the record once it
    // commits.
    use crate::msg::DataMsg;
    use flexlog_simnet::NodeId;

    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let sn1 = cl.append(RED, &[p(b"first")]).unwrap();

    // Ask one replica directly for the *next* SN before it exists.
    let replica = c.data.shard_replicas(ShardId(0))[0];
    let probe = c.net.register(NodeId::named(NodeId::CLASS_CLIENT, 400));
    probe
        .send(
            replica,
            DataMsg::Read {
                color: RED,
                sn: SeqNum::new(sn1.epoch(), sn1.counter() + 1),
                req: 4242,
            }
            .into(),
        )
        .unwrap();

    // Commit the append that assigns exactly that SN while the read is
    // held.
    let sn2 = cl.append(RED, &[p(b"second")]).unwrap();
    assert_eq!(sn2.counter(), sn1.counter() + 1);

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match probe.recv_timeout(Duration::from_millis(200)) {
            Ok((_, ClusterMsg::Data(DataMsg::ReadResp { req: 4242, value }))) => {
                assert_eq!(
                    value.as_deref(),
                    Some(b"second".as_slice()),
                    "held read must see the in-flight append, not ⊥"
                );
                break;
            }
            _ => assert!(
                std::time::Instant::now() < deadline,
                "held read never answered"
            ),
        }
    }
    c.shutdown();
}

#[test]
fn held_read_times_out_to_bottom() {
    // The same hold expires to ⊥ when no append arrives — the paper's
    // bounded hold (the client then retries elsewhere).
    use crate::msg::DataMsg;
    use flexlog_simnet::NodeId;

    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    let sn1 = cl.append(RED, &[p(b"only")]).unwrap();

    let replica = c.data.shard_replicas(ShardId(0))[0];
    let probe = c.net.register(NodeId::named(NodeId::CLASS_CLIENT, 401));
    probe
        .send(
            replica,
            DataMsg::Read {
                color: RED,
                sn: SeqNum::new(sn1.epoch(), sn1.counter() + 5),
                req: 4343,
            }
            .into(),
        )
        .unwrap();
    let started = std::time::Instant::now();
    let (_, msg) = probe.recv_timeout(Duration::from_secs(5)).unwrap();
    match msg {
        ClusterMsg::Data(DataMsg::ReadResp { req: 4343, value }) => {
            assert_eq!(value, None, "expired hold answers ⊥");
            // It must actually have been held for (about) the window.
            assert!(
                started.elapsed() >= Duration::from_millis(5),
                "answered too fast to have been held: {:?}",
                started.elapsed()
            );
        }
        other => panic!("unexpected message {other:?}"),
    }
    c.shutdown();
}

// ----- pipelined appends ----------------------------------------------------

#[test]
fn pipelined_appends_complete_and_are_readable() {
    let mut c = cluster(2, 3, 0);
    let mut cl = c.client();
    let mut expected = std::collections::HashMap::new();
    for i in 0..100u32 {
        let color = if i % 2 == 0 { RED } else { GREEN };
        let bytes = format!("pl-{i}").into_bytes();
        let token = cl
            .append_pipelined(color, &[p(bytes.clone())])
            .unwrap();
        assert!(expected.insert(token, (color, bytes)).is_none(), "token reused");
    }
    let mut done: Vec<_> = cl.take_completed();
    done.extend(cl.flush().unwrap());
    assert_eq!(done.len(), 100, "every pipelined append completes");
    assert_eq!(cl.pending_appends(), 0);

    // Each completion maps back to its issue, and the record is durable
    // under the assigned SN with the right bytes.
    let mut sns_per_color: std::collections::HashMap<ColorId, Vec<SeqNum>> =
        std::collections::HashMap::new();
    for (token, sn) in done {
        let (color, bytes) = expected.remove(&token).expect("completion of an issued op");
        let got = cl.read(color, sn).unwrap().expect("committed record readable");
        assert_eq!(got.as_slice(), bytes.as_slice());
        sns_per_color.entry(color).or_default().push(sn);
    }
    assert!(expected.is_empty(), "ops never completed: {expected:?}");
    for (color, mut sns) in sns_per_color {
        let n = sns.len();
        sns.sort_unstable();
        sns.dedup();
        assert_eq!(sns.len(), n, "duplicate SNs in color {color:?}");
    }
    c.shutdown();
}

#[test]
fn pipelined_window_bounds_inflight() {
    let mut c = cluster(1, 3, 0);
    let mut cl = c.client();
    cl.set_pipeline_window(4);
    let mut completions = 0;
    for i in 0..24u32 {
        cl.append_pipelined(RED, &[p(format!("w-{i}"))]).unwrap();
        assert!(
            cl.pending_appends() <= 4,
            "window overflow: {} in flight",
            cl.pending_appends()
        );
        completions += cl.take_completed().len();
    }
    completions += cl.flush().unwrap().len();
    assert_eq!(completions, 24);
    c.shutdown();
}

#[test]
fn pipelined_and_serial_appends_interleave() {
    let mut c = cluster(2, 3, 0);
    let mut cl = c.client();
    let t1 = cl.append_pipelined(RED, &[p(b"pipe-1")]).unwrap();
    let t2 = cl.append_pipelined(GREEN, &[p(b"pipe-2")]).unwrap();
    // A blocking append while pipelined ops are in flight: its recv loop
    // must absorb (and credit) their stray acks rather than mistaking them
    // for its own.
    let serial_sn = cl.append(RED, &[p(b"serial")]).unwrap();
    assert_eq!(
        cl.read(RED, serial_sn).unwrap().unwrap(),
        b"serial"
    );
    let done = {
        let mut d = cl.take_completed();
        d.extend(cl.flush().unwrap());
        d
    };
    assert_eq!(done.len(), 2);
    for (token, sn) in done {
        let (color, bytes): (ColorId, &[u8]) = if token == t1 {
            (RED, b"pipe-1")
        } else {
            assert_eq!(token, t2);
            (GREEN, b"pipe-2")
        };
        assert_eq!(cl.read(color, sn).unwrap().unwrap(), bytes);
    }
    c.shutdown();
}

/// Regression: `flush()` budgets the configured deadline from *flush
/// entry*, not from when each op entered the pipeline. An op stalled past
/// its original per-op deadline (here: a crashed write-all replica held
/// the ack back longer than `ClientConfig::deadline`) must still complete
/// once the cluster heals, rather than `flush` failing instantly with a
/// deadline error for an op the healthy cluster could finish.
#[test]
fn flush_rebases_deadline_from_flush_entry() {
    let mut c = cluster(1, 3, 0);
    c.next_client += 1;
    let ep = c
        .net
        .register(NodeId::named(NodeId::CLASS_CLIENT, c.next_client));
    let mut cl = FlexLogClient::new(
        ep,
        c.data.topology.clone(),
        ClientConfig {
            fid: FunctionId(7),
            retry: Duration::from_millis(20),
            max_retry: Duration::from_millis(100),
            // Short per-op deadline: the stall below outlives it.
            deadline: Duration::from_millis(300),
            ..Default::default()
        },
    );

    // Write-all: with one replica down the append cannot complete.
    let victim = c.data.shard_replicas(ShardId(0))[2];
    c.data.crash_replica(&c.net, victim);
    let token = cl.append_pipelined(RED, &[p(b"stalled")]).unwrap();

    // Outlive the op's original deadline while the client is idle (no
    // pumping), then heal and let the restarted replica finish its sync.
    std::thread::sleep(Duration::from_millis(500));
    c.data.restart_replica(&c.net, &c.directory, victim);
    std::thread::sleep(Duration::from_millis(200));

    // The op's original deadline is long gone; flush must re-base it and
    // drive the append home instead of returning `Timeout` immediately.
    let done = cl.flush().unwrap();
    assert_eq!(done.len(), 1);
    let (t, sn) = done[0];
    assert_eq!(t, token);
    assert_eq!(cl.read(RED, sn).unwrap().unwrap(), b"stalled");
    assert_eq!(cl.pending_appends(), 0);
    c.shutdown();
}
