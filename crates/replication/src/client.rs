//! Client-side implementation of the FlexLog-API protocols (Table 2).
//!
//! A client is typically a serverless function. It talks directly to the
//! replicas of shards (§5.1): appends broadcast to every replica of one
//! random shard of the color and complete when **all** replicas ack
//! (Algorithm 1); reads contact one random replica of each shard and take
//! the first non-⊥ answer; trims touch every replica of every shard. All
//! operations are idempotent (token/request ids), so timeouts simply
//! retransmit.
//!
//! Two append shapes exist:
//!
//! * [`FlexLogClient::append`] — one in flight, blocks until the batch's SN
//!   returns (the classic Algorithm 1 interaction);
//! * [`FlexLogClient::append_pipelined`] + [`FlexLogClient::flush`] — a
//!   bounded window of appends in flight at once, acks tracked out of
//!   order per token. The token protocol already makes every append
//!   idempotent and self-identifying, so pipelining needs no new wire
//!   messages — only client-side bookkeeping. Payloads travel as
//!   refcounted [`Payload`]s: retransmits and shard-wide broadcasts never
//!   copy record bytes.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use flexlog_obs::{Histogram, ObsHandle, Stage};
use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_types::{ColorId, CommittedRecord, FunctionId, Payload, SeqNum, ShardId, Token};

use crate::msg::{ClusterMsg, DataMsg, RejectReason};
use crate::replica::encode_multi_set;
use crate::TopologyView;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Distinct id of this function/client (token namespace).
    pub fid: FunctionId,
    /// Initial retransmit backoff for in-flight operations; doubles per
    /// retransmission up to [`ClientConfig::max_retry`].
    pub retry: Duration,
    /// Cap of the exponential retransmit backoff.
    pub max_retry: Duration,
    /// Jitter fraction applied to every backoff interval: the actual wait is
    /// uniform in `[interval, interval * (1 + jitter)]`. Desynchronizes
    /// retransmit storms from many clients hammering a recovering shard.
    pub jitter: f64,
    /// Retransmission rounds of an append with **zero** acks from the target
    /// shard before the op fails fast with [`ClientError::ShardUnreachable`].
    /// Partial acks never trip this — a shard mid-recovery keeps the op
    /// blocking until `deadline` (the §4 CAP choice).
    pub unreachable_after: u32,
    /// Overall per-operation deadline.
    pub deadline: Duration,
    /// Maximum appends in flight at once through
    /// [`FlexLogClient::append_pipelined`]; the serial
    /// [`FlexLogClient::append`] ignores it.
    pub pipeline_window: usize,
    /// Push-subscription liveness: after this long without any batch or
    /// heartbeat from a stream's server, the client re-resolves a read
    /// target and re-registers from its acked cursor. Should be a few
    /// multiples of the servers' heartbeat interval.
    pub sub_silence: Duration,
    /// Push-subscription ack cadence: an [`DataMsg::SubAck`] goes out when
    /// this much time passed since the last one (or the record budget
    /// below is hit). Lazy acks keep the server-side fill window open for
    /// late hole fills.
    pub sub_ack_interval: Duration,
    /// Records delivered since the last ack that force one immediately.
    pub sub_ack_every: usize,
    /// Observability surface: append latency histograms plus the
    /// `ClientSend`/`ClientRetransmit`/`ClientAck` trace stages.
    pub obs: ObsHandle,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            fid: FunctionId(1),
            retry: Duration::from_millis(100),
            max_retry: Duration::from_secs(2),
            jitter: 0.25,
            unreachable_after: 8,
            deadline: Duration::from_secs(30),
            pipeline_window: 32,
            sub_silence: Duration::from_millis(600),
            sub_ack_interval: Duration::from_millis(50),
            sub_ack_every: 64,
            obs: ObsHandle::default(),
        }
    }
}

/// Errors surfaced to applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The color has no shards (never added).
    UnknownColor(ColorId),
    /// The operation did not complete within the deadline even though the
    /// target shard was (partially) responsive — e.g. appends blocked on a
    /// crashed replica that is expected to recover (§4, §6.3).
    Timeout,
    /// No replica of the target shard acked within the retry budget: the
    /// whole shard is crashed or partitioned away from this client. Unlike
    /// [`ClientError::Timeout`] this fires *before* the global deadline.
    ShardUnreachable(ShardId),
    /// The client's endpoint is gone.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::UnknownColor(c) => write!(f, "color {c} has no shards"),
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::ShardUnreachable(s) => {
                write!(f, "no replica of shard {s:?} reachable within retry budget")
            }
            ClientError::Disconnected => write!(f, "client endpoint disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Capped exponential backoff with multiplicative jitter.
///
/// Deterministic given the caller's RNG: the chaos harness replays client
/// schedules from a seed, so the backoff sequence must be a pure function
/// of (config, rng stream).
#[derive(Clone, Debug)]
pub(crate) struct Backoff {
    current: Duration,
    max: Duration,
    jitter: f64,
}

impl Backoff {
    pub(crate) fn new(initial: Duration, max: Duration, jitter: f64) -> Self {
        Backoff {
            current: initial.max(Duration::from_micros(1)),
            max: max.max(initial),
            jitter: jitter.clamp(0.0, 4.0),
        }
    }

    fn from_config(config: &ClientConfig) -> Self {
        Backoff::new(config.retry, config.max_retry, config.jitter)
    }

    /// The next wait interval: current backoff plus jitter, then doubles the
    /// base (capped).
    pub(crate) fn next_wait(&mut self, rng: &mut StdRng) -> Duration {
        let base = self.current;
        self.current = (base * 2).min(self.max);
        if self.jitter <= 0.0 {
            return base;
        }
        use rand::Rng;
        base.mul_f64(1.0 + rng.gen_range(0.0..self.jitter))
    }
}

/// Merges one replica's post-trim `[head, tail]` report into the running
/// span. The remaining head across replicas is the **minimum** present head
/// (a replica that still holds an older record defines where the log now
/// starts); the tail is the maximum. `None` means "this replica holds no
/// records", which must not mask another replica's surviving records.
pub(crate) fn merge_span(
    span: &mut (Option<SeqNum>, Option<SeqNum>),
    head: Option<SeqNum>,
    tail: Option<SeqNum>,
) {
    span.0 = match (span.0, head) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    span.1 = span.1.max(tail);
}

/// Handle of a standing push subscription opened with
/// [`FlexLogClient::subscribe_push`]: drain it with
/// [`FlexLogClient::poll_subscription`], close it with
/// [`FlexLogClient::unsubscribe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Subscription(u64);

/// One per-shard stream of a push subscription. The wire id (`sub` in the
/// protocol messages) identifies the stream cluster-wide; the serving
/// replica may change under it (migration handoff, crash re-attach).
struct SubStream {
    shard: ShardId,
    /// Last known server of this stream. Updated to whoever pushes —
    /// a migration destination that adopted the cursor takes over silently.
    target: NodeId,
    /// Highest SN acknowledged to the server. Everything at or below is
    /// delivered and will never legitimately arrive again.
    sent_ack: SeqNum,
    /// SNs delivered but not yet acked (> `sent_ack`): the dedup window
    /// for handoff/re-attach re-pushes. Pruned on every ack.
    delivered: BTreeSet<SeqNum>,
    /// Records delivered since the last ack (lazy-ack budget).
    unacked: usize,
    last_ack: Instant,
    last_heard: Instant,
}

/// Client-side state of one push subscription (one color, one stream per
/// shard of the color).
struct SubState {
    color: ColorId,
    /// Wire id → stream.
    streams: HashMap<u64, SubStream>,
    /// Records received and not yet handed to the application, in arrival
    /// order (per-stream SN order).
    ready: Vec<CommittedRecord>,
    /// Terminal error (color dropped): surfaced on the next poll.
    dead: Option<ClientError>,
}

/// One append in flight through the pipelined path.
struct InflightAppend {
    color: ColorId,
    shard: ShardId,
    replicas: Vec<NodeId>,
    /// The retransmittable message (payloads inside are refcounted — a
    /// retransmit clones pointers, not bytes).
    msg: ClusterMsg,
    acked: HashSet<NodeId>,
    last_sn: Option<SeqNum>,
    backoff: Backoff,
    retry_at: Instant,
    silent_rounds: u32,
    deadline: Instant,
    /// When the op entered the pipeline (per-op append latency).
    started: Instant,
}

/// See module docs.
pub struct FlexLogClient {
    ep: Endpoint<ClusterMsg>,
    topology: TopologyView,
    config: ClientConfig,
    token_counter: u32,
    req_counter: u64,
    rng: StdRng,
    /// Pipelined appends awaiting their full replica ack set, by token.
    inflight: HashMap<Token, InflightAppend>,
    /// Pipelined appends that completed but were not yet handed out.
    completed: Vec<(Token, SeqNum)>,
    /// End-to-end append latency, serial and pipelined alike
    /// (`client.append_ns`).
    append_hist: Histogram,
    /// Terminal failure (e.g. a `Dropped` reject) discovered while pumping
    /// pipelined appends; surfaced on the next pump.
    pending_error: Option<ClientError>,
    /// Push subscriptions by handle.
    subscriptions: HashMap<u64, SubState>,
    /// Stream wire id → owning subscription handle.
    sub_index: HashMap<u64, u64>,
    sub_counter: u64,
}

impl FlexLogClient {
    pub fn new(ep: Endpoint<ClusterMsg>, topology: TopologyView, config: ClientConfig) -> Self {
        let seed = ep.id().0 ^ 0x5EED;
        let append_hist = config.obs.histogram("client.append_ns");
        FlexLogClient {
            ep,
            topology,
            config,
            token_counter: 0,
            req_counter: 0,
            rng: StdRng::seed_from_u64(seed),
            inflight: HashMap::new(),
            completed: Vec::new(),
            append_hist,
            pending_error: None,
            subscriptions: HashMap::new(),
            sub_index: HashMap::new(),
            sub_counter: 0,
        }
    }

    /// This client's function id.
    pub fn fid(&self) -> FunctionId {
        self.config.fid
    }

    /// The underlying endpoint id.
    pub fn node_id(&self) -> NodeId {
        self.ep.id()
    }

    fn next_token(&mut self) -> Token {
        self.token_counter += 1;
        Token::new(self.config.fid, self.token_counter)
    }

    fn next_req(&mut self) -> u64 {
        self.req_counter += 1;
        // Namespace by fid so concurrent clients never collide.
        ((self.config.fid.0 as u64) << 32) | self.req_counter
    }

    /// Appends `payloads` to the log of color `color`; returns the SN of the
    /// last record (Table 2 `Append(r[], c)`).
    pub fn append(&mut self, color: ColorId, payloads: &[Payload]) -> Result<SeqNum, ClientError> {
        let shard = self
            .topology
            .random_shard_of(color, &mut self.rng)
            .ok_or(ClientError::UnknownColor(color))?;
        let token = self.next_token();
        self.append_to_shard(color, token, shard.id, &shard.replicas, payloads)
    }

    /// The append protocol against a fixed replica set (used by
    /// multi-append, which must keep all sets on one shard).
    fn append_to_shard(
        &mut self,
        color: ColorId,
        token: Token,
        shard: ShardId,
        replicas: &[NodeId],
        payloads: &[Payload],
    ) -> Result<SeqNum, ClientError> {
        let msg: ClusterMsg = DataMsg::Append {
            color,
            token,
            payloads: payloads.to_vec(), // refcount bumps, not byte copies
            reply_to: self.ep.id(),
        }
        .into();
        let started = Instant::now();
        let mut deadline = started + self.config.deadline;
        let mut backoff = Backoff::from_config(&self.config);
        let mut silent_rounds: u32 = 0;
        let mut acked: HashSet<NodeId> = HashSet::new();
        let mut first_send = true;
        // A migration cutover may re-home the color mid-op; the replica set
        // is then re-resolved from the topology (the token keeps the retry
        // idempotent across the move).
        let mut shard = shard;
        let mut replicas: Vec<NodeId> = replicas.to_vec();
        #[allow(unused_assignments)]
        let mut last_sn: Option<SeqNum> = None;
        loop {
            let stage = if first_send {
                Stage::ClientSend
            } else {
                Stage::ClientRetransmit
            };
            first_send = false;
            self.config.obs.trace_event(token, stage, self.ep.id().0, 0);
            let _ = self.ep.broadcast(&replicas, msg.clone());
            let retry_at = Instant::now() + backoff.next_wait(&mut self.rng);
            loop {
                let now = Instant::now();
                if now >= retry_at {
                    break;
                }
                match self.ep.recv_timeout(retry_at - now) {
                    Ok((from, ClusterMsg::Data(DataMsg::AppendAck { token: t, last_sn: sn })))
                        if t == token =>
                    {
                        // Only the shard's own replicas count towards
                        // completion — a stray ack from a node outside the
                        // replica set (misrouted or stale topology) must
                        // not let the append return before all true
                        // replicas committed.
                        if !replicas.contains(&from) {
                            continue;
                        }
                        acked.insert(from);
                        last_sn = Some(sn);
                        // Complete when *every* replica has committed
                        // (Algorithm 1, line 8) — the basis of linearizable
                        // local reads.
                        if acked.len() == replicas.len() {
                            self.append_hist.record_ns(started.elapsed());
                            self.config
                                .obs
                                .trace_event(token, Stage::ClientAck, self.ep.id().0, 0);
                            return Ok(last_sn.expect("at least one ack"));
                        }
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::AppendAck { token: t, last_sn: sn }))) => {
                        // An ack for a *pipelined* append arriving while a
                        // serial op runs: credit it so the pipelined op
                        // completes without waiting for a retransmit.
                        self.note_stray_ack(from, t, sn);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::Rejected { token: t, reason })))
                        if t == token =>
                    {
                        // Any nack proves the shard is alive — don't let a
                        // fence trip the unreachable fail-fast.
                        silent_rounds = 0;
                        match reason {
                            RejectReason::Frozen => {
                                // Migration in progress: the pre-cutover
                                // shard still answers. Re-base the
                                // deadline — time spent frozen is the
                                // migration's fault, not the shard being
                                // slow, and must not surface as Timeout
                                // once the freeze lifts (same rule as
                                // `flush()` re-basing queued ops). Reset
                                // the backoff too: freeze windows are
                                // millisecond-scale by design, and an
                                // exponentially grown retransmit gap would
                                // both stretch the cutover stall and
                                // outlive the re-based deadline.
                                deadline =
                                    deadline.max(Instant::now() + self.config.deadline);
                                backoff = Backoff::from_config(&self.config);
                                let _ = from;
                            }
                            RejectReason::ColorMoved => {
                                // Cutover happened: re-resolve the shard and
                                // retransmit there. The token makes the
                                // retry idempotent even if some old replica
                                // already committed.
                                if let Some(s) =
                                    self.topology.random_shard_of(color, &mut self.rng)
                                {
                                    if s.id != shard {
                                        shard = s.id;
                                        replicas = s.replicas;
                                        acked.clear();
                                    }
                                }
                                break; // resend to the (possibly new) shard
                            }
                            RejectReason::Dropped => {
                                return Err(ClientError::UnknownColor(color));
                            }
                        }
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::Rejected { token: t, reason }))) => {
                        self.note_reject(from, t, reason);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }))) => {
                        self.note_push(from, sub, color, records);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }))) => {
                        self.note_redirect(from, sub, color, reason);
                    }
                    Ok(_) => {} // stale message from a previous op
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if acked.is_empty() {
                // Not a single replica has ever acked: the whole shard looks
                // crashed or partitioned away. Fail fast instead of burning
                // the full deadline (recovery of a *partially* acked append
                // still waits — that path is expected to complete).
                silent_rounds += 1;
                if silent_rounds >= self.config.unreachable_after {
                    return Err(ClientError::ShardUnreachable(shard));
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    // ----- pipelined appends ----------------------------------------------

    /// Starts an append without waiting for its acks; returns its completion
    /// token. Up to [`ClientConfig::pipeline_window`] appends ride in flight
    /// at once — when the window is full, this blocks until one completes.
    /// Collect results (token → last SN, unordered) with
    /// [`FlexLogClient::flush`].
    ///
    /// Ordering note: records still serialize through the sequencer, but
    /// SNs of concurrently in-flight appends may interleave with other
    /// clients arbitrarily — same semantics as issuing the appends from
    /// `pipeline_window` independent serial clients.
    pub fn append_pipelined(
        &mut self,
        color: ColorId,
        payloads: &[Payload],
    ) -> Result<Token, ClientError> {
        let window = self.config.pipeline_window.max(1);
        while self.inflight.len() >= window {
            self.pump_inflight()?;
        }
        let shard = self
            .topology
            .random_shard_of(color, &mut self.rng)
            .ok_or(ClientError::UnknownColor(color))?;
        let token = self.next_token();
        let msg: ClusterMsg = DataMsg::Append {
            color,
            token,
            payloads: payloads.to_vec(),
            reply_to: self.ep.id(),
        }
        .into();
        self.config
            .obs
            .trace_event(token, Stage::ClientSend, self.ep.id().0, 0);
        let _ = self.ep.broadcast(&shard.replicas, msg.clone());
        let started = Instant::now();
        let mut backoff = Backoff::from_config(&self.config);
        let retry_at = started + backoff.next_wait(&mut self.rng);
        self.inflight.insert(
            token,
            InflightAppend {
                color,
                shard: shard.id,
                replicas: shard.replicas.clone(),
                msg,
                acked: HashSet::new(),
                last_sn: None,
                backoff,
                retry_at,
                silent_rounds: 0,
                deadline: started + self.config.deadline,
                started,
            },
        );
        Ok(token)
    }

    /// Drives every in-flight pipelined append to completion and returns
    /// the accumulated `(token, last SN)` results, in completion order.
    ///
    /// On error (a shard unreachable or an op past its deadline) the failed
    /// op is dropped and the error returned; other in-flight ops stay
    /// queued and a later `flush` can still complete them.
    pub fn flush(&mut self) -> Result<Vec<(Token, SeqNum)>, ClientError> {
        // The per-op deadlines were stamped when each append *entered* the
        // pipeline, which may be long before this call — a deep window
        // could expire ops the moment flush starts even though the cluster
        // is healthy. The configured deadline bounds the *flush*, so give
        // every in-flight op the full budget from flush entry (never
        // shortening a later deadline).
        let flush_deadline = Instant::now() + self.config.deadline;
        for op in self.inflight.values_mut() {
            op.deadline = op.deadline.max(flush_deadline);
        }
        while !self.inflight.is_empty() {
            self.pump_inflight()?;
        }
        Ok(std::mem::take(&mut self.completed))
    }

    /// Number of pipelined appends currently in flight.
    pub fn pending_appends(&self) -> usize {
        self.inflight.len()
    }

    /// Adjusts the pipelined-append window at runtime (clamped to ≥ 1).
    /// Shrinking it does not cancel ops already in flight.
    pub fn set_pipeline_window(&mut self, window: usize) {
        self.config.pipeline_window = window.max(1);
    }

    /// Takes the pipelined appends that have completed so far without
    /// blocking (completion-order `(token, last SN)` pairs). Useful for
    /// latency tracking while the window keeps pumping; [`FlexLogClient::flush`]
    /// returns anything not collected here.
    pub fn take_completed(&mut self) -> Vec<(Token, SeqNum)> {
        std::mem::take(&mut self.completed)
    }

    /// One bounded scheduling step of the pipelined appends: wait for acks
    /// until the earliest retransmit is due, credit arrivals, then
    /// retransmit/expire whatever is overdue.
    fn pump_inflight(&mut self) -> Result<(), ClientError> {
        debug_assert!(!self.inflight.is_empty());
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        let now = Instant::now();
        let next_due = self
            .inflight
            .values()
            .map(|op| op.retry_at)
            .min()
            .expect("non-empty inflight");
        let mut wait = next_due.saturating_duration_since(now);
        // Acks arrive in bursts (a replica's batched commit acks every token
        // of the burst back to back): drain each burst under one inbox lock.
        let mut burst: Vec<(NodeId, ClusterMsg)> = Vec::new();
        loop {
            burst.clear();
            match self.ep.recv_batch(wait, 256, &mut burst) {
                Ok(_) => {
                    for (from, msg) in burst.drain(..) {
                        match msg {
                            ClusterMsg::Data(DataMsg::AppendAck { token, last_sn }) => {
                                self.note_stray_ack(from, token, last_sn);
                            }
                            ClusterMsg::Data(DataMsg::Rejected { token, reason }) => {
                                self.note_reject(from, token, reason);
                            }
                            ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }) => {
                                self.note_push(from, sub, color, records);
                            }
                            ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }) => {
                                self.note_redirect(from, sub, color, reason);
                            }
                            _ => {} // stale response of some earlier blocking op
                        }
                    }
                    // Keep draining whatever already queued, without waiting.
                    wait = Duration::ZERO;
                }
                Err(RecvError::Timeout) => break,
                Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
            }
            if Instant::now() >= next_due {
                break;
            }
        }
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        // Retransmit overdue ops; fail the expired ones.
        let now = Instant::now();
        let overdue: Vec<Token> = self
            .inflight
            .iter()
            .filter(|(_, op)| now >= op.retry_at)
            .map(|(&t, _)| t)
            .collect();
        for token in overdue {
            let op = self.inflight.get_mut(&token).expect("collected above");
            if op.acked.is_empty() {
                op.silent_rounds += 1;
                if op.silent_rounds >= self.config.unreachable_after {
                    let shard = op.shard;
                    self.inflight.remove(&token);
                    return Err(ClientError::ShardUnreachable(shard));
                }
            }
            if now >= op.deadline {
                self.inflight.remove(&token);
                return Err(ClientError::Timeout);
            }
            self.config
                .obs
                .trace_event(token, Stage::ClientRetransmit, self.ep.id().0, 0);
            let _ = self.ep.broadcast(&op.replicas, op.msg.clone());
            op.retry_at = now + op.backoff.next_wait(&mut self.rng);
        }
        Ok(())
    }

    /// Credits an [`DataMsg::AppendAck`] against the matching pipelined
    /// append, completing it when every replica has acked.
    fn note_stray_ack(&mut self, from: NodeId, token: Token, last_sn: SeqNum) {
        let Some(op) = self.inflight.get_mut(&token) else {
            return; // duplicate ack of an already-completed op
        };
        if !op.replicas.contains(&from) {
            return; // see append_to_shard: outsiders must not complete an op
        }
        op.acked.insert(from);
        op.last_sn = Some(last_sn);
        if op.acked.len() == op.replicas.len() {
            let sn = op.last_sn.expect("at least one ack");
            let op = self.inflight.remove(&token).expect("present above");
            self.append_hist.record_ns(op.started.elapsed());
            self.config
                .obs
                .trace_event(token, Stage::ClientAck, self.ep.id().0, 0);
            self.completed.push((token, sn));
        }
    }

    /// Applies a [`DataMsg::Rejected`] nack to the matching pipelined
    /// append (reconfiguration fencing: retry, re-route, or fail).
    fn note_reject(&mut self, from: NodeId, token: Token, reason: RejectReason) {
        let Some(op) = self.inflight.get_mut(&token) else {
            return;
        };
        if !op.replicas.contains(&from) {
            return;
        }
        // A nack proves the shard is alive: never count it towards the
        // unreachable fail-fast.
        op.silent_rounds = 0;
        match reason {
            RejectReason::Frozen => {
                // Pre-cutover freeze window: keep the op queued and keep
                // retransmitting. Time spent frozen must not surface as
                // Timeout once the color thaws — re-base the deadline
                // exactly like `flush()` does for ops queued at its entry
                // (a freeze can outlast the original per-op deadline) and
                // reset the backoff, whose exponentially grown gap would
                // otherwise outlive the re-based deadline and stretch the
                // cutover stall.
                op.deadline = op.deadline.max(Instant::now() + self.config.deadline);
                op.backoff = Backoff::from_config(&self.config);
            }
            RejectReason::ColorMoved => {
                let color = op.color;
                let old_shard = op.shard;
                if let Some(s) = self.topology.random_shard_of(color, &mut self.rng) {
                    if s.id != old_shard {
                        op.shard = s.id;
                        op.replicas = s.replicas;
                        op.acked.clear();
                        op.last_sn = None;
                    }
                }
                // Retransmit (to the possibly new shard) on the next pump.
                op.retry_at = Instant::now();
            }
            RejectReason::Dropped => {
                let color = op.color;
                self.inflight.remove(&token);
                self.pending_error = Some(ClientError::UnknownColor(color));
            }
        }
    }

    /// Reads the record with sequence number `sn` from the `color` log
    /// (Table 2 `Read(SN, c)`); `None` means no record holds that SN.
    pub fn read(&mut self, color: ColorId, sn: SeqNum) -> Result<Option<Payload>, ClientError> {
        if !self.topology.knows_color(color) {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        let mut backoff = Backoff::from_config(&self.config);
        let mut attempt = 0u32;
        loop {
            // Re-resolved every round: a crashed read replica or a mid-op
            // cutover changes the target set.
            let shards = self.topology.shards_of(color);
            if shards.is_empty() {
                return Err(ClientError::UnknownColor(color));
            }
            let req = self.next_req();
            // One node of every shard (§6.1 read protocol). The first
            // attempt prefers read replicas; a silent round falls back to
            // the write quorum, which is always correct.
            let targets: Vec<NodeId> = shards
                .iter()
                .map(|s| {
                    if attempt == 0 {
                        s.random_read_target(&mut self.rng)
                    } else {
                        use rand::Rng;
                        s.replicas[self.rng.gen_range(0..s.replicas.len())]
                    }
                })
                .collect();
            attempt += 1;
            for &t in &targets {
                let _ = self
                    .ep
                    .send(t, DataMsg::Read { color, sn, req }.into());
            }
            let mut answers = 0usize;
            let retry_at = Instant::now() + backoff.next_wait(&mut self.rng);
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(retry_at.saturating_duration_since(Instant::now())) {
                    Ok((_, ClusterMsg::Data(DataMsg::ReadResp { req: r, value })))
                        if r == req =>
                    {
                        if let Some(v) = value {
                            // Only one shard stores any given record.
                            return Ok(Some(v));
                        }
                        answers += 1;
                        if answers == targets.len() {
                            return Ok(None); // all shards answered ⊥
                        }
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }))) => {
                        self.note_push(from, sub, color, records);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }))) => {
                        self.note_redirect(from, sub, color, reason);
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// Returns all records of the `color` log with SN > `from`, merged
    /// across shards in SN order (Table 2 `Subscribe(c)` with an offset for
    /// incremental consumption).
    pub fn subscribe_from(
        &mut self,
        color: ColorId,
        from: SeqNum,
    ) -> Result<Vec<CommittedRecord>, ClientError> {
        if !self.topology.knows_color(color) {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        let mut backoff = Backoff::from_config(&self.config);
        let mut attempt = 0u32;
        loop {
            let shards = self.topology.shards_of(color);
            if shards.is_empty() {
                return Err(ClientError::UnknownColor(color));
            }
            let req = self.next_req();
            let targets: Vec<NodeId> = shards
                .iter()
                .map(|s| {
                    if attempt == 0 {
                        s.random_read_target(&mut self.rng)
                    } else {
                        use rand::Rng;
                        s.replicas[self.rng.gen_range(0..s.replicas.len())]
                    }
                })
                .collect();
            attempt += 1;
            for &t in &targets {
                let _ = self
                    .ep
                    .send(t, DataMsg::Subscribe { color, from, req }.into());
            }
            let mut slices: Vec<Vec<CommittedRecord>> = Vec::new();
            let retry_at = Instant::now() + backoff.next_wait(&mut self.rng);
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(retry_at.saturating_duration_since(Instant::now())) {
                    Ok((_, ClusterMsg::Data(DataMsg::SubscribeResp { req: r, records })))
                        if r == req =>
                    {
                        slices.push(records);
                        if slices.len() == targets.len() {
                            // Reconstruct the colored log by sorting on SN
                            // (§6.2 subscribe protocol).
                            let mut all: Vec<CommittedRecord> =
                                slices.into_iter().flatten().collect();
                            all.sort_by_key(|r| r.sn);
                            all.dedup_by_key(|r| r.sn);
                            return Ok(all);
                        }
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }))) => {
                        self.note_push(from, sub, color, records);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }))) => {
                        self.note_redirect(from, sub, color, reason);
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// `Subscribe(c)`: the full current contents of the colored log.
    pub fn subscribe(&mut self, color: ColorId) -> Result<Vec<CommittedRecord>, ClientError> {
        self.subscribe_from(color, SeqNum::ZERO)
    }

    // ----- push subscriptions ---------------------------------------------

    /// Opens a standing push subscription on `color` starting above `from`:
    /// one stream per shard of the color, each registered on a read target
    /// (read replicas when the shard has them). The servers push committed
    /// spans from then on; drain them with
    /// [`FlexLogClient::poll_subscription`].
    ///
    /// Delivery: per stream in SN order while its serving replica lives
    /// (exactly the pull [`FlexLogClient::subscribe_from`] sequence); under
    /// crashes and migrations at-least-once past the acked cursor, with
    /// duplicates suppressed client-side. A rare commit that lands *below*
    /// an already-pushed SN (a commit-order hole filling late, §6.3) is
    /// delivered out of band and therefore out of order.
    pub fn subscribe_push_from(
        &mut self,
        color: ColorId,
        from: SeqNum,
    ) -> Result<Subscription, ClientError> {
        let shards = self.topology.shards_of(color);
        if shards.is_empty() {
            return Err(ClientError::UnknownColor(color));
        }
        self.sub_counter += 1;
        let key = self.sub_counter;
        let mut streams = HashMap::new();
        let now = Instant::now();
        for shard in shards {
            let wire = self.next_req();
            let target = shard.random_read_target(&mut self.rng);
            let _ = self.ep.send(
                target,
                DataMsg::SubscribeFrom {
                    color,
                    from,
                    sub: wire,
                    reply_to: self.ep.id(),
                }
                .into(),
            );
            streams.insert(
                wire,
                SubStream {
                    shard: shard.id,
                    target,
                    sent_ack: from,
                    delivered: BTreeSet::new(),
                    unacked: 0,
                    last_ack: now,
                    last_heard: now,
                },
            );
            self.sub_index.insert(wire, key);
        }
        self.subscriptions.insert(
            key,
            SubState {
                color,
                streams,
                ready: Vec::new(),
                dead: None,
            },
        );
        Ok(Subscription(key))
    }

    /// [`FlexLogClient::subscribe_push_from`] from the beginning of the log.
    pub fn subscribe_push(&mut self, color: ColorId) -> Result<Subscription, ClientError> {
        self.subscribe_push_from(color, SeqNum::ZERO)
    }

    /// Waits up to `wait` for pushed records on `sub` and returns whatever
    /// arrived (possibly empty). Records are in per-stream SN order; acks
    /// flow back automatically. Returns [`ClientError::UnknownColor`] once
    /// the color is dropped — the subscription is then closed.
    pub fn poll_subscription(
        &mut self,
        sub: Subscription,
        wait: Duration,
    ) -> Result<Vec<CommittedRecord>, ClientError> {
        let deadline = Instant::now() + wait;
        loop {
            {
                let Some(state) = self.subscriptions.get_mut(&sub.0) else {
                    return Err(ClientError::Disconnected); // unknown handle
                };
                if let Some(e) = state.dead {
                    return Err(e); // terminal; unsubscribe() cleans up
                }
                if !state.ready.is_empty() {
                    return Ok(std::mem::take(&mut state.ready));
                }
            }
            self.reattach_silent_streams(sub.0);
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            let mut burst: Vec<(NodeId, ClusterMsg)> = Vec::new();
            match self.ep.recv_batch(deadline - now, 256, &mut burst) {
                Ok(_) => {
                    for (from, msg) in burst.drain(..) {
                        match msg {
                            ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }) => {
                                self.note_push(from, sub, color, records);
                            }
                            ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }) => {
                                self.note_redirect(from, sub, color, reason);
                            }
                            ClusterMsg::Data(DataMsg::AppendAck { token, last_sn }) => {
                                self.note_stray_ack(from, token, last_sn);
                            }
                            ClusterMsg::Data(DataMsg::Rejected { token, reason }) => {
                                self.note_reject(from, token, reason);
                            }
                            _ => {}
                        }
                    }
                }
                Err(RecvError::Timeout) => return Ok(Vec::new()),
                Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Closes a push subscription: cancels every stream server-side.
    pub fn unsubscribe(&mut self, sub: Subscription) {
        self.close_subscription(sub.0, true);
    }

    fn close_subscription(&mut self, key: u64, cancel: bool) {
        let Some(state) = self.subscriptions.remove(&key) else {
            return;
        };
        for (wire, stream) in state.streams {
            self.sub_index.remove(&wire);
            if cancel {
                let _ = self
                    .ep
                    .send(stream.target, DataMsg::SubCancel { sub: wire }.into());
            }
        }
    }

    /// Re-registers every stream of `key` whose server went silent past
    /// [`ClientConfig::sub_silence`] (crashed, partitioned, or the original
    /// registration was lost): resolve a fresh read target for the color
    /// and resume from the acked cursor. Re-pushed records dedup.
    fn reattach_silent_streams(&mut self, key: u64) {
        let Some(state) = self.subscriptions.get_mut(&key) else {
            return;
        };
        let color = state.color;
        let now = Instant::now();
        let mut attach: Vec<(u64, NodeId, SeqNum)> = Vec::new();
        for (&wire, stream) in state.streams.iter_mut() {
            if now.saturating_duration_since(stream.last_heard) < self.config.sub_silence {
                continue;
            }
            let shard_info = self
                .topology
                .shard(stream.shard)
                .filter(|s| {
                    self.topology
                        .shards_of(color)
                        .iter()
                        .any(|cs| cs.id == s.id)
                })
                .or_else(|| self.topology.random_shard_of(color, &mut self.rng));
            let Some(info) = shard_info else {
                state.dead = Some(ClientError::UnknownColor(color));
                return;
            };
            stream.shard = info.id;
            stream.target = info.random_read_target(&mut self.rng);
            stream.last_heard = now; // back off one silence window
            attach.push((wire, stream.target, stream.sent_ack));
        }
        for (wire, target, from) in attach {
            let _ = self.ep.send(
                target,
                DataMsg::SubscribeFrom {
                    color,
                    from,
                    sub: wire,
                    reply_to: self.ep.id(),
                }
                .into(),
            );
        }
    }

    /// Routes one pushed batch to its stream: dedup against the acked
    /// floor and the delivered window, queue the fresh records, lazily ack.
    /// The sender becomes the stream's server of record — that is how a
    /// migration destination that adopted the cursor takes over.
    fn note_push(
        &mut self,
        from: NodeId,
        wire: u64,
        _color: ColorId,
        records: Vec<CommittedRecord>,
    ) {
        let Some(&key) = self.sub_index.get(&wire) else {
            // Unknown stream (unsubscribed, or state lost): stop the flow.
            let _ = self.ep.send(from, DataMsg::SubCancel { sub: wire }.into());
            return;
        };
        let Some(state) = self.subscriptions.get_mut(&key) else {
            return;
        };
        let Some(stream) = state.streams.get_mut(&wire) else {
            return;
        };
        stream.last_heard = Instant::now();
        stream.target = from;
        for r in records {
            if r.sn <= stream.sent_ack || !stream.delivered.insert(r.sn) {
                continue; // duplicate (handoff/re-attach re-push)
            }
            stream.unacked += 1;
            state.ready.push(r);
        }
        // Lazy ack: the acked cursor is what survives crash re-attach and
        // migration handoff; trailing it slightly keeps the server-side
        // late-fill window open.
        let due = stream.unacked >= self.config.sub_ack_every
            || (stream.unacked > 0
                && stream.last_ack.elapsed() >= self.config.sub_ack_interval);
        if due {
            if let Some(&upto) = stream.delivered.iter().next_back() {
                stream.sent_ack = upto;
                stream.delivered.clear();
                stream.unacked = 0;
                stream.last_ack = Instant::now();
                let _ = self
                    .ep
                    .send(stream.target, DataMsg::SubAck { sub: wire, upto }.into());
            }
        }
    }

    /// Handles a server-initiated redirect: `Dropped` kills the
    /// subscription terminally; `ColorMoved`/`Frozen` re-resolves the
    /// topology and re-registers from the acked cursor — unless a new
    /// server (the migration destination) already took the stream over.
    fn note_redirect(&mut self, from: NodeId, wire: u64, color: ColorId, reason: RejectReason) {
        let Some(&key) = self.sub_index.get(&wire) else {
            return;
        };
        let Some(state) = self.subscriptions.get_mut(&key) else {
            return;
        };
        if reason == RejectReason::Dropped {
            state.dead = Some(ClientError::UnknownColor(color));
            return;
        }
        let Some(stream) = state.streams.get_mut(&wire) else {
            return;
        };
        if stream.target != from {
            // The cursor handoff already re-homed this stream; the old
            // server's redirect is stale.
            return;
        }
        let covered: HashSet<ShardId> = state
            .streams
            .iter()
            .filter(|(&w, _)| w != wire)
            .map(|(_, s)| s.shard)
            .collect();
        let shards = self.topology.shards_of(color);
        let Some(info) = shards
            .iter()
            .find(|s| !covered.contains(&s.id))
            .or(shards.first())
        else {
            state.dead = Some(ClientError::UnknownColor(color));
            return;
        };
        let Some(stream) = state.streams.get_mut(&wire) else {
            return;
        };
        stream.shard = info.id;
        stream.target = info.random_read_target(&mut self.rng);
        stream.last_heard = Instant::now();
        let target = stream.target;
        let sent_ack = stream.sent_ack;
        let _ = self.ep.send(
            target,
            DataMsg::SubscribeFrom {
                color,
                from: sent_ack,
                sub: wire,
                reply_to: self.ep.id(),
            }
            .into(),
        );
    }

    /// Deletes all records of `color` with SN ≤ `up_to`; returns the
    /// remaining `[head, tail]` span (Table 2 `Trim(SN, c)`).
    pub fn trim(
        &mut self,
        color: ColorId,
        up_to: SeqNum,
    ) -> Result<(Option<SeqNum>, Option<SeqNum>), ClientError> {
        let shards = self.topology.shards_of(color);
        if shards.is_empty() {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        let mut backoff = Backoff::from_config(&self.config);
        let all_replicas: Vec<NodeId> = shards
            .iter()
            .flat_map(|s| s.replicas.iter().copied())
            .collect();
        loop {
            let req = self.next_req();
            for &t in &all_replicas {
                let _ = self
                    .ep
                    .send(t, DataMsg::Trim { color, up_to, req }.into());
            }
            let mut acked: HashSet<NodeId> = HashSet::new();
            let mut span = (None, None);
            let retry_at = Instant::now() + backoff.next_wait(&mut self.rng);
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(retry_at.saturating_duration_since(Instant::now())) {
                    Ok((from, ClusterMsg::Data(DataMsg::TrimAck { req: r, head, tail })))
                        if r == req =>
                    {
                        acked.insert(from);
                        merge_span(&mut span, head, tail);
                        if acked.len() == all_replicas.len() {
                            return Ok(span);
                        }
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }))) => {
                        self.note_push(from, sub, color, records);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }))) => {
                        self.note_redirect(from, sub, color, reason);
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// Atomically appends multiple record sets to multiple colors
    /// (Algorithm 2): either every set eventually commits in its target
    /// color, or none does.
    pub fn multi_append(
        &mut self,
        sets: &[(ColorId, Vec<Payload>)],
    ) -> Result<(), ClientError> {
        // Validate targets first so a typo'd color cannot half-commit.
        for (color, _) in sets {
            if !self.topology.knows_color(*color) {
                return Err(ClientError::UnknownColor(*color));
            }
        }
        let broker = self
            .topology
            .random_shard_of(ColorId::MASTER, &mut self.rng)
            .ok_or(ClientError::UnknownColor(ColorId::MASTER))?;
        // Phase 1: stage every set in the special color on ONE shard
        // (Algorithm 2, lines 3–4). These are ordinary appends carrying the
        // target color inside the payload.
        for (color, payloads) in sets {
            let token = self.next_token();
            let staged = Payload::from(encode_multi_set(*color, payloads));
            self.append_to_shard(ColorId::MASTER, token, broker.id, &broker.replicas, &[staged])?;
        }
        // Phase 2: broadcast the end marker; any single ack completes the
        // operation (Algorithm 2, lines 5–6) — the replicas drive the rest.
        let deadline = Instant::now() + self.config.deadline;
        let mut backoff = Backoff::from_config(&self.config);
        loop {
            let req = self.next_req();
            let _ = self.ep.broadcast(
                &broker.replicas,
                DataMsg::MultiEnd {
                    fid: self.config.fid,
                    req,
                    reply_to: self.ep.id(),
                }
                .into(),
            );
            let retry_at = Instant::now() + backoff.next_wait(&mut self.rng);
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(retry_at.saturating_duration_since(Instant::now())) {
                    Ok((_, ClusterMsg::Data(DataMsg::MultiAck { req: r }))) if r == req => {
                        return Ok(());
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubPushBatch { sub, color, records }))) => {
                        self.note_push(from, sub, color, records);
                    }
                    Ok((from, ClusterMsg::Data(DataMsg::SubRedirect { sub, color, reason }))) => {
                        self.note_redirect(from, sub, color, reason);
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// The topology view (for `AddColor` flows owned by the core crate).
    pub fn topology(&self) -> &TopologyView {
        &self.topology
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use flexlog_types::Epoch;

    fn sn(c: u32) -> SeqNum {
        SeqNum::new(Epoch(1), c)
    }

    #[test]
    fn merge_span_takes_min_head_max_tail() {
        let mut span = (None, None);
        merge_span(&mut span, Some(sn(5)), Some(sn(9)));
        assert_eq!(span, (Some(sn(5)), Some(sn(9))));
        // A replica that still holds an older record lowers the head.
        merge_span(&mut span, Some(sn(3)), Some(sn(7)));
        assert_eq!(span, (Some(sn(3)), Some(sn(9))));
        // A newer tail raises the tail but never the head.
        merge_span(&mut span, Some(sn(6)), Some(sn(12)));
        assert_eq!(span, (Some(sn(3)), Some(sn(12))));
    }

    #[test]
    fn merge_span_empty_replica_does_not_mask_survivors() {
        // First replica reports empty, second holds records: the span is
        // the second's. (The old `max(head)` merge got this wrong — `None`
        // from an empty replica must not win, and neither must a larger
        // head from a replica that trimmed more.)
        let mut span = (None, None);
        merge_span(&mut span, None, None);
        merge_span(&mut span, Some(sn(4)), Some(sn(8)));
        assert_eq!(span, (Some(sn(4)), Some(sn(8))));
        // And the reverse order behaves identically.
        let mut span = (None, None);
        merge_span(&mut span, Some(sn(4)), Some(sn(8)));
        merge_span(&mut span, None, None);
        assert_eq!(span, (Some(sn(4)), Some(sn(8))));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(350), 0.0);
        assert_eq!(b.next_wait(&mut rng), Duration::from_millis(100));
        assert_eq!(b.next_wait(&mut rng), Duration::from_millis(200));
        assert_eq!(b.next_wait(&mut rng), Duration::from_millis(350));
        assert_eq!(b.next_wait(&mut rng), Duration::from_millis(350));
    }

    #[test]
    fn backoff_jitter_bounded_and_deterministic() {
        let base = Duration::from_millis(100);
        let mut a = Backoff::new(base, Duration::from_secs(2), 0.25);
        let mut b = Backoff::new(base, Duration::from_secs(2), 0.25);
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut expected_base = base;
        for _ in 0..6 {
            let wa = a.next_wait(&mut rng_a);
            let wb = b.next_wait(&mut rng_b);
            assert_eq!(wa, wb, "same seed, same backoff schedule");
            assert!(wa >= expected_base, "jitter only lengthens: {wa:?}");
            assert!(
                wa <= expected_base.mul_f64(1.25),
                "jitter bounded by fraction: {wa:?} vs {expected_base:?}"
            );
            expected_base = (expected_base * 2).min(Duration::from_secs(2));
        }
    }
}
