//! Client-side implementation of the FlexLog-API protocols (Table 2).
//!
//! A client is typically a serverless function. It talks directly to the
//! replicas of shards (§5.1): appends broadcast to every replica of one
//! random shard of the color and complete when **all** replicas ack
//! (Algorithm 1); reads contact one random replica of each shard and take
//! the first non-⊥ answer; trims touch every replica of every shard. All
//! operations are idempotent (token/request ids), so timeouts simply
//! retransmit.

use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_types::{ColorId, CommittedRecord, FunctionId, SeqNum, Token};

use crate::msg::{ClusterMsg, DataMsg};
use crate::replica::encode_multi_set;
use crate::TopologyView;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Distinct id of this function/client (token namespace).
    pub fid: FunctionId,
    /// Retransmit period for in-flight operations.
    pub retry: Duration,
    /// Overall per-operation deadline.
    pub deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            fid: FunctionId(1),
            retry: Duration::from_millis(250),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Errors surfaced to applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The color has no shards (never added).
    UnknownColor(ColorId),
    /// The operation did not complete within the deadline (crashed shard,
    /// blocked appends during recovery, …).
    Timeout,
    /// The client's endpoint is gone.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::UnknownColor(c) => write!(f, "color {c} has no shards"),
            ClientError::Timeout => write!(f, "operation timed out"),
            ClientError::Disconnected => write!(f, "client endpoint disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

/// See module docs.
pub struct FlexLogClient {
    ep: Endpoint<ClusterMsg>,
    topology: TopologyView,
    config: ClientConfig,
    token_counter: u32,
    req_counter: u64,
    rng: StdRng,
}

impl FlexLogClient {
    pub fn new(ep: Endpoint<ClusterMsg>, topology: TopologyView, config: ClientConfig) -> Self {
        let seed = ep.id().0 ^ 0x5EED;
        FlexLogClient {
            ep,
            topology,
            config,
            token_counter: 0,
            req_counter: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// This client's function id.
    pub fn fid(&self) -> FunctionId {
        self.config.fid
    }

    /// The underlying endpoint id.
    pub fn node_id(&self) -> NodeId {
        self.ep.id()
    }

    fn next_token(&mut self) -> Token {
        self.token_counter += 1;
        Token::new(self.config.fid, self.token_counter)
    }

    fn next_req(&mut self) -> u64 {
        self.req_counter += 1;
        // Namespace by fid so concurrent clients never collide.
        ((self.config.fid.0 as u64) << 32) | self.req_counter
    }

    /// Appends `payloads` to the log of color `color`; returns the SN of the
    /// last record (Table 2 `Append(r[], c)`).
    pub fn append(&mut self, color: ColorId, payloads: &[Vec<u8>]) -> Result<SeqNum, ClientError> {
        let shard = self
            .topology
            .random_shard_of(color, &mut self.rng)
            .ok_or(ClientError::UnknownColor(color))?;
        let token = self.next_token();
        self.append_to_shard(color, token, &shard.replicas, payloads)
    }

    /// The append protocol against a fixed replica set (used by
    /// multi-append, which must keep all sets on one shard).
    fn append_to_shard(
        &mut self,
        color: ColorId,
        token: Token,
        replicas: &[NodeId],
        payloads: &[Vec<u8>],
    ) -> Result<SeqNum, ClientError> {
        let msg: ClusterMsg = DataMsg::Append {
            color,
            token,
            payloads: payloads.to_vec(),
            reply_to: self.ep.id(),
        }
        .into();
        let deadline = Instant::now() + self.config.deadline;
        let mut acked: HashSet<NodeId> = HashSet::new();
        #[allow(unused_assignments)]
        let mut last_sn: Option<SeqNum> = None;
        loop {
            let _ = self.ep.broadcast(replicas, msg.clone());
            let retry_at = Instant::now() + self.config.retry;
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(self.config.retry) {
                    Ok((from, ClusterMsg::Data(DataMsg::AppendAck { token: t, last_sn: sn })))
                        if t == token =>
                    {
                        acked.insert(from);
                        last_sn = Some(sn);
                        // Complete when *every* replica has committed
                        // (Algorithm 1, line 8) — the basis of linearizable
                        // local reads.
                        if acked.len() == replicas.len() {
                            return Ok(last_sn.expect("at least one ack"));
                        }
                    }
                    Ok(_) => {} // stale message from a previous op
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// Reads the record with sequence number `sn` from the `color` log
    /// (Table 2 `Read(SN, c)`); `None` means no record holds that SN.
    pub fn read(&mut self, color: ColorId, sn: SeqNum) -> Result<Option<Vec<u8>>, ClientError> {
        let shards = self.topology.shards_of(color);
        if shards.is_empty() {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        loop {
            let req = self.next_req();
            // One random replica of every shard (§6.1 read protocol).
            let targets: Vec<NodeId> = shards
                .iter()
                .map(|s| {
                    use rand::Rng;
                    s.replicas[self.rng.gen_range(0..s.replicas.len())]
                })
                .collect();
            for &t in &targets {
                let _ = self
                    .ep
                    .send(t, DataMsg::Read { color, sn, req }.into());
            }
            let mut answers = 0usize;
            let retry_at = Instant::now() + self.config.retry;
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(self.config.retry) {
                    Ok((_, ClusterMsg::Data(DataMsg::ReadResp { req: r, value })))
                        if r == req =>
                    {
                        if let Some(v) = value {
                            // Only one shard stores any given record.
                            return Ok(Some(v));
                        }
                        answers += 1;
                        if answers == targets.len() {
                            return Ok(None); // all shards answered ⊥
                        }
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// Returns all records of the `color` log with SN > `from`, merged
    /// across shards in SN order (Table 2 `Subscribe(c)` with an offset for
    /// incremental consumption).
    pub fn subscribe_from(
        &mut self,
        color: ColorId,
        from: SeqNum,
    ) -> Result<Vec<CommittedRecord>, ClientError> {
        let shards = self.topology.shards_of(color);
        if shards.is_empty() {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        loop {
            let req = self.next_req();
            let targets: Vec<NodeId> = shards
                .iter()
                .map(|s| {
                    use rand::Rng;
                    s.replicas[self.rng.gen_range(0..s.replicas.len())]
                })
                .collect();
            for &t in &targets {
                let _ = self
                    .ep
                    .send(t, DataMsg::Subscribe { color, from, req }.into());
            }
            let mut slices: Vec<Vec<CommittedRecord>> = Vec::new();
            let retry_at = Instant::now() + self.config.retry;
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(self.config.retry) {
                    Ok((_, ClusterMsg::Data(DataMsg::SubscribeResp { req: r, records })))
                        if r == req =>
                    {
                        slices.push(records);
                        if slices.len() == targets.len() {
                            // Reconstruct the colored log by sorting on SN
                            // (§6.2 subscribe protocol).
                            let mut all: Vec<CommittedRecord> =
                                slices.into_iter().flatten().collect();
                            all.sort_by_key(|r| r.sn);
                            all.dedup_by_key(|r| r.sn);
                            return Ok(all);
                        }
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// `Subscribe(c)`: the full current contents of the colored log.
    pub fn subscribe(&mut self, color: ColorId) -> Result<Vec<CommittedRecord>, ClientError> {
        self.subscribe_from(color, SeqNum::ZERO)
    }

    /// Deletes all records of `color` with SN ≤ `up_to`; returns the
    /// remaining `[head, tail]` span (Table 2 `Trim(SN, c)`).
    pub fn trim(
        &mut self,
        color: ColorId,
        up_to: SeqNum,
    ) -> Result<(Option<SeqNum>, Option<SeqNum>), ClientError> {
        let shards = self.topology.shards_of(color);
        if shards.is_empty() {
            return Err(ClientError::UnknownColor(color));
        }
        let deadline = Instant::now() + self.config.deadline;
        let all_replicas: Vec<NodeId> = shards
            .iter()
            .flat_map(|s| s.replicas.iter().copied())
            .collect();
        loop {
            let req = self.next_req();
            for &t in &all_replicas {
                let _ = self
                    .ep
                    .send(t, DataMsg::Trim { color, up_to, req }.into());
            }
            let mut acked: HashSet<NodeId> = HashSet::new();
            let mut span = (None, None);
            let retry_at = Instant::now() + self.config.retry;
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(self.config.retry) {
                    Ok((from, ClusterMsg::Data(DataMsg::TrimAck { req: r, head, tail })))
                        if r == req =>
                    {
                        acked.insert(from);
                        span.0 = span.0.max(head);
                        span.1 = span.1.max(tail);
                        if acked.len() == all_replicas.len() {
                            return Ok(span);
                        }
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// Atomically appends multiple record sets to multiple colors
    /// (Algorithm 2): either every set eventually commits in its target
    /// color, or none does.
    pub fn multi_append(
        &mut self,
        sets: &[(ColorId, Vec<Vec<u8>>)],
    ) -> Result<(), ClientError> {
        // Validate targets first so a typo'd color cannot half-commit.
        for (color, _) in sets {
            if !self.topology.knows_color(*color) {
                return Err(ClientError::UnknownColor(*color));
            }
        }
        let broker = self
            .topology
            .random_shard_of(ColorId::MASTER, &mut self.rng)
            .ok_or(ClientError::UnknownColor(ColorId::MASTER))?;
        // Phase 1: stage every set in the special color on ONE shard
        // (Algorithm 2, lines 3–4). These are ordinary appends carrying the
        // target color inside the payload.
        for (color, payloads) in sets {
            let token = self.next_token();
            let staged = encode_multi_set(*color, payloads);
            self.append_to_shard(ColorId::MASTER, token, &broker.replicas, &[staged])?;
        }
        // Phase 2: broadcast the end marker; any single ack completes the
        // operation (Algorithm 2, lines 5–6) — the replicas drive the rest.
        let deadline = Instant::now() + self.config.deadline;
        loop {
            let req = self.next_req();
            let _ = self.ep.broadcast(
                &broker.replicas,
                DataMsg::MultiEnd {
                    fid: self.config.fid,
                    req,
                    reply_to: self.ep.id(),
                }
                .into(),
            );
            let retry_at = Instant::now() + self.config.retry;
            while Instant::now() < retry_at {
                match self.ep.recv_timeout(self.config.retry) {
                    Ok((_, ClusterMsg::Data(DataMsg::MultiAck { req: r }))) if r == req => {
                        return Ok(());
                    }
                    Ok(_) => {}
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Disconnected) => return Err(ClientError::Disconnected),
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
    }

    /// The topology view (for `AddColor` flows owned by the core crate).
    pub fn topology(&self) -> &TopologyView {
        &self.topology
    }
}
