//! The simulated object store.
//!
//! Models the semantics the archiver depends on and nothing more:
//!
//! * `put` is **atomic and durable on return** — there are no partial
//!   objects and no fsync step. A put that returns an error left no trace.
//! * Objects are **immutable** — the archiver never overwrites a segment
//!   with different bytes (re-uploading identical bytes after a crash is
//!   fine and idempotent).
//! * `list` is prefix-ordered, which combined with the hex-padded key
//!   scheme gives SN-ordered segment enumeration for free.
//!
//! Fault injection mirrors real object-store failure modes: a full outage
//! (every op fails until healed — the regional-endpoint-down case) and
//! fail-next-N-puts (transient write errors that must not be mistaken for
//! durability). Both are driven by the chaos harness.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use flexlog_pm::DeviceClock;
use parking_lot::Mutex;

/// Errors an object store can return. All of them are transient from the
/// caller's perspective: retrying after the fault clears is always legal
/// because puts are atomic and idempotent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store (or the path to it) is down; nothing was written.
    Unavailable,
    /// The object exists but failed its integrity check on decode.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Unavailable => write!(f, "object store unavailable"),
            StoreError::Corrupt(what) => write!(f, "corrupt object: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Immutable-blob storage. Implementations must be cheap to share
/// (`Arc<dyn ObjectStore>` rides inside every replica's storage config) and
/// safe under concurrent access from all replicas of a shard.
pub trait ObjectStore: Send + Sync + fmt::Debug {
    /// Stores `data` under `key`, atomically. Durable on return.
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Fetches the object at `key` (`None` if absent).
    fn get(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError>;
    /// All keys starting with `prefix`, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError>;
    /// Removes the object at `key` (absent keys are a no-op).
    fn delete(&self, key: &str) -> Result<(), StoreError>;
}

/// Per-op latency in nanoseconds, charged on the caller's [`DeviceClock`].
/// The defaults model a same-region object store: ~ms-scale ops, far above
/// the µs-scale SSD — which is exactly the gap the tiering benchmark
/// measures.
#[derive(Clone, Copy, Debug)]
pub struct StoreLatencyModel {
    pub put_ns: u64,
    pub get_ns: u64,
    pub list_ns: u64,
    pub delete_ns: u64,
    /// Streaming cost per KiB transferred, on top of the per-op base.
    pub per_kib_ns: u64,
}

impl StoreLatencyModel {
    /// Same-region object storage: ~2 ms put, ~1 ms get first-byte.
    pub fn object_storage() -> Self {
        StoreLatencyModel {
            put_ns: 2_000_000,
            get_ns: 1_000_000,
            list_ns: 800_000,
            delete_ns: 600_000,
            per_kib_ns: 10_000,
        }
    }

    /// Free ops (unit tests that only care about semantics).
    pub fn zero() -> Self {
        StoreLatencyModel {
            put_ns: 0,
            get_ns: 0,
            list_ns: 0,
            delete_ns: 0,
            per_kib_ns: 0,
        }
    }
}

impl Default for StoreLatencyModel {
    fn default() -> Self {
        StoreLatencyModel::object_storage()
    }
}

/// Operation counters, mirrored into the metrics registry by the storage
/// layer. Plain atomics so the store stays dependency-free.
#[derive(Debug, Default)]
pub struct StoreStats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub lists: AtomicU64,
    pub deletes: AtomicU64,
    pub bytes_put: AtomicU64,
    pub bytes_get: AtomicU64,
    /// Ops rejected by an outage or injected put failure.
    pub faulted_ops: AtomicU64,
}

/// The in-memory simulated object store. One instance is shared by every
/// replica of a cluster (it models the remote service, not a device), so it
/// is never crash()ed when a node power-fails — archived history survives
/// anything short of deleting the objects.
pub struct SimObjectStore {
    objects: Mutex<BTreeMap<String, Arc<[u8]>>>,
    clock: DeviceClock,
    latency: StoreLatencyModel,
    /// Full outage: every op fails until healed.
    outage: AtomicBool,
    /// The next N puts fail (after charging latency), leaving no trace.
    fail_puts: AtomicU64,
    stats: StoreStats,
}

impl fmt::Debug for SimObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimObjectStore")
            .field("objects", &self.objects.lock().len())
            .field("outage", &self.outage.load(Ordering::Relaxed))
            .finish()
    }
}

impl SimObjectStore {
    pub fn new(clock: DeviceClock) -> Self {
        SimObjectStore {
            objects: Mutex::new(BTreeMap::new()),
            clock,
            latency: StoreLatencyModel::default(),
            outage: AtomicBool::new(false),
            fail_puts: AtomicU64::new(0),
            stats: StoreStats::default(),
        }
    }

    pub fn with_latency(clock: DeviceClock, latency: StoreLatencyModel) -> Self {
        SimObjectStore {
            latency,
            ..SimObjectStore::new(clock)
        }
    }

    /// Starts or ends a full outage (nemesis: `ObjectStoreOutage` / `Heal`).
    pub fn set_outage(&self, down: bool) {
        self.outage.store(down, Ordering::SeqCst);
    }

    pub fn outage(&self) -> bool {
        self.outage.load(Ordering::SeqCst)
    }

    /// Arms the next `n` puts to fail with [`StoreError::Unavailable`]
    /// *without* persisting anything — the transient-write-error case the
    /// archive boundary must not run ahead of.
    pub fn fail_next_puts(&self, n: u64) {
        self.fail_puts.store(n, Ordering::SeqCst);
    }

    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Number of stored objects (tests / benchmarks).
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// Total stored bytes (tests / benchmarks).
    pub fn stored_bytes(&self) -> u64 {
        self.objects.lock().values().map(|v| v.len() as u64).sum()
    }

    fn charge(&self, base_ns: u64, bytes: usize) {
        let streaming = (bytes as u64).div_ceil(1024) * self.latency.per_kib_ns;
        self.clock.consume(base_ns + streaming);
    }

    fn check_up(&self) -> Result<(), StoreError> {
        if self.outage.load(Ordering::SeqCst) {
            self.stats.faulted_ops.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Unavailable);
        }
        Ok(())
    }
}

impl ObjectStore for SimObjectStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StoreError> {
        self.charge(self.latency.put_ns, data.len());
        self.check_up()?;
        // Injected transient failure: latency was paid, nothing was stored.
        let mut armed = self.fail_puts.load(Ordering::SeqCst);
        while armed > 0 {
            match self.fail_puts.compare_exchange(
                armed,
                armed - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.stats.faulted_ops.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Unavailable);
                }
                Err(now) => armed = now,
            }
        }
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_put
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.objects.lock().insert(key.to_string(), Arc::from(data));
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        let found = self.objects.lock().get(key).cloned();
        self.charge(
            self.latency.get_ns,
            found.as_ref().map_or(0, |d| d.len()),
        );
        self.check_up()?;
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &found {
            self.stats
                .bytes_get
                .fetch_add(d.len() as u64, Ordering::Relaxed);
        }
        Ok(found)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        self.charge(self.latency.list_ns, 0);
        self.check_up()?;
        self.stats.lists.fetch_add(1, Ordering::Relaxed);
        let objects = self.objects.lock();
        Ok(objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, key: &str) -> Result<(), StoreError> {
        self.charge(self.latency.delete_ns, 0);
        self.check_up()?;
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.objects.lock().remove(key);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SimObjectStore {
        SimObjectStore::with_latency(DeviceClock::default(), StoreLatencyModel::zero())
    }

    #[test]
    fn put_get_roundtrip_and_list_order() {
        let s = store();
        s.put("seg/1/b", b"bb").unwrap();
        s.put("seg/1/a", b"aa").unwrap();
        s.put("seg/2/a", b"zz").unwrap();
        assert_eq!(s.get("seg/1/a").unwrap().unwrap().as_ref(), b"aa");
        assert_eq!(s.get("seg/1/missing").unwrap(), None);
        assert_eq!(s.list("seg/1/").unwrap(), vec!["seg/1/a", "seg/1/b"]);
        assert_eq!(s.list("seg/").unwrap().len(), 3);
        s.delete("seg/1/a").unwrap();
        assert_eq!(s.get("seg/1/a").unwrap(), None);
        s.delete("seg/1/a").unwrap(); // absent delete is a no-op
    }

    #[test]
    fn outage_fails_every_op_until_healed() {
        let s = store();
        s.put("k", b"v").unwrap();
        s.set_outage(true);
        assert_eq!(s.put("k2", b"v"), Err(StoreError::Unavailable));
        assert_eq!(s.get("k"), Err(StoreError::Unavailable));
        assert_eq!(s.list(""), Err(StoreError::Unavailable));
        assert_eq!(s.delete("k"), Err(StoreError::Unavailable));
        s.set_outage(false);
        assert_eq!(s.get("k").unwrap().unwrap().as_ref(), b"v");
        assert_eq!(s.get("k2").unwrap(), None, "failed put left no trace");
        assert!(s.stats().faulted_ops.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn fail_next_puts_leaves_no_trace_then_recovers() {
        let s = store();
        s.fail_next_puts(2);
        assert_eq!(s.put("a", b"1"), Err(StoreError::Unavailable));
        assert_eq!(s.put("b", b"2"), Err(StoreError::Unavailable));
        s.put("c", b"3").unwrap();
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.get("b").unwrap(), None);
        assert_eq!(s.get("c").unwrap().unwrap().as_ref(), b"3");
    }

    #[test]
    fn puts_are_idempotent_overwrites() {
        let s = store();
        s.put("k", b"same").unwrap();
        s.put("k", b"same").unwrap();
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.stored_bytes(), 4);
    }
}
