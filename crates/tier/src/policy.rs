//! The declarative tiering policy.
//!
//! Replaces the storage server's ad-hoc "spill when PM crosses a watermark"
//! heuristic with something an operator can read, diff, and reason about: a
//! list of rules, each a conjunction of [`TierCondition`]s guarding one
//! [`TierAction`]. The control plane evaluates the policy against per-color
//! [`ColorObservation`]s (sampled from the shared metrics registry and the
//! replicas' color-status probes) and turns matches into [`TierMove`] plans
//! the archiver executes.
//!
//! Grammar (one rule per line, `#` comments, first matching rule per color
//! wins):
//!
//! ```text
//! rule   := "when" cond ( "&&" cond )* "then" action
//! cond   := "pm_pressure" ">" FLOAT        # pm_live_bytes / pm_capacity
//!         | "span" ">=" INT                # live (PM+SSD) records of the color
//!         | "ssd_resident" ">=" INT        # records already demoted to SSD
//!         | "idle_ms" ">=" INT             # since the color was last read *or* appended
//!         | "age_ms" ">=" INT              # since the color was last appended
//! action := "archive" [ "keep=" INT ] [ "max=" INT ]   # seal+upload, then drop
//!         | "demote"  [ "max=" INT ]                   # PM -> SSD, stay live
//! ```
//!
//! Example — the shipped default ([`TieringPolicy::recommended`]):
//!
//! ```text
//! # Under PM pressure, push any sizable cold span down to the archive.
//! when pm_pressure > 0.5 && age_ms >= 50 && span >= 256 then archive keep=64 max=4096
//! # Long-idle colors drain to the archive even without pressure.
//! when idle_ms >= 1000 && span >= 128 then archive keep=32 max=4096
//! # Appended-but-unread colors get demoted out of PM early.
//! when age_ms >= 200 && span >= 64 then demote max=1024
//! ```

use std::fmt;
use std::time::Duration;

use flexlog_types::ColorId;

/// One measurable predicate over a color's observed state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TierCondition {
    /// `pm_live_bytes / pm_capacity` on the hosting shard exceeds this.
    PmPressureAbove(f64),
    /// The color holds at least this many live (PM+SSD) records.
    SpanAtLeast(u64),
    /// At least this many of the color's records already sit on SSD.
    SsdResidentAtLeast(u64),
    /// No read or append for at least this long.
    IdleFor(Duration),
    /// No append for at least this long (reads don't reset it).
    AgeAtLeast(Duration),
}

impl TierCondition {
    pub fn matches(&self, obs: &ColorObservation) -> bool {
        match *self {
            TierCondition::PmPressureAbove(r) => obs.pm_pressure > r,
            TierCondition::SpanAtLeast(n) => obs.live_records >= n,
            TierCondition::SsdResidentAtLeast(n) => obs.ssd_resident >= n,
            TierCondition::IdleFor(d) => obs.idle >= d,
            TierCondition::AgeAtLeast(d) => obs.age >= d,
        }
    }
}

impl fmt::Display for TierCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierCondition::PmPressureAbove(r) => write!(f, "pm_pressure > {r}"),
            TierCondition::SpanAtLeast(n) => write!(f, "span >= {n}"),
            TierCondition::SsdResidentAtLeast(n) => write!(f, "ssd_resident >= {n}"),
            TierCondition::IdleFor(d) => write!(f, "idle_ms >= {}", d.as_millis()),
            TierCondition::AgeAtLeast(d) => write!(f, "age_ms >= {}", d.as_millis()),
        }
    }
}

/// What to do with a color whose conditions all match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierAction {
    /// Seal the cold prefix into segments, upload, then release PM/SSD
    /// bytes — keeping the newest `keep_tail` records hot and moving at
    /// most `max_records` per round.
    Archive { keep_tail: u64, max_records: u64 },
    /// Copy at most `max_records` of the color's oldest PM-resident
    /// records down to SSD (they stay live and readable).
    Demote { max_records: u64 },
}

impl fmt::Display for TierAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierAction::Archive {
                keep_tail,
                max_records,
            } => write!(f, "archive keep={keep_tail} max={max_records}"),
            TierAction::Demote { max_records } => write!(f, "demote max={max_records}"),
        }
    }
}

/// `when <conds…> then <action>`.
#[derive(Clone, Debug, PartialEq)]
pub struct TierRule {
    pub when: Vec<TierCondition>,
    pub action: TierAction,
}

impl fmt::Display for TierRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "when ")?;
        for (i, c) in self.when.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " then {}", self.action)
    }
}

/// What the control plane knows about one color when it evaluates the
/// policy. Rates and clocks come from the shared metrics registry
/// (`seq.color_sns.*` diffs, `storage.color_reads.*`), residency from the
/// replicas' color-status probes.
#[derive(Clone, Copy, Debug)]
pub struct ColorObservation {
    pub color: ColorId,
    /// Live (PM + SSD) records the color holds on its shard.
    pub live_records: u64,
    /// How many of those are already SSD-resident.
    pub ssd_resident: u64,
    /// `pm_live_bytes / pm_capacity` of the hosting shard.
    pub pm_pressure: f64,
    /// Time since the color was last read or appended.
    pub idle: Duration,
    /// Time since the color was last appended.
    pub age: Duration,
}

/// One planned move, ready for the archiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierMove {
    pub color: ColorId,
    pub action: TierAction,
}

/// Parse failure: line number (1-based) and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

/// An ordered rule list; the first matching rule per color wins.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TieringPolicy {
    pub rules: Vec<TierRule>,
}

impl TieringPolicy {
    /// The shipped default (see the module docs for the source text).
    pub fn recommended() -> Self {
        TieringPolicy {
            rules: vec![
                TierRule {
                    when: vec![
                        TierCondition::PmPressureAbove(0.5),
                        TierCondition::AgeAtLeast(Duration::from_millis(50)),
                        TierCondition::SpanAtLeast(256),
                    ],
                    action: TierAction::Archive {
                        keep_tail: 64,
                        max_records: 4096,
                    },
                },
                TierRule {
                    when: vec![
                        TierCondition::IdleFor(Duration::from_millis(1000)),
                        TierCondition::SpanAtLeast(128),
                    ],
                    action: TierAction::Archive {
                        keep_tail: 32,
                        max_records: 4096,
                    },
                },
                TierRule {
                    when: vec![
                        TierCondition::AgeAtLeast(Duration::from_millis(200)),
                        TierCondition::SpanAtLeast(64),
                    ],
                    action: TierAction::Demote { max_records: 1024 },
                },
            ],
        }
    }

    /// Parses the policy grammar (module docs). Empty input is a valid
    /// policy that never moves anything.
    pub fn parse(text: &str) -> Result<Self, PolicyParseError> {
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            rules.push(parse_rule(line).map_err(|message| PolicyParseError {
                line: idx + 1,
                message,
            })?);
        }
        Ok(TieringPolicy { rules })
    }

    /// Evaluates every observation; at most one move per color (first
    /// matching rule wins).
    pub fn evaluate(&self, observations: &[ColorObservation]) -> Vec<TierMove> {
        let mut moves = Vec::new();
        for obs in observations {
            for rule in &self.rules {
                if rule.when.iter().all(|c| c.matches(obs)) {
                    moves.push(TierMove {
                        color: obs.color,
                        action: rule.action,
                    });
                    break;
                }
            }
        }
        moves
    }
}

impl fmt::Display for TieringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

fn parse_rule(line: &str) -> Result<TierRule, String> {
    let rest = line
        .strip_prefix("when")
        .ok_or_else(|| "rule must start with 'when'".to_string())?;
    let (conds, action) = rest
        .split_once("then")
        .ok_or_else(|| "missing 'then'".to_string())?;
    let when: Vec<TierCondition> = conds
        .split("&&")
        .map(|c| parse_condition(c.trim()))
        .collect::<Result<_, _>>()?;
    if when.is_empty() {
        return Err("at least one condition required".to_string());
    }
    Ok(TierRule {
        when,
        action: parse_action(action.trim())?,
    })
}

fn parse_condition(cond: &str) -> Result<TierCondition, String> {
    let mut parts = cond.split_whitespace();
    let (field, op, value) = (
        parts.next().ok_or("empty condition")?,
        parts.next().ok_or_else(|| format!("condition '{cond}': missing operator"))?,
        parts.next().ok_or_else(|| format!("condition '{cond}': missing value"))?,
    );
    if parts.next().is_some() {
        return Err(format!("condition '{cond}': trailing tokens"));
    }
    let int = |v: &str| {
        v.parse::<u64>()
            .map_err(|_| format!("condition '{cond}': '{v}' is not an integer"))
    };
    match (field, op) {
        ("pm_pressure", ">") => value
            .parse::<f64>()
            .map(TierCondition::PmPressureAbove)
            .map_err(|_| format!("condition '{cond}': '{value}' is not a number")),
        ("span", ">=") => int(value).map(TierCondition::SpanAtLeast),
        ("ssd_resident", ">=") => int(value).map(TierCondition::SsdResidentAtLeast),
        ("idle_ms", ">=") => int(value)
            .map(|ms| TierCondition::IdleFor(Duration::from_millis(ms))),
        ("age_ms", ">=") => int(value)
            .map(|ms| TierCondition::AgeAtLeast(Duration::from_millis(ms))),
        _ => Err(format!(
            "condition '{cond}': unknown field/operator '{field} {op}'"
        )),
    }
}

fn parse_action(action: &str) -> Result<TierAction, String> {
    let mut parts = action.split_whitespace();
    let verb = parts.next().ok_or("missing action")?;
    let mut keep_tail = 0u64;
    let mut max_records = u64::MAX;
    for p in parts {
        if let Some(v) = p.strip_prefix("keep=") {
            keep_tail = v
                .parse()
                .map_err(|_| format!("action '{action}': bad keep= value"))?;
        } else if let Some(v) = p.strip_prefix("max=") {
            max_records = v
                .parse()
                .map_err(|_| format!("action '{action}': bad max= value"))?;
        } else {
            return Err(format!("action '{action}': unknown token '{p}'"));
        }
    }
    match verb {
        "archive" => Ok(TierAction::Archive {
            keep_tail,
            max_records,
        }),
        "demote" => Ok(TierAction::Demote { max_records }),
        _ => Err(format!("unknown action '{verb}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(color: u32) -> ColorObservation {
        ColorObservation {
            color: ColorId(color),
            live_records: 0,
            ssd_resident: 0,
            pm_pressure: 0.0,
            idle: Duration::ZERO,
            age: Duration::ZERO,
        }
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let text = "\
# push cold spans down
when pm_pressure > 0.5 && age_ms >= 50 && span >= 256 then archive keep=64 max=4096
when idle_ms >= 1000 && span >= 128 then archive keep=32 max=4096
when age_ms >= 200 && span >= 64 then demote max=1024
";
        let policy = TieringPolicy::parse(text).unwrap();
        assert_eq!(policy, TieringPolicy::recommended());
        let reparsed = TieringPolicy::parse(&policy.to_string()).unwrap();
        assert_eq!(reparsed, policy);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = TieringPolicy::parse("when span >= 10 then archive\nwhat now").unwrap_err();
        assert_eq!(err.line, 2);
        let err = TieringPolicy::parse("when span > 10 then archive").unwrap_err();
        assert!(err.message.contains("unknown field/operator"), "{err}");
        let err = TieringPolicy::parse("when span >= 10 then shred").unwrap_err();
        assert!(err.message.contains("unknown action"), "{err}");
        let err = TieringPolicy::parse("when then archive").unwrap_err();
        assert!(err.message.contains("empty condition"), "{err}");
    }

    #[test]
    fn first_matching_rule_wins_and_conditions_are_anded() {
        let policy = TieringPolicy::parse(
            "when span >= 100 && idle_ms >= 50 then archive keep=8\n\
             when span >= 100 then demote max=16\n",
        )
        .unwrap();

        let mut hot = obs(1);
        hot.live_records = 200;
        hot.idle = Duration::from_millis(10); // fails rule 1, matches rule 2
        let mut cold = obs(2);
        cold.live_records = 200;
        cold.idle = Duration::from_millis(80); // matches rule 1
        let small = obs(3); // matches nothing

        let moves = policy.evaluate(&[hot, cold, small]);
        assert_eq!(
            moves,
            vec![
                TierMove {
                    color: ColorId(1),
                    action: TierAction::Demote { max_records: 16 },
                },
                TierMove {
                    color: ColorId(2),
                    action: TierAction::Archive {
                        keep_tail: 8,
                        max_records: u64::MAX,
                    },
                },
            ]
        );
    }

    #[test]
    fn pm_pressure_is_strict_greater() {
        let policy = TieringPolicy::parse("when pm_pressure > 0.5 then demote").unwrap();
        let mut at = obs(1);
        at.pm_pressure = 0.5;
        assert!(policy.evaluate(&[at]).is_empty());
        at.pm_pressure = 0.51;
        assert_eq!(policy.evaluate(&[at]).len(), 1);
    }

    #[test]
    fn empty_policy_moves_nothing() {
        let policy = TieringPolicy::parse("# only comments\n\n").unwrap();
        let mut o = obs(1);
        o.live_records = u64::MAX;
        o.pm_pressure = 1.0;
        o.idle = Duration::from_secs(3600);
        o.age = Duration::from_secs(3600);
        assert!(policy.evaluate(&[o]).is_empty());
    }
}
