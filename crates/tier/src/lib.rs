//! # flexlog-tier
//!
//! The cold storage tier below the SSD: a simulated **object store** holding
//! immutable, checksummed archive segments, plus the **declarative tiering
//! policy** that decides what moves down and when.
//!
//! The storage hierarchy this completes (coldest last):
//!
//! ```text
//! DRAM cache  →  PM log  →  SSD spill  →  object store (this crate)
//! ```
//!
//! Three pieces:
//!
//! * [`ObjectStore`] — put/get/list/delete of immutable blobs, modelled on a
//!   cloud object store: durable on `put` return, no partial writes, no
//!   rename. [`SimObjectStore`] is the in-memory implementation with a
//!   [`DeviceClock`]-driven latency model and chaos-harness fault injection
//!   (full outage, fail-next-N-puts).
//! * [`Segment`] — the archive unit: one color, an SN range, the record
//!   payloads, a CRC32 over the whole blob. Keys are self-describing
//!   (`seg/<color>/<base>-<last>`, hex-padded so lexicographic order is SN
//!   order), so the per-color [`Manifest`] can always be rebuilt from
//!   `list()` alone; the persisted manifest object is just a fast path.
//! * [`TieringPolicy`] — composable conditions (PM pressure, span length,
//!   idle time, SSD residency) compiled into [`TierMove`] plans. The control
//!   plane evaluates it against per-color observations and actuates the
//!   moves through the archiver on each replica; see the policy grammar in
//!   [`TieringPolicy::parse`].
//!
//! The archiver itself (sealing spans into segments, the read-through probe)
//! lives in `flexlog-storage`: it owns the bytes. This crate owns the store,
//! the wire format, and the policy.

mod policy;
mod segment;
mod store;

pub use policy::{
    ColorObservation, PolicyParseError, TierAction, TierCondition, TierMove, TierRule,
    TieringPolicy,
};
pub use segment::{
    color_prefix, fetch_segment, manifest_key, parse_segment_key, segment_key, Manifest,
    Segment, SegmentMeta,
};
pub use store::{ObjectStore, SimObjectStore, StoreError, StoreLatencyModel, StoreStats};
