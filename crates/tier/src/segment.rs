//! Archive segments: the immutable unit of cold storage.
//!
//! A segment holds one color's records over a closed SN range
//! `[base, last]`, in SN order, framed and checksummed:
//!
//! ```text
//! "FSG1"  color:u32  count:u32  base:u64  last:u64
//! count × ( sn:u64  len:u32  payload )
//! crc32 over everything above
//! ```
//!
//! (All integers little-endian.) The range is *closed over what exists* —
//! holes are legal in a FlexLog log after sequencer fail-over, so `count`
//! can be smaller than `last - base + 1`; each record carries its own SN.
//!
//! The key scheme makes objects self-describing:
//! `seg/<color>/<base:016x>-<last:016x>` — hex-padded so that a prefix
//! `list()` returns segments in SN order, which is how the [`Manifest`] can
//! always be rebuilt from the store alone. The persisted manifest object
//! (`manifest/<color>`) is only a fast path; it is rewritten after every
//! archive round and both writers produce identical bytes for identical
//! boundaries, so concurrent replicas racing the same round are harmless.

use flexlog_pm::crc32;
use flexlog_types::{ColorId, CommittedRecord, Payload, SeqNum};

use crate::store::{ObjectStore, StoreError};

const SEG_MAGIC: &[u8; 4] = b"FSG1";
const MANIFEST_MAGIC: &[u8; 4] = b"FMN1";

/// Object key for the segment of `color` covering `[base, last]`.
pub fn segment_key(color: ColorId, base: SeqNum, last: SeqNum) -> String {
    format!("seg/{}/{:016x}-{:016x}", color.0, base.0, last.0)
}

/// Key prefix under which all of `color`'s segments live.
pub fn color_prefix(color: ColorId) -> String {
    format!("seg/{}/", color.0)
}

/// Key of `color`'s persisted manifest object.
pub fn manifest_key(color: ColorId) -> String {
    format!("manifest/{}", color.0)
}

/// Parses a segment key back into `(color, base, last)`.
pub fn parse_segment_key(key: &str) -> Option<(ColorId, SeqNum, SeqNum)> {
    let rest = key.strip_prefix("seg/")?;
    let (color, range) = rest.split_once('/')?;
    let (base, last) = range.split_once('-')?;
    Some((
        ColorId(color.parse().ok()?),
        SeqNum(u64::from_str_radix(base, 16).ok()?),
        SeqNum(u64::from_str_radix(last, 16).ok()?),
    ))
}

/// One sealed archive segment (decoded form).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    pub color: ColorId,
    pub base: SeqNum,
    pub last: SeqNum,
    /// SN-ascending; SNs may have gaps (holes are legal).
    pub records: Vec<CommittedRecord>,
}

impl Segment {
    /// Seals `records` (non-empty, SN-ascending) into a segment.
    pub fn seal(color: ColorId, records: Vec<CommittedRecord>) -> Segment {
        assert!(!records.is_empty(), "cannot seal an empty segment");
        debug_assert!(records.windows(2).all(|w| w[0].sn < w[1].sn));
        Segment {
            color,
            base: records[0].sn,
            last: records[records.len() - 1].sn,
            records,
        }
    }

    pub fn key(&self) -> String {
        segment_key(self.color, self.base, self.last)
    }

    pub fn meta(&self) -> SegmentMeta {
        SegmentMeta {
            base: self.base,
            last: self.last,
            records: self.records.len() as u32,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let payload_bytes: usize = self.records.iter().map(|r| r.payload.len()).sum();
        let mut buf = Vec::with_capacity(28 + self.records.len() * 12 + payload_bytes);
        buf.extend_from_slice(SEG_MAGIC);
        buf.extend_from_slice(&self.color.0.to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.base.0.to_le_bytes());
        buf.extend_from_slice(&self.last.0.to_le_bytes());
        for r in &self.records {
            buf.extend_from_slice(&r.sn.0.to_le_bytes());
            buf.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(r.payload.as_slice());
        }
        buf.extend_from_slice(&crc32(&buf).to_le_bytes());
        buf
    }

    pub fn decode(data: &[u8]) -> Result<Segment, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("segment: {what}"));
        if data.len() < 32 || &data[0..4] != SEG_MAGIC {
            return Err(corrupt("bad magic or truncated header"));
        }
        let body = &data[..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("crc mismatch"));
        }
        let color = ColorId(u32::from_le_bytes(data[4..8].try_into().unwrap()));
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        let base = SeqNum(u64::from_le_bytes(data[12..20].try_into().unwrap()));
        let last = SeqNum(u64::from_le_bytes(data[20..28].try_into().unwrap()));
        let mut records = Vec::with_capacity(count);
        let mut at = 28usize;
        for _ in 0..count {
            if body.len() < at + 12 {
                return Err(corrupt("truncated record header"));
            }
            let sn = SeqNum(u64::from_le_bytes(body[at..at + 8].try_into().unwrap()));
            let len =
                u32::from_le_bytes(body[at + 8..at + 12].try_into().unwrap()) as usize;
            at += 12;
            if body.len() < at + len {
                return Err(corrupt("truncated record payload"));
            }
            records.push(CommittedRecord {
                sn,
                payload: Payload::copy_from_slice(&body[at..at + len]),
            });
            at += len;
        }
        if at != body.len() {
            return Err(corrupt("trailing garbage"));
        }
        if records.is_empty()
            || records[0].sn != base
            || records[records.len() - 1].sn != last
        {
            return Err(corrupt("range header disagrees with records"));
        }
        Ok(Segment {
            color,
            base,
            last,
            records,
        })
    }
}

/// A segment's entry in the manifest: where it is and what it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    pub base: SeqNum,
    pub last: SeqNum,
    /// Record count (0 = unknown, e.g. rebuilt from keys alone).
    pub records: u32,
}

impl SegmentMeta {
    pub fn key(&self, color: ColorId) -> String {
        segment_key(color, self.base, self.last)
    }
}

/// The per-color index of archived segments, SN-ascending and
/// non-overlapping. Source of truth is the store itself (keys are
/// self-describing); the persisted form is a cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Loads `color`'s manifest: the persisted object when present and
    /// intact, otherwise rebuilt from a prefix listing (after a crash
    /// between segment upload and manifest rewrite, the listing is ahead of
    /// the persisted copy — the listing wins).
    pub fn load(store: &dyn ObjectStore, color: ColorId) -> Result<Manifest, StoreError> {
        let listed = Manifest::from_listing(store, color)?;
        if let Some(data) = store.get(&manifest_key(color))? {
            if let Ok(m) = Manifest::decode(&data) {
                if m.segments.len() >= listed.segments.len() {
                    return Ok(m);
                }
            }
        }
        Ok(listed)
    }

    /// Rebuilds the manifest purely from stored keys.
    pub fn from_listing(
        store: &dyn ObjectStore,
        color: ColorId,
    ) -> Result<Manifest, StoreError> {
        let mut segments: Vec<SegmentMeta> = store
            .list(&color_prefix(color))?
            .iter()
            .filter_map(|k| parse_segment_key(k))
            .map(|(_, base, last)| SegmentMeta {
                base,
                last,
                records: 0,
            })
            .collect();
        segments.sort_by_key(|s| s.base);
        Ok(Manifest { segments })
    }

    /// Persists this manifest as `color`'s fast-path object.
    pub fn store(&self, store: &dyn ObjectStore, color: ColorId) -> Result<(), StoreError> {
        store.put(&manifest_key(color), &self.encode(color))
    }

    /// Appends a newly sealed segment (must extend the covered range).
    pub fn push(&mut self, meta: SegmentMeta) {
        debug_assert!(self
            .segments
            .last()
            .is_none_or(|prev| prev.last < meta.base));
        self.segments.push(meta);
    }

    /// The segment whose range contains `sn`, if any.
    pub fn segment_for(&self, sn: SeqNum) -> Option<&SegmentMeta> {
        let idx = self.segments.partition_point(|s| s.last < sn);
        self.segments.get(idx).filter(|s| s.base <= sn)
    }

    /// Highest archived SN (None when nothing is archived).
    pub fn archived_up_to(&self) -> Option<SeqNum> {
        self.segments.last().map(|s| s.last)
    }

    fn encode(&self, color: ColorId) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12 + self.segments.len() * 20 + 4);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&color.0.to_le_bytes());
        buf.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            buf.extend_from_slice(&s.base.0.to_le_bytes());
            buf.extend_from_slice(&s.last.0.to_le_bytes());
            buf.extend_from_slice(&s.records.to_le_bytes());
        }
        buf.extend_from_slice(&crc32(&buf).to_le_bytes());
        buf
    }

    fn decode(data: &[u8]) -> Result<Manifest, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("manifest: {what}"));
        if data.len() < 16 || &data[0..4] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic or truncated"));
        }
        let body = &data[..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt("crc mismatch"));
        }
        let count = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
        if body.len() != 12 + count * 20 {
            return Err(corrupt("length disagrees with count"));
        }
        let mut segments = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 20;
            segments.push(SegmentMeta {
                base: SeqNum(u64::from_le_bytes(body[at..at + 8].try_into().unwrap())),
                last: SeqNum(u64::from_le_bytes(
                    body[at + 8..at + 16].try_into().unwrap(),
                )),
                records: u32::from_le_bytes(body[at + 16..at + 20].try_into().unwrap()),
            });
        }
        Ok(Manifest { segments })
    }
}

/// Fetches and decodes the segment at `meta` for `color`.
pub fn fetch_segment(
    store: &dyn ObjectStore,
    color: ColorId,
    meta: &SegmentMeta,
) -> Result<Option<Segment>, StoreError> {
    let Some(data) = store.get(&meta.key(color))? else {
        return Ok(None);
    };
    Segment::decode(&data).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SimObjectStore, StoreLatencyModel};
    use flexlog_pm::DeviceClock;
    use flexlog_types::Epoch;

    fn rec(sn: u64, byte: u8) -> CommittedRecord {
        CommittedRecord {
            sn: SeqNum(sn),
            payload: Payload::from(vec![byte; 3]),
        }
    }

    fn store() -> SimObjectStore {
        SimObjectStore::with_latency(DeviceClock::default(), StoreLatencyModel::zero())
    }

    #[test]
    fn segment_roundtrip_with_holes() {
        let seg = Segment::seal(ColorId(7), vec![rec(3, 1), rec(4, 2), rec(9, 3)]);
        assert_eq!(seg.base, SeqNum(3));
        assert_eq!(seg.last, SeqNum(9));
        let back = Segment::decode(&seg.encode()).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn segment_detects_corruption() {
        let seg = Segment::seal(ColorId(1), vec![rec(1, 0xAA)]);
        let mut bytes = seg.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Segment::decode(&bytes),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            Segment::decode(&bytes[..bytes.len() - 1]),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(Segment::decode(b"nope"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn key_scheme_roundtrips_and_sorts_by_sn() {
        let sn = |e: u32, c: u32| SeqNum::new(Epoch(e), c);
        let color = ColorId(12);
        let k1 = segment_key(color, sn(0, 1), sn(0, 255));
        let k2 = segment_key(color, sn(0, 256), sn(1, 2));
        assert!(k1 < k2, "hex padding must sort by SN: {k1} vs {k2}");
        assert_eq!(
            parse_segment_key(&k1),
            Some((color, sn(0, 1), sn(0, 255)))
        );
        assert_eq!(parse_segment_key("seg/x/zz"), None);
        assert_eq!(parse_segment_key("other/12/0-1"), None);
    }

    #[test]
    fn manifest_roundtrip_lookup_and_listing_fallback() {
        let s = store();
        let color = ColorId(3);
        let mut m = Manifest::default();
        m.push(SegmentMeta {
            base: SeqNum(1),
            last: SeqNum(10),
            records: 10,
        });
        m.push(SegmentMeta {
            base: SeqNum(11),
            last: SeqNum(25),
            records: 15,
        });
        // Upload the matching segments so the listing agrees.
        for meta in &m.segments {
            s.put(&meta.key(color), b"placeholder").unwrap();
        }
        m.store(&s, color).unwrap();
        let loaded = Manifest::load(&s, color).unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.segment_for(SeqNum(10)).unwrap().base, SeqNum(1));
        assert_eq!(loaded.segment_for(SeqNum(11)).unwrap().base, SeqNum(11));
        assert_eq!(loaded.segment_for(SeqNum(26)), None);
        assert_eq!(loaded.archived_up_to(), Some(SeqNum(25)));

        // A third segment uploaded without a manifest rewrite (crash window):
        // load() must pick up the listing, not the stale manifest.
        s.put(&segment_key(color, SeqNum(26), SeqNum(30)), b"x").unwrap();
        let reloaded = Manifest::load(&s, color).unwrap();
        assert_eq!(reloaded.segments.len(), 3);
        assert_eq!(reloaded.archived_up_to(), Some(SeqNum(30)));
    }

    #[test]
    fn manifest_for_unknown_color_is_empty() {
        let s = store();
        let m = Manifest::load(&s, ColorId(99)).unwrap();
        assert!(m.segments.is_empty());
        assert_eq!(m.archived_up_to(), None);
    }
}
