use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

use crate::network::Inner;
use crate::{NodeId, RecvError, SendError};

/// A node's attachment to the simulated network: an inbox plus the ability
/// to send to any registered peer.
///
/// Endpoints are `Send` and are normally owned by the thread running that
/// node's protocol loop.
pub struct Endpoint<M: Send + 'static> {
    id: NodeId,
    rx: Receiver<(NodeId, M)>,
    net: Arc<Inner<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    pub(crate) fn new(id: NodeId, rx: Receiver<(NodeId, M)>, net: Arc<Inner<M>>) -> Self {
        Endpoint { id, rx, net }
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` to `to` over the reliable FIFO link. Returns immediately;
    /// delivery happens after the link delay. See [`SendError`] for the
    /// (rare) hard failure cases.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), SendError> {
        self.net.send(self.id, to, msg)
    }

    /// Sends a clone of `msg` to every node in `peers` (the paper's
    /// broadcast primitive, §4). Unknown peers are reported in the result
    /// but do not stop the remaining sends. The final peer receives `msg`
    /// itself — an N-peer broadcast performs N-1 clones, so cheaply-clonable
    /// messages (refcounted payloads) make the whole fan-out zero-copy.
    pub fn broadcast(&self, peers: &[NodeId], msg: M) -> Result<(), SendError>
    where
        M: Clone,
    {
        let mut first_err = None;
        let serialize = self.net.link.serialize;
        let mut msg = Some(msg);
        let last = peers.len().saturating_sub(1);
        for (i, &p) in peers.iter().enumerate() {
            let extra = serialize * i as u32;
            let m = if i == last {
                msg.take().expect("moved only once, on the last peer")
            } else {
                msg.as_ref().expect("present until the last peer").clone()
            };
            if let Err(e) = self.net.send_with_extra(self.id, p, m, extra) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Blocks until a message arrives.
    pub fn recv(&self) -> Result<(NodeId, M), RecvError> {
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Blocks until a message arrives or `timeout` elapses. Timeouts are how
    /// nodes detect failures (message delay > Δ, §4).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Blocks until at least one message arrives (or `timeout` elapses),
    /// then drains up to `max` queued messages into `out` under a single
    /// inbox lock acquisition, preserving arrival order. Returns how many
    /// were appended. This is the consumption half of the batched data
    /// plane: node run loops wake once per burst instead of once per
    /// message.
    pub fn recv_batch(
        &self,
        timeout: Duration,
        max: usize,
        out: &mut Vec<(NodeId, M)>,
    ) -> Result<usize, RecvError> {
        self.rx
            .recv_batch_timeout(timeout, max, out)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => RecvError::Timeout,
                RecvTimeoutError::Disconnected => RecvError::Disconnected,
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<(NodeId, M), RecvError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Timeout,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}
