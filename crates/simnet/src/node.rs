use std::fmt;

/// Identity of a node (replica, sequencer, backup, client, …) on the
/// simulated network.
///
/// Node ids are plain integers; the protocol crates layer meaning on top
/// (e.g. the ordering layer breaks election ties by the *highest node-id*,
/// §5.2). The [`NodeId::named`] constructor packs a small class tag into the
/// upper bits so debug output stays readable in multi-role clusters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Class tag for replica nodes.
    pub const CLASS_REPLICA: u64 = 1;
    /// Class tag for sequencer nodes.
    pub const CLASS_SEQUENCER: u64 = 2;
    /// Class tag for sequencer backup nodes.
    pub const CLASS_BACKUP: u64 = 3;
    /// Class tag for client (serverless function) nodes.
    pub const CLASS_CLIENT: u64 = 4;
    /// Class tag for read-only replica nodes (serve reads and
    /// subscriptions, never join the write quorum).
    pub const CLASS_READ_REPLICA: u64 = 5;

    /// Builds a node id from a class tag and an index within the class.
    pub fn named(class: u64, index: u64) -> Self {
        debug_assert!(class < 16, "class tag must fit in 4 bits");
        debug_assert!(index < (1 << 60), "index must fit in 60 bits");
        NodeId((class << 60) | index)
    }

    /// The class tag this id was built with (0 for raw ids).
    pub fn class(self) -> u64 {
        self.0 >> 60
    }

    /// The index within the class.
    pub fn index(self) -> u64 {
        self.0 & ((1 << 60) - 1)
    }
}

/// Maps a (src, dst) link to one of `shards` scheduler shards.
///
/// Deterministic (a pure function of the two ids, so same-seed runs home
/// every link on the same shard) and mixed through a Fibonacci-style hash
/// so consecutively numbered nodes — the common cluster layout — spread
/// evenly instead of striding.
pub(crate) fn link_shard(from: NodeId, to: NodeId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = from
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(to.0)
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    ((h >> 32) as usize) % shards
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idx = self.index();
        match self.class() {
            Self::CLASS_REPLICA => write!(f, "replica#{idx}"),
            Self::CLASS_SEQUENCER => write!(f, "seq#{idx}"),
            Self::CLASS_BACKUP => write!(f, "backup#{idx}"),
            Self::CLASS_CLIENT => write!(f, "client#{idx}"),
            Self::CLASS_READ_REPLICA => write!(f, "rreplica#{idx}"),
            _ => write!(f, "node#{}", self.0),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_roundtrip() {
        let id = NodeId::named(NodeId::CLASS_REPLICA, 42);
        assert_eq!(id.class(), NodeId::CLASS_REPLICA);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(
            format!("{:?}", NodeId::named(NodeId::CLASS_SEQUENCER, 3)),
            "seq#3"
        );
        assert_eq!(format!("{:?}", NodeId(7)), "node#7");
    }

    #[test]
    fn ordering_by_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        let a = NodeId::named(NodeId::CLASS_BACKUP, 1);
        let b = NodeId::named(NodeId::CLASS_BACKUP, 2);
        assert!(a < b);
    }
}
