use std::time::Duration;

/// Latency configuration of a network link.
///
/// The paper's testbed is a 10 Gbps datacenter interconnect; §9.3 measures an
/// order-request latency of ≈110 µs dominated by the RTT, so the default
/// one-way delay is 25 µs with a small jitter. Tests that want determinism
/// use [`LinkConfig::instant`] (zero delay, zero jitter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Fixed one-way propagation delay.
    pub delay: Duration,
    /// Uniform jitter added on top of `delay` (0..=jitter).
    pub jitter: Duration,
    /// Sender-side serialization cost per message: the i-th message of a
    /// broadcast leaves the NIC `i * serialize` later (models wire
    /// serialization of replicated appends; relevant to Fig 8's
    /// replication-factor experiment).
    pub serialize: Duration,
}

impl LinkConfig {
    /// A link with no delay at all; messages are handed to the destination
    /// inbox synchronously. Deterministic, used by most unit tests.
    pub fn instant() -> Self {
        LinkConfig {
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            serialize: Duration::ZERO,
        }
    }

    /// Datacenter-class link modelled after the paper's 10 Gbps testbed:
    /// 25 µs one-way delay, 5 µs jitter (≈50–60 µs RTT).
    pub fn datacenter() -> Self {
        LinkConfig {
            delay: Duration::from_micros(25),
            jitter: Duration::from_micros(5),
            serialize: Duration::from_micros(2),
        }
    }

    /// A deliberately slow link (used to provoke the Δ-timeout paths of the
    /// failure detectors).
    pub fn slow(delay: Duration) -> Self {
        LinkConfig {
            delay,
            jitter: Duration::ZERO,
            serialize: Duration::ZERO,
        }
    }

    /// True when messages can bypass the delay scheduler entirely.
    pub(crate) fn is_instant(&self) -> bool {
        self.delay.is_zero() && self.jitter.is_zero()
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::instant()
    }
}

/// Default scheduler shard count for delayed links (see
/// [`NetConfig::scheduler_shards`]).
pub(crate) const DEFAULT_SCHEDULER_SHARDS: usize = 4;

/// Whole-network configuration.
#[derive(Clone, Debug, Default)]
pub struct NetConfig {
    /// Default link characteristics for every (src, dst) pair.
    pub link: LinkConfig,
    /// Seed for the jitter RNG; `None` seeds from entropy.
    pub seed: Option<u64>,
    /// Number of delay-scheduler shards: each (src, dst) link hashes to one
    /// shard, which owns the link's heap position, FIFO clamp and jitter
    /// RNG. `0` means "auto" (currently 4). Ignored on instant links,
    /// which bypass the scheduler entirely.
    pub scheduler_shards: usize,
}

impl NetConfig {
    /// Deterministic, zero-latency network (unit tests).
    pub fn instant() -> Self {
        NetConfig {
            link: LinkConfig::instant(),
            seed: Some(0),
            scheduler_shards: 0,
        }
    }

    /// Datacenter-class network with a fixed seed for reproducible jitter.
    pub fn datacenter() -> Self {
        NetConfig {
            link: LinkConfig::datacenter(),
            seed: Some(0x0F1E_7106),
            scheduler_shards: 0,
        }
    }

    /// Overrides the scheduler shard count (builder style).
    pub fn with_scheduler_shards(mut self, shards: usize) -> Self {
        self.scheduler_shards = shards;
        self
    }

    /// The effective scheduler shard count (resolves the `0` = auto
    /// default).
    pub(crate) fn shards(&self) -> usize {
        if self.scheduler_shards == 0 {
            DEFAULT_SCHEDULER_SHARDS
        } else {
            self.scheduler_shards
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_instant() {
        assert!(LinkConfig::instant().is_instant());
        assert!(!LinkConfig::datacenter().is_instant());
        assert!(!LinkConfig::slow(Duration::from_millis(1)).is_instant());
    }

    #[test]
    fn default_is_instant() {
        assert_eq!(LinkConfig::default(), LinkConfig::instant());
    }
}
