use std::fmt;

use crate::NodeId;

/// Error returned by send operations.
///
/// Sends never block and never fail for transient reasons: a message to a
/// crashed or partitioned-away node is silently dropped, mirroring how a
/// datagram to a dead TCP peer disappears and is only noticed via timeouts.
/// The only hard error is addressing a node that was never registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Destination node id was never registered on this network.
    UnknownNode(NodeId),
    /// The sending endpoint itself has been crashed.
    SelfCrashed,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownNode(id) => write!(f, "unknown destination node {id}"),
            SendError::SelfCrashed => write!(f, "sending endpoint has crashed"),
        }
    }
}

impl std::error::Error for SendError {}

/// Error returned by receive operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the requested timeout.
    Timeout,
    /// The endpoint has been crashed (or the network dropped); no further
    /// messages will ever arrive.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "endpoint disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}
