use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::NodeId;

/// An item scheduled for future delivery.
pub(crate) struct Scheduled<T> {
    pub deliver_at: Instant,
    /// Tie-breaker preserving insertion order for equal instants.
    pub seq: u64,
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    shutdown: bool,
    /// Last scheduled delivery instant per (src, dst) link homed on this
    /// shard, keeping links FIFO despite jitter. A link always hashes to
    /// exactly one shard, so shard-local clamps are equivalent to the old
    /// global map.
    clamp: HashMap<(NodeId, NodeId), Instant>,
    /// Jitter RNG for links homed on this shard (drawn under the same lock
    /// acquisition that pushes the envelope).
    rng: StdRng,
    /// Last clamp-prune pass (see [`DelayQueue::run`]).
    last_prune: Instant,
}

/// Clamp entries whose instant is already in the past are dead weight —
/// any later send on that link schedules at `now + delay`, which is
/// necessarily later. Prune them periodically so long chaos runs with
/// churned node ids do not leak map entries forever.
const CLAMP_PRUNE_INTERVAL: Duration = Duration::from_millis(100);

/// One shard of the delay scheduler: a time-ordered delivery queue serviced
/// by a dedicated thread.
///
/// The network hashes each (src, dst) link to one shard; a shard owns the
/// heap, the per-link FIFO clamps, and the jitter RNG for its links, all
/// behind a single mutex, so scheduling a message is exactly one lock
/// acquisition. The service thread drains **all** due items per pass under
/// one lock acquisition and hands them to the delivery callback as a batch.
/// Equal instants are delivered in push order, which (together with the
/// clamped per-link delivery times) guarantees per-link FIFO.
pub(crate) struct DelayQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T: Send + 'static> DelayQueue<T> {
    #[cfg(test)]
    pub fn new() -> Arc<Self> {
        Self::with_seed(0)
    }

    /// Creates a shard whose jitter RNG is seeded with `seed` (each shard
    /// of a network gets a distinct, deterministic seed).
    pub fn with_seed(seed: u64) -> Arc<Self> {
        Arc::new(DelayQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
                clamp: HashMap::new(),
                rng: StdRng::seed_from_u64(seed),
                last_prune: Instant::now(),
            }),
            cond: Condvar::new(),
        })
    }

    /// Schedules `item` for delivery at `deliver_at` (raw path, no clamp).
    #[cfg(test)]
    pub fn push(&self, deliver_at: Instant, item: T) {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Scheduled {
            deliver_at,
            seq,
            item,
        });
        drop(st);
        self.cond.notify_one();
    }

    /// Schedules `item` on `link` after `base` plus a jitter draw in
    /// `0..=jitter`, clamped so the link stays FIFO — jitter draw, clamp
    /// lookup/update and heap push all happen under ONE lock acquisition.
    /// Returns the scheduled one-way latency (base + jitter, pre-clamp),
    /// which is the link model's intent for the delay metric.
    pub fn schedule(
        &self,
        link: (NodeId, NodeId),
        base: Duration,
        jitter: Duration,
        item: T,
    ) -> Duration {
        let mut st = self.state.lock();
        let jitter_ns = if jitter.is_zero() {
            0
        } else {
            st.rng.gen_range(0..=jitter.as_nanos() as u64)
        };
        let scheduled = base + Duration::from_nanos(jitter_ns);
        let mut deliver_at = Instant::now() + scheduled;
        let slot = st.clamp.entry(link).or_insert(deliver_at);
        if *slot > deliver_at {
            deliver_at = *slot;
        } else {
            *slot = deliver_at;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Scheduled {
            deliver_at,
            seq,
            item,
        });
        drop(st);
        self.cond.notify_one();
        scheduled
    }

    /// Stops the service loop; items still queued are dropped.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cond.notify_all();
    }

    /// Runs the delivery loop until shutdown. Each pass drains every due
    /// item under one lock acquisition into `due` (in delivery order) and
    /// invokes `deliver` with the batch outside the lock; the callback
    /// consumes the vector. Intended to run on a dedicated thread.
    pub fn run(self: Arc<Self>, mut deliver: impl FnMut(&mut Vec<T>)) {
        let mut due: Vec<T> = Vec::new();
        loop {
            {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    while st
                        .heap
                        .peek()
                        .is_some_and(|top| top.deliver_at <= now)
                    {
                        due.push(st.heap.pop().expect("peeked item present").item);
                    }
                    if !due.is_empty() {
                        if now.duration_since(st.last_prune) >= CLAMP_PRUNE_INTERVAL {
                            st.clamp.retain(|_, &mut at| at > now);
                            st.last_prune = now;
                        }
                        break;
                    }
                    match st.heap.peek() {
                        Some(top) => {
                            let wait = top.deliver_at - now;
                            if wait < Duration::from_micros(150) {
                                // Sub-150 µs waits: condvar wake-up slop
                                // would dominate the modelled link delay —
                                // yield-spin instead (deliberately trading
                                // CPU for timing fidelity).
                                drop(st);
                                std::thread::yield_now();
                                st = self.state.lock();
                            } else {
                                self.cond.wait_for(&mut st, wait);
                            }
                        }
                        None => {
                            self.cond.wait(&mut st);
                        }
                    }
                }
            }
            deliver(&mut due);
            due.clear();
        }
    }

    /// Number of live per-link clamp entries (test hook for the pruning
    /// behaviour).
    #[cfg(test)]
    pub fn clamp_len(&self) -> usize {
        self.state.lock().clamp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn run_to_channel(
        q: &Arc<DelayQueue<u32>>,
    ) -> (
        crossbeam::channel::Receiver<u32>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let q2 = Arc::clone(q);
        let handle = std::thread::spawn(move || {
            q2.run(move |batch: &mut Vec<u32>| {
                for v in batch.drain(..) {
                    tx.send(v).unwrap();
                }
            })
        });
        (rx, handle)
    }

    #[test]
    fn delivers_in_time_order() {
        let q = DelayQueue::new();
        let (rx, handle) = run_to_channel(&q);

        let now = Instant::now();
        q.push(now + Duration::from_millis(30), 3);
        q.push(now + Duration::from_millis(10), 1);
        q.push(now + Duration::from_millis(20), 2);

        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 3);

        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn equal_instants_preserve_push_order() {
        let q = DelayQueue::new();
        let (rx, handle) = run_to_channel(&q);

        let at = Instant::now() + Duration::from_millis(5);
        for i in 0..100 {
            q.push(at, i);
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn schedule_clamps_links_fifo_and_prunes_dead_clamps() {
        let q = DelayQueue::with_seed(99);
        let (rx, handle) = run_to_channel(&q);

        // Huge jitter vs tiny base delay: without the clamp these would
        // reorder almost surely.
        let link = (NodeId(1), NodeId(2));
        for i in 0..200 {
            q.schedule(link, Duration::from_micros(10), Duration::from_millis(2), i);
        }
        for i in 0..200 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), i);
        }
        assert_eq!(q.clamp_len(), 1);
        // After the prune interval passes, the next delivery pass drops the
        // stale clamp entry.
        std::thread::sleep(CLAMP_PRUNE_INTERVAL + Duration::from_millis(20));
        q.schedule(
            (NodeId(3), NodeId(4)),
            Duration::from_micros(10),
            Duration::ZERO,
            999,
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 999);
        std::thread::sleep(CLAMP_PRUNE_INTERVAL + Duration::from_millis(20));
        q.schedule(
            (NodeId(3), NodeId(4)),
            Duration::from_micros(10),
            Duration::ZERO,
            1000,
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1000);
        assert!(
            q.clamp_len() <= 1,
            "stale clamps survived pruning: {}",
            q.clamp_len()
        );
        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn due_items_drain_as_one_batch() {
        let q = DelayQueue::new();
        let (batch_tx, batch_rx) = crossbeam::channel::unbounded();
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            q2.run(move |batch: &mut Vec<u32>| {
                batch_tx.send(std::mem::take(batch)).unwrap();
            })
        });
        // All due at the same past-adjacent instant: one pass must pick up
        // the lot in a single callback.
        let at = Instant::now() + Duration::from_millis(20);
        for i in 0..50 {
            q.push(at, i);
        }
        let first = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            first.len() > 1,
            "expected a batched drain, got {} item(s)",
            first.len()
        );
        let mut got = first;
        while got.len() < 50 {
            got.extend(batch_rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_stops_loop() {
        let q: Arc<DelayQueue<u32>> = DelayQueue::new();
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.run(|_| {}));
        q.push(Instant::now() + Duration::from_secs(60), 9);
        q.shutdown();
        handle.join().unwrap();
    }
}
