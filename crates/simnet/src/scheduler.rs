use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// An item scheduled for future delivery.
pub(crate) struct Scheduled<T> {
    pub deliver_at: Instant,
    /// Tie-breaker preserving insertion order for equal instants.
    pub seq: u64,
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    shutdown: bool,
}

/// A time-ordered delivery queue serviced by a dedicated thread.
///
/// The network's delayed messages are pushed here; the service thread pops
/// them when their delivery instant is due and hands them to the delivery
/// callback. Equal instants are delivered in push order, which (together
/// with the per-link monotonic delivery times computed by the network)
/// guarantees per-link FIFO.
pub(crate) struct DelayQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T: Send + 'static> DelayQueue<T> {
    pub fn new() -> Arc<Self> {
        Arc::new(DelayQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Schedules `item` for delivery at `deliver_at`.
    pub fn push(&self, deliver_at: Instant, item: T) {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Scheduled {
            deliver_at,
            seq,
            item,
        });
        drop(st);
        self.cond.notify_one();
    }

    /// Stops the service loop; items still queued are dropped.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cond.notify_all();
    }

    /// Runs the delivery loop until shutdown, invoking `deliver` for each due
    /// item. Intended to run on a dedicated thread.
    pub fn run(self: Arc<Self>, mut deliver: impl FnMut(T)) {
        loop {
            let item = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    let now = Instant::now();
                    match st.heap.peek() {
                        Some(top) if top.deliver_at <= now => {
                            break st.heap.pop().expect("peeked item present");
                        }
                        Some(top) => {
                            let wait = top.deliver_at - now;
                            if wait < std::time::Duration::from_micros(150) {
                                // Sub-150 µs waits: condvar wake-up slop
                                // would dominate the modelled link delay —
                                // yield-spin instead (deliberately trading
                                // CPU for timing fidelity).
                                drop(st);
                                std::thread::yield_now();
                                st = self.state.lock();
                            } else {
                                self.cond.wait_for(&mut st, wait);
                            }
                        }
                        None => {
                            self.cond.wait(&mut st);
                        }
                    }
                }
            };
            deliver(item.item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn delivers_in_time_order() {
        let q = DelayQueue::new();
        let (tx, rx) = crossbeam::channel::unbounded();
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.run(move |v: u32| tx.send(v).unwrap()));

        let now = Instant::now();
        q.push(now + Duration::from_millis(30), 3);
        q.push(now + Duration::from_millis(10), 1);
        q.push(now + Duration::from_millis(20), 2);

        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 3);

        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn equal_instants_preserve_push_order() {
        let q = DelayQueue::new();
        let (tx, rx) = crossbeam::channel::unbounded();
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.run(move |v: u32| tx.send(v).unwrap()));

        let at = Instant::now() + Duration::from_millis(5);
        for i in 0..100 {
            q.push(at, i);
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
        q.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_stops_loop() {
        let q: Arc<DelayQueue<u32>> = DelayQueue::new();
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.run(|_| {}));
        q.push(Instant::now() + Duration::from_secs(60), 9);
        q.shutdown();
        handle.join().unwrap();
    }
}
