use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use flexlog_obs::{Counter, Histogram, ObsHandle};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::endpoint::Endpoint;
use crate::scheduler::DelayQueue;
use crate::{LinkConfig, NetConfig, NodeId, SendError};

/// A message in flight: sender, destination and payload.
pub(crate) struct Envelope<M> {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: M,
}

/// Delivery counters, useful in tests and for debugging protocol runs.
#[derive(Debug, Default)]
pub struct NetStats {
    pub sent: AtomicU64,
    pub delivered: AtomicU64,
    pub dropped_crashed: AtomicU64,
    pub dropped_partitioned: AtomicU64,
}

/// Registry handles mirroring [`NetStats`] plus the scheduled link latency
/// of every send, installed by [`Network::attach_obs`].
struct NetObs {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    /// Scheduled one-way latency (delay + jitter + serialization) per
    /// message. This is the link model's intent, not a measured wall-clock
    /// difference — the delivery thread adds scheduling noise we do not
    /// want in the metric.
    delay_hist: Histogram,
}

pub(crate) struct Inner<M> {
    pub link: LinkConfig,
    nodes: RwLock<HashMap<NodeId, Sender<(NodeId, M)>>>,
    crashed: RwLock<HashSet<NodeId>>,
    /// Partition group per node. Two nodes can communicate unless both have
    /// a group assigned and the groups differ.
    groups: RwLock<HashMap<NodeId, u32>>,
    /// Fully isolated nodes (no traffic in or out).
    isolated: RwLock<HashSet<NodeId>>,
    /// Last scheduled delivery instant per (src, dst), to keep links FIFO
    /// even with jitter.
    last_delivery: Mutex<HashMap<(NodeId, NodeId), Instant>>,
    rng: Mutex<StdRng>,
    queue: Option<Arc<DelayQueue<Envelope<M>>>>,
    pub stats: NetStats,
    obs: RwLock<Option<NetObs>>,
}

impl<M: Send + 'static> Inner<M> {
    /// True if traffic from `a` to `b` is currently allowed.
    fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let isolated = self.isolated.read();
        if isolated.contains(&a) || isolated.contains(&b) {
            return false;
        }
        let groups = self.groups.read();
        match (groups.get(&a), groups.get(&b)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => true,
        }
    }

    fn deliver(&self, env: Envelope<M>) {
        // Connectivity is re-checked at delivery time so a partition that
        // started while the message was "on the wire" still blocks it.
        if self.crashed.read().contains(&env.to) {
            self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !self.connected(env.from, env.to) {
            self.stats
                .dropped_partitioned
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let nodes = self.nodes.read();
        if let Some(tx) = nodes.get(&env.to) {
            if tx.send((env.from, env.msg)).is_ok() {
                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs.read().as_ref() {
                    o.delivered.inc();
                }
            } else {
                self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        self.send_with_extra(from, to, msg, std::time::Duration::ZERO)
    }

    /// Send with an additional sender-side delay (broadcast serialization).
    pub(crate) fn send_with_extra(
        &self,
        from: NodeId,
        to: NodeId,
        msg: M,
        extra: std::time::Duration,
    ) -> Result<(), SendError> {
        if self.crashed.read().contains(&from) {
            return Err(SendError::SelfCrashed);
        }
        if !self.nodes.read().contains_key(&to) && !self.crashed.read().contains(&to) {
            return Err(SendError::UnknownNode(to));
        }
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.read().as_ref() {
            o.sent.inc();
        }
        if !self.connected(from, to) {
            // Silently dropped, like a packet into a partition. The sender
            // only learns via its own protocol-level timeouts.
            self.stats
                .dropped_partitioned
                .fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs.read().as_ref() {
                o.dropped.inc();
            }
            return Ok(());
        }
        match &self.queue {
            None => {
                if let Some(o) = self.obs.read().as_ref() {
                    o.delay_hist.record(extra.as_nanos() as u64);
                }
                self.deliver(Envelope { from, to, msg });
            }
            Some(queue) => {
                let jitter_ns = if self.link.jitter.is_zero() {
                    0
                } else {
                    self.rng.lock().gen_range(0..=self.link.jitter.as_nanos() as u64)
                };
                let scheduled = extra
                    + self.link.delay
                    + std::time::Duration::from_nanos(jitter_ns);
                if let Some(o) = self.obs.read().as_ref() {
                    o.delay_hist.record(scheduled.as_nanos() as u64);
                }
                let mut deliver_at = Instant::now() + scheduled;
                // Clamp to keep per-link FIFO despite jitter.
                let mut last = self.last_delivery.lock();
                let slot = last.entry((from, to)).or_insert(deliver_at);
                if *slot > deliver_at {
                    deliver_at = *slot;
                } else {
                    *slot = deliver_at;
                }
                drop(last);
                queue.push(deliver_at, Envelope { from, to, msg });
            }
        }
        Ok(())
    }
}

/// Handle to a simulated network. Cloning is cheap; all clones control the
/// same network. Dropping the last [`Network`] handle shuts down the delay
/// scheduler thread (endpoints may outlive it but delayed messages stop
/// flowing — tests keep the handle alive for the duration of the run).
pub struct Network<M: Send + 'static> {
    inner: Arc<Inner<M>>,
    /// Owned by the *first* handle only.
    scheduler: Option<Arc<SchedulerGuard<M>>>,
}

struct SchedulerGuard<M: Send + 'static> {
    queue: Arc<DelayQueue<Envelope<M>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl<M: Send + 'static> Drop for SchedulerGuard<M> {
    fn drop(&mut self) {
        self.queue.shutdown();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
            scheduler: self.scheduler.clone(),
        }
    }
}

impl<M: Send + 'static> Network<M> {
    /// Creates a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        let seed = config.seed.unwrap_or_else(rand::random);
        let queue = if config.link.is_instant() {
            None
        } else {
            Some(DelayQueue::new())
        };
        let inner = Arc::new(Inner {
            link: config.link,
            nodes: RwLock::new(HashMap::new()),
            crashed: RwLock::new(HashSet::new()),
            groups: RwLock::new(HashMap::new()),
            isolated: RwLock::new(HashSet::new()),
            last_delivery: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queue: queue.clone(),
            stats: NetStats::default(),
            obs: RwLock::new(None),
        });
        let scheduler = queue.map(|q| {
            let inner2 = Arc::clone(&inner);
            let q2 = Arc::clone(&q);
            let handle = std::thread::Builder::new()
                .name("simnet-scheduler".into())
                .spawn(move || q2.run(move |env| inner2.deliver(env)))
                .expect("spawn simnet scheduler");
            Arc::new(SchedulerGuard {
                queue: q,
                handle: Mutex::new(Some(handle)),
            })
        });
        Network { inner, scheduler }
    }

    /// Zero-latency deterministic network.
    pub fn instant() -> Self {
        Network::new(NetConfig::instant())
    }

    /// Registers a node and returns its endpoint. Panics if the id is
    /// already registered and alive.
    pub fn register(&self, id: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        let mut nodes = self.inner.nodes.write();
        let prev = nodes.insert(id, tx);
        assert!(
            prev.is_none() || self.inner.crashed.read().contains(&id),
            "node {id} registered twice"
        );
        self.inner.crashed.write().remove(&id);
        drop(nodes);
        Endpoint::new(id, rx, Arc::clone(&self.inner))
    }

    /// Crashes a node: its inbox closes, in-flight and future messages to it
    /// are dropped, and its sends fail. The id can later be re-registered
    /// (crash-recovery model of §4).
    pub fn crash(&self, id: NodeId) {
        self.inner.crashed.write().insert(id);
        self.inner.nodes.write().remove(&id);
    }

    /// True if the node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.inner.crashed.read().contains(&id)
    }

    /// Splits the listed nodes into partition groups: traffic between nodes
    /// of *different* groups is dropped. Nodes not listed keep full
    /// connectivity. Overwrites any previous partition.
    pub fn partition(&self, partition_groups: &[&[NodeId]]) {
        let mut groups = self.inner.groups.write();
        groups.clear();
        for (gi, members) in partition_groups.iter().enumerate() {
            for &m in *members {
                groups.insert(m, gi as u32);
            }
        }
    }

    /// Cuts a single node off from everyone else.
    pub fn isolate(&self, id: NodeId) {
        self.inner.isolated.write().insert(id);
    }

    /// Restores full connectivity (clears partitions and isolation).
    pub fn heal(&self) {
        self.inner.groups.write().clear();
        self.inner.isolated.write().clear();
    }

    /// Mirrors delivery counters and the scheduled link latency into the
    /// given observability registry (`net.sent`, `net.delivered`,
    /// `net.dropped`, `net.delay_ns`). Call once per cluster; later calls
    /// re-point the mirrors at the new registry.
    pub fn attach_obs(&self, obs: &ObsHandle) {
        *self.inner.obs.write() = Some(NetObs {
            sent: obs.counter("net.sent"),
            delivered: obs.counter("net.delivered"),
            dropped: obs.counter("net.dropped"),
            delay_hist: obs.histogram("net.delay_ns"),
        });
    }

    /// Delivery statistics snapshot.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let s = &self.inner.stats;
        (
            s.sent.load(Ordering::Relaxed),
            s.delivered.load(Ordering::Relaxed),
            s.dropped_crashed.load(Ordering::Relaxed),
            s.dropped_partitioned.load(Ordering::Relaxed),
        )
    }
}
