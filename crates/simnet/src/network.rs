use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use flexlog_obs::{Counter, Histogram, ObsHandle};
use parking_lot::{Mutex, RwLock};

use crate::endpoint::Endpoint;
use crate::node::link_shard;
use crate::scheduler::DelayQueue;
use crate::{LinkConfig, NetConfig, NodeId, SendError};

/// A message in flight: sender, destination and payload.
pub(crate) struct Envelope<M> {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: M,
}

/// Delivery counters, useful in tests and for debugging protocol runs.
#[derive(Debug, Default)]
pub struct NetStats {
    pub sent: AtomicU64,
    pub delivered: AtomicU64,
    pub dropped_crashed: AtomicU64,
    pub dropped_partitioned: AtomicU64,
}

/// Registry handles mirroring [`NetStats`] plus the scheduled link latency
/// of every send, installed by [`Network::attach_obs`].
struct NetObs {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    /// Scheduled one-way latency (delay + jitter + serialization) per
    /// message. This is the link model's intent, not a measured wall-clock
    /// difference — the delivery thread adds scheduling noise we do not
    /// want in the metric.
    delay_hist: Histogram,
}

pub(crate) struct Inner<M> {
    pub link: LinkConfig,
    nodes: RwLock<HashMap<NodeId, Sender<(NodeId, M)>>>,
    crashed: RwLock<HashSet<NodeId>>,
    /// Partition group per node. Two nodes can communicate unless both have
    /// a group assigned and the groups differ.
    groups: RwLock<HashMap<NodeId, u32>>,
    /// Fully isolated nodes (no traffic in or out).
    isolated: RwLock<HashSet<NodeId>>,
    /// Scheduler shards; empty on an instant network. Each (src, dst) link
    /// hashes to exactly one shard, which owns that link's FIFO clamp and
    /// jitter RNG — see [`DelayQueue`].
    queues: Vec<Arc<DelayQueue<Envelope<M>>>>,
    pub stats: NetStats,
    /// Metrics mirrors. `OnceLock` so the hot send/deliver path pays one
    /// atomic load and ZERO lock acquisitions per message.
    obs: OnceLock<NetObs>,
}

/// True if traffic from `a` to `b` is allowed under the given partition
/// state (isolation set + group map).
fn connected_locked(
    isolated: &HashSet<NodeId>,
    groups: &HashMap<NodeId, u32>,
    a: NodeId,
    b: NodeId,
) -> bool {
    if a == b {
        return true;
    }
    if isolated.contains(&a) || isolated.contains(&b) {
        return false;
    }
    match (groups.get(&a), groups.get(&b)) {
        (Some(ga), Some(gb)) => ga == gb,
        _ => true,
    }
}

impl<M: Send + 'static> Inner<M> {
    /// True if traffic from `a` to `b` is currently allowed.
    fn connected(&self, a: NodeId, b: NodeId) -> bool {
        connected_locked(&self.isolated.read(), &self.groups.read(), a, b)
    }

    fn deliver(&self, env: Envelope<M>) {
        // Connectivity is re-checked at delivery time so a partition that
        // started while the message was "on the wire" still blocks it.
        if self.crashed.read().contains(&env.to) {
            self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !self.connected(env.from, env.to) {
            self.stats
                .dropped_partitioned
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let nodes = self.nodes.read();
        if let Some(tx) = nodes.get(&env.to) {
            if tx.send((env.from, env.msg)).is_ok() {
                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs.get() {
                    o.delivered.inc();
                }
            } else {
                self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.stats.dropped_crashed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Delivers a whole scheduler-pass worth of due envelopes: the crash /
    /// partition / node tables are read **once** for the batch, envelopes
    /// are grouped per destination (preserving arrival order, so per-link
    /// FIFO survives), and each destination inbox is filled with one
    /// batched push — one channel lock + one wake-up per destination
    /// instead of one per message.
    fn deliver_batch(&self, envs: &mut Vec<Envelope<M>>) {
        if envs.len() == 1 {
            let env = envs.pop().expect("len checked");
            self.deliver(env);
            return;
        }
        let crashed = self.crashed.read();
        let isolated = self.isolated.read();
        let groups = self.groups.read();
        let nodes = self.nodes.read();
        let mut by_dest: Vec<(NodeId, Vec<(NodeId, M)>)> = Vec::new();
        let mut dropped_crashed = 0u64;
        let mut dropped_partitioned = 0u64;
        for env in envs.drain(..) {
            if crashed.contains(&env.to) || !nodes.contains_key(&env.to) {
                dropped_crashed += 1;
                continue;
            }
            if !connected_locked(&isolated, &groups, env.from, env.to) {
                dropped_partitioned += 1;
                continue;
            }
            match by_dest.iter_mut().find(|(d, _)| *d == env.to) {
                Some((_, batch)) => batch.push((env.from, env.msg)),
                None => by_dest.push((env.to, vec![(env.from, env.msg)])),
            }
        }
        let mut delivered = 0u64;
        for (to, batch) in by_dest {
            let n = batch.len() as u64;
            match nodes.get(&to) {
                Some(tx) if tx.send_batch(batch).is_ok() => delivered += n,
                _ => dropped_crashed += n,
            }
        }
        if delivered > 0 {
            self.stats.delivered.fetch_add(delivered, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.delivered.add(delivered);
            }
        }
        if dropped_crashed > 0 {
            self.stats
                .dropped_crashed
                .fetch_add(dropped_crashed, Ordering::Relaxed);
        }
        if dropped_partitioned > 0 {
            self.stats
                .dropped_partitioned
                .fetch_add(dropped_partitioned, Ordering::Relaxed);
        }
    }

    pub(crate) fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), SendError> {
        self.send_with_extra(from, to, msg, std::time::Duration::ZERO)
    }

    /// Send with an additional sender-side delay (broadcast serialization).
    pub(crate) fn send_with_extra(
        &self,
        from: NodeId,
        to: NodeId,
        msg: M,
        extra: std::time::Duration,
    ) -> Result<(), SendError> {
        if self.crashed.read().contains(&from) {
            return Err(SendError::SelfCrashed);
        }
        if !self.nodes.read().contains_key(&to) && !self.crashed.read().contains(&to) {
            return Err(SendError::UnknownNode(to));
        }
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs.get();
        if let Some(o) = obs {
            o.sent.inc();
        }
        if !self.connected(from, to) {
            // Silently dropped, like a packet into a partition. The sender
            // only learns via its own protocol-level timeouts.
            self.stats
                .dropped_partitioned
                .fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.dropped.inc();
            }
            return Ok(());
        }
        if self.queues.is_empty() {
            if let Some(o) = obs {
                o.delay_hist.record(extra.as_nanos() as u64);
            }
            self.deliver(Envelope { from, to, msg });
        } else {
            let shard = &self.queues[link_shard(from, to, self.queues.len())];
            let scheduled = shard.schedule(
                (from, to),
                extra + self.link.delay,
                self.link.jitter,
                Envelope { from, to, msg },
            );
            if let Some(o) = obs {
                o.delay_hist.record(scheduled.as_nanos() as u64);
            }
        }
        Ok(())
    }
}

/// Handle to a simulated network. Cloning is cheap; all clones control the
/// same network. Dropping the last [`Network`] handle shuts down the delay
/// scheduler threads (endpoints may outlive them but delayed messages stop
/// flowing — tests keep the handle alive for the duration of the run).
pub struct Network<M: Send + 'static> {
    inner: Arc<Inner<M>>,
    /// Owned by the *first* handle only.
    scheduler: Option<Arc<SchedulerGuard<M>>>,
}

struct SchedulerGuard<M: Send + 'static> {
    queues: Vec<Arc<DelayQueue<Envelope<M>>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: Send + 'static> Drop for SchedulerGuard<M> {
    fn drop(&mut self) {
        for q in &self.queues {
            q.shutdown();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
            scheduler: self.scheduler.clone(),
        }
    }
}

impl<M: Send + 'static> Network<M> {
    /// Creates a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        let seed = config.seed.unwrap_or_else(rand::random);
        let queues: Vec<Arc<DelayQueue<Envelope<M>>>> = if config.link.is_instant() {
            Vec::new()
        } else {
            (0..config.shards())
                .map(|i| {
                    // Distinct deterministic jitter stream per shard.
                    DelayQueue::with_seed(
                        seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )
                })
                .collect()
        };
        let inner = Arc::new(Inner {
            link: config.link,
            nodes: RwLock::new(HashMap::new()),
            crashed: RwLock::new(HashSet::new()),
            groups: RwLock::new(HashMap::new()),
            isolated: RwLock::new(HashSet::new()),
            queues: queues.clone(),
            stats: NetStats::default(),
            obs: OnceLock::new(),
        });
        let scheduler = if queues.is_empty() {
            None
        } else {
            let handles = queues
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let inner2 = Arc::clone(&inner);
                    let q2 = Arc::clone(q);
                    std::thread::Builder::new()
                        .name(format!("simnet-scheduler-{i}"))
                        .spawn(move || q2.run(move |batch| inner2.deliver_batch(batch)))
                        .expect("spawn simnet scheduler shard")
                })
                .collect();
            Some(Arc::new(SchedulerGuard {
                queues,
                handles: Mutex::new(handles),
            }))
        };
        Network { inner, scheduler }
    }

    /// Zero-latency deterministic network.
    pub fn instant() -> Self {
        Network::new(NetConfig::instant())
    }

    /// Registers a node and returns its endpoint. Panics if the id is
    /// already registered and alive.
    pub fn register(&self, id: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        let mut nodes = self.inner.nodes.write();
        let prev = nodes.insert(id, tx);
        assert!(
            prev.is_none() || self.inner.crashed.read().contains(&id),
            "node {id} registered twice"
        );
        self.inner.crashed.write().remove(&id);
        drop(nodes);
        Endpoint::new(id, rx, Arc::clone(&self.inner))
    }

    /// Crashes a node: its inbox closes, in-flight and future messages to it
    /// are dropped, and its sends fail. The id can later be re-registered
    /// (crash-recovery model of §4).
    pub fn crash(&self, id: NodeId) {
        self.inner.crashed.write().insert(id);
        self.inner.nodes.write().remove(&id);
    }

    /// True if the node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.inner.crashed.read().contains(&id)
    }

    /// Splits the listed nodes into partition groups: traffic between nodes
    /// of *different* groups is dropped. Nodes not listed keep full
    /// connectivity. Overwrites any previous partition.
    pub fn partition(&self, partition_groups: &[&[NodeId]]) {
        let mut groups = self.inner.groups.write();
        groups.clear();
        for (gi, members) in partition_groups.iter().enumerate() {
            for &m in *members {
                groups.insert(m, gi as u32);
            }
        }
    }

    /// Cuts a single node off from everyone else.
    pub fn isolate(&self, id: NodeId) {
        self.inner.isolated.write().insert(id);
    }

    /// Restores full connectivity (clears partitions and isolation).
    pub fn heal(&self) {
        self.inner.groups.write().clear();
        self.inner.isolated.write().clear();
    }

    /// Number of scheduler shards servicing delayed links (0 on an instant
    /// network).
    pub fn scheduler_shards(&self) -> usize {
        self.inner.queues.len()
    }

    /// Mirrors delivery counters and the scheduled link latency into the
    /// given observability registry (`net.sent`, `net.delivered`,
    /// `net.dropped`, `net.delay_ns`). Call once per cluster; the first
    /// call wins — the mirrors are install-once so the per-message hot
    /// path never takes a lock to reach them.
    pub fn attach_obs(&self, obs: &ObsHandle) {
        let _ = self.inner.obs.set(NetObs {
            sent: obs.counter("net.sent"),
            delivered: obs.counter("net.delivered"),
            dropped: obs.counter("net.dropped"),
            delay_hist: obs.histogram("net.delay_ns"),
        });
    }

    /// Delivery statistics snapshot.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let s = &self.inner.stats;
        (
            s.sent.load(Ordering::Relaxed),
            s.delivered.load(Ordering::Relaxed),
            s.dropped_crashed.load(Ordering::Relaxed),
            s.dropped_partitioned.load(Ordering::Relaxed),
        )
    }
}
