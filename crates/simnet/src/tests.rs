//! Integration-style tests of the network substrate: FIFO ordering, delays,
//! crash/partition semantics, broadcast.

use std::time::{Duration, Instant};

use crate::{LinkConfig, NetConfig, Network, NodeId, RecvError, SendError};

fn two_nodes<M: Send + 'static>(net: &Network<M>) -> (crate::Endpoint<M>, crate::Endpoint<M>) {
    (net.register(NodeId(1)), net.register(NodeId(2)))
}

#[test]
fn point_to_point_delivery() {
    let net: Network<&'static str> = Network::instant();
    let (a, b) = two_nodes(&net);
    a.send(b.id(), "hello").unwrap();
    let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(from, a.id());
    assert_eq!(msg, "hello");
}

#[test]
fn per_link_fifo_instant() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    for i in 0..1000 {
        a.send(b.id(), i).unwrap();
    }
    for i in 0..1000 {
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, i);
    }
}

#[test]
fn per_link_fifo_with_jitter() {
    // Jitter must not reorder messages on the same link.
    let net: Network<u32> = Network::new(NetConfig {
        link: LinkConfig {
            delay: Duration::from_micros(50),
            jitter: Duration::from_micros(200),
            serialize: Duration::ZERO,
        },
        seed: Some(42),
        ..NetConfig::default()
    });
    let (a, b) = two_nodes(&net);
    for i in 0..500 {
        a.send(b.id(), i).unwrap();
    }
    for i in 0..500 {
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().1, i);
    }
}

#[test]
fn delay_is_applied() {
    let net: Network<()> = Network::new(NetConfig {
        link: LinkConfig::slow(Duration::from_millis(20)),
        seed: Some(0),
        ..NetConfig::default()
    });
    let (a, b) = two_nodes(&net);
    let start = Instant::now();
    a.send(b.id(), ()).unwrap();
    b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(
        start.elapsed() >= Duration::from_millis(18),
        "message arrived before the link delay: {:?}",
        start.elapsed()
    );
}

#[test]
fn unknown_destination_errors() {
    let net: Network<()> = Network::instant();
    let a = net.register(NodeId(1));
    assert_eq!(a.send(NodeId(99), ()), Err(SendError::UnknownNode(NodeId(99))));
}

#[test]
fn crashed_node_drops_messages_and_recv_disconnects() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    net.crash(b.id());
    // Sends to a crashed node succeed at the API level but are dropped.
    a.send(b.id(), 7).unwrap();
    assert_eq!(b.recv(), Err(RecvError::Disconnected));
    let (_, _, dropped_crashed, _) = net.stats();
    assert!(dropped_crashed >= 1);
}

#[test]
fn crashed_sender_cannot_send() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    net.crash(a.id());
    assert_eq!(a.send(b.id(), 1), Err(SendError::SelfCrashed));
}

#[test]
fn crash_then_reregister() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    net.crash(b.id());
    assert!(net.is_crashed(b.id()));
    let b2 = net.register(NodeId(2));
    assert!(!net.is_crashed(b2.id()));
    a.send(b2.id(), 9).unwrap();
    assert_eq!(b2.recv_timeout(Duration::from_secs(1)).unwrap().1, 9);
}

#[test]
fn partition_blocks_cross_traffic_and_heal_restores() {
    let net: Network<u32> = Network::instant();
    let a = net.register(NodeId(1));
    let b = net.register(NodeId(2));
    let c = net.register(NodeId(3));

    net.partition(&[&[NodeId(1)], &[NodeId(2)]]);
    a.send(b.id(), 1).unwrap();
    assert_eq!(b.recv_timeout(Duration::from_millis(20)), Err(RecvError::Timeout));
    // Node 3 is in no group: reachable from both sides.
    a.send(c.id(), 2).unwrap();
    assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().1, 2);

    net.heal();
    a.send(b.id(), 3).unwrap();
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 3);
}

#[test]
fn isolation_blocks_both_directions() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    net.isolate(a.id());
    a.send(b.id(), 1).unwrap();
    b.send(a.id(), 2).unwrap();
    assert_eq!(b.recv_timeout(Duration::from_millis(20)), Err(RecvError::Timeout));
    assert_eq!(a.recv_timeout(Duration::from_millis(20)), Err(RecvError::Timeout));
}

#[test]
fn partition_applies_to_in_flight_messages() {
    // A message already "on the wire" when the partition starts must not leak
    // across it (delivery-time connectivity check).
    let net: Network<u32> = Network::new(NetConfig {
        link: LinkConfig::slow(Duration::from_millis(50)),
        seed: Some(0),
        ..NetConfig::default()
    });
    let (a, b) = two_nodes(&net);
    a.send(b.id(), 1).unwrap();
    net.partition(&[&[NodeId(1)], &[NodeId(2)]]);
    assert_eq!(b.recv_timeout(Duration::from_millis(200)), Err(RecvError::Timeout));
}

#[test]
fn broadcast_reaches_all_peers() {
    let net: Network<u32> = Network::instant();
    let a = net.register(NodeId(1));
    let peers: Vec<_> = (2..=5).map(|i| net.register(NodeId(i))).collect();
    let ids: Vec<_> = peers.iter().map(|p| p.id()).collect();
    a.broadcast(&ids, 42).unwrap();
    for p in &peers {
        assert_eq!(p.recv_timeout(Duration::from_secs(1)).unwrap(), (a.id(), 42));
    }
}

#[test]
fn broadcast_continues_past_unknown_peer() {
    let net: Network<u32> = Network::instant();
    let a = net.register(NodeId(1));
    let b = net.register(NodeId(2));
    let err = a.broadcast(&[NodeId(99), b.id()], 5).unwrap_err();
    assert_eq!(err, SendError::UnknownNode(NodeId(99)));
    // b still received the message.
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().1, 5);
}

#[test]
fn many_senders_one_receiver() {
    let net: Network<(u64, u32)> = Network::instant();
    let sink = net.register(NodeId(0));
    let mut handles = Vec::new();
    for s in 1..=8u64 {
        let ep = net.register(NodeId(s));
        handles.push(std::thread::spawn(move || {
            for i in 0..100u32 {
                ep.send(NodeId(0), (s, i)).unwrap();
            }
        }));
    }
    let mut last_per_sender = std::collections::HashMap::new();
    for _ in 0..800 {
        let (_, (s, i)) = sink.recv_timeout(Duration::from_secs(5)).unwrap();
        // FIFO per sender even under concurrency.
        let last = last_per_sender.entry(s).or_insert(-1i64);
        assert!((i as i64) > *last, "sender {s} reordered: {i} after {last}");
        *last = i as i64;
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn stats_count_sent_and_delivered() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    for i in 0..10 {
        a.send(b.id(), i).unwrap();
    }
    for _ in 0..10 {
        b.recv_timeout(Duration::from_secs(1)).unwrap();
    }
    let (sent, delivered, _, _) = net.stats();
    assert_eq!(sent, 10);
    assert_eq!(delivered, 10);
}

#[test]
fn recv_batch_drains_bursts_in_order() {
    let net: Network<u32> = Network::instant();
    let (a, b) = two_nodes(&net);
    for i in 0..100 {
        a.send(b.id(), i).unwrap();
    }
    let mut out = Vec::new();
    // Bounded drain first, then the rest.
    assert_eq!(b.recv_batch(Duration::from_secs(1), 30, &mut out).unwrap(), 30);
    while out.len() < 100 {
        b.recv_batch(Duration::from_secs(1), usize::MAX, &mut out)
            .unwrap();
    }
    let values: Vec<u32> = out.iter().map(|&(_, v)| v).collect();
    assert_eq!(values, (0..100).collect::<Vec<_>>());
    // Empty inbox: times out.
    assert_eq!(
        b.recv_batch(Duration::from_millis(5), 8, &mut out),
        Err(RecvError::Timeout)
    );
}

#[test]
fn delayed_network_spawns_configured_scheduler_shards() {
    let net: Network<u32> = Network::new(NetConfig {
        link: LinkConfig::slow(Duration::from_micros(100)),
        seed: Some(3),
        scheduler_shards: 3,
    });
    assert_eq!(net.scheduler_shards(), 3);
    // Instant networks bypass the scheduler entirely.
    let inst: Network<u32> = Network::instant();
    assert_eq!(inst.scheduler_shards(), 0);
    // 0 = auto default.
    let auto: Network<u32> = Network::new(NetConfig {
        link: LinkConfig::slow(Duration::from_micros(100)),
        seed: Some(3),
        scheduler_shards: 0,
    });
    assert_eq!(auto.scheduler_shards(), 4);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// FIFO per link holds for any mix of link delays, jitter,
        /// scheduler shard counts, receive batch sizes and message bursts:
        /// receivers always observe each sender's messages in send order,
        /// whether they drain one message per wake-up or whole batches.
        #[test]
        fn fifo_holds_for_any_delay_shards_and_batch(
            delay_us in 0u64..200,
            jitter_us in 0u64..300,
            shards in 1usize..6,
            recv_batch_max in 1usize..40,
            bursts in proptest::collection::vec(1usize..30, 1..6),
        ) {
            let net: Network<(usize, usize)> = Network::new(NetConfig {
                link: LinkConfig {
                    delay: Duration::from_micros(delay_us),
                    jitter: Duration::from_micros(jitter_us),
                    serialize: Duration::ZERO,
                },
                seed: Some(7),
                scheduler_shards: shards,
            });
            let a = net.register(NodeId(1));
            let b = net.register(NodeId(2));
            let c = net.register(NodeId(3));
            let mut sent = 0usize;
            for (burst_no, n) in bursts.iter().enumerate() {
                for i in 0..*n {
                    // Two independent links into b: each must stay FIFO on
                    // its own, whatever shard each hashes to.
                    a.send(b.id(), (burst_no, i)).unwrap();
                    c.send(b.id(), (burst_no, i)).unwrap();
                    sent += 2;
                }
            }
            let mut last_a: Option<(usize, usize)> = None;
            let mut last_c: Option<(usize, usize)> = None;
            let mut got = 0usize;
            let mut out: Vec<(NodeId, (usize, usize))> = Vec::new();
            while got < sent {
                out.clear();
                let n = b
                    .recv_batch(Duration::from_secs(5), recv_batch_max, &mut out)
                    .unwrap();
                prop_assert!(n > 0 && n <= recv_batch_max);
                for &(from, msg) in &out {
                    let last = if from == a.id() { &mut last_a } else { &mut last_c };
                    if let Some(prev) = *last {
                        prop_assert!(msg > prev, "link {from} reordered: {msg:?} after {prev:?}");
                    }
                    *last = Some(msg);
                }
                got += n;
            }
        }
    }
}
