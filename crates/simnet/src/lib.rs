//! # flexlog-simnet
//!
//! An in-process simulated network substrate used by every distributed
//! component of FlexLog (replicas, sequencers, clients, baselines).
//!
//! The FlexLog paper (§4) assumes a *partially synchronous* message-passing
//! system with reliable FIFO channels (realized over TCP in the original Go
//! implementation) and a reliable broadcast primitive. This crate implements
//! exactly that model in-process so the full distributed protocols can run on
//! a single machine:
//!
//! * every node owns an [`Endpoint`] identified by a [`NodeId`];
//! * links deliver messages **reliably and in FIFO order per (src, dst)
//!   pair**, after a configurable one-way delay (+ jitter) that models the
//!   10 Gbps interconnect of the paper's testbed;
//! * fault injection: nodes can **crash** (their inbox closes; messages to
//!   them vanish, like a TCP reset) and the network can be **partitioned**
//!   into groups that cannot exchange messages until healed — the failure
//!   modes §6.3's recovery protocols are designed for;
//! * [`Endpoint::broadcast`] sends the same message to a set of peers over
//!   the reliable FIFO links; combined with the recovery protocols this
//!   realizes the paper's reliable-broadcast assumption.
//!
//! The network is generic over the message type `M`, so each protocol crate
//! defines its own strongly-typed message enum and never serializes anything.

mod config;
mod endpoint;
mod error;
mod network;
mod node;
mod scheduler;

pub use config::{LinkConfig, NetConfig};
pub use endpoint::Endpoint;
pub use error::{RecvError, SendError};
pub use network::Network;
pub use node::NodeId;

#[cfg(test)]
mod tests;
