//! Property coverage for the `SeqNum = epoch << 32 | counter` packing that
//! sequencer fail-over relies on (§6.4): any SN assigned in a later epoch
//! must order after every SN of an earlier epoch, no matter the counters —
//! in particular when the old epoch's counter sits near `u32::MAX` and the
//! new epoch restarts from 0.

use flexlog_types::{Epoch, SeqNum};
use proptest::prelude::*;

/// Counters biased towards the wrap-around danger zone near `u32::MAX`.
fn counter_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        3 => any::<u32>(),
        2 => (u32::MAX - 64)..=u32::MAX,
        1 => 0u32..64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn epoch_bump_dominates_any_counter(
        epoch in 0u32..u32::MAX,
        bump in 1u32..1024,
        old_counter in counter_strategy(),
        new_counter in counter_strategy(),
    ) {
        let new_epoch = epoch.saturating_add(bump);
        prop_assert!(new_epoch > epoch);
        let before = SeqNum::new(Epoch(epoch), old_counter);
        let after = SeqNum::new(Epoch(new_epoch), new_counter);
        // A failed-over sequencer starts a fresh epoch: every new SN must
        // sort after all SNs of the previous epoch, even when the old
        // counter was at u32::MAX and the new one restarts at 0.
        prop_assert!(after > before, "{after:?} !> {before:?}");
    }

    #[test]
    fn same_epoch_orders_by_counter(
        epoch in any::<u32>(),
        a in counter_strategy(),
        b in counter_strategy(),
    ) {
        let sa = SeqNum::new(Epoch(epoch), a);
        let sb = SeqNum::new(Epoch(epoch), b);
        prop_assert_eq!(sa.cmp(&sb), a.cmp(&b));
    }

    #[test]
    fn packing_roundtrips_at_extremes(
        epoch in counter_strategy(),
        counter in counter_strategy(),
    ) {
        let sn = SeqNum::new(Epoch(epoch), counter);
        prop_assert_eq!(sn.epoch(), Epoch(epoch));
        prop_assert_eq!(sn.counter(), counter);
    }

    #[test]
    fn order_matches_lexicographic_pairs(
        e1 in counter_strategy(),
        c1 in counter_strategy(),
        e2 in counter_strategy(),
        c2 in counter_strategy(),
    ) {
        let s1 = SeqNum::new(Epoch(e1), c1);
        let s2 = SeqNum::new(Epoch(e2), c2);
        prop_assert_eq!(s1.cmp(&s2), (e1, c1).cmp(&(e2, c2)));
    }
}

/// The exact boundary the property tests sample around, pinned explicitly.
#[test]
fn counter_wrap_boundary_is_ordered() {
    let last_of_epoch1 = SeqNum::new(Epoch(1), u32::MAX);
    let first_of_epoch2 = SeqNum::new(Epoch(2), 0);
    assert!(first_of_epoch2 > last_of_epoch1);
    assert_eq!(first_of_epoch2.counter(), 0);
    assert_eq!(first_of_epoch2.epoch(), Epoch(2));
}
