//! Ordering-layer messages and the wire-embedding trait.

use flexlog_simnet::NodeId;
use flexlog_types::{ColorId, Epoch, SeqNum, Token};

use crate::RoleId;

/// Messages exchanged by sequencers, their backups, and the data layer.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderMsg {
    /// Order request from a replica (or measuring client) to a leaf
    /// sequencer: assign `nrecords` consecutive SNs in `color` for the
    /// append identified by `token`; broadcast the reply to `shard`
    /// (Algorithm 1, line 19).
    OReq {
        color: ColorId,
        token: Token,
        nrecords: u32,
        shard: Vec<NodeId>,
    },
    /// Aggregated request a sequencer forwards to its parent: `total` SNs
    /// for `color`, identified by the child's `batch` id (§5.2).
    AggReq {
        color: ColorId,
        batch: u64,
        total: u32,
    },
    /// Reply to an [`OrderMsg::AggReq`]: the *last* SN of the assigned
    /// range; the child distributes sub-ranges to its constituents.
    AggResp { batch: u64, last_sn: SeqNum },
    /// Ordering response broadcast by the leaf to all replicas of the
    /// requesting shard: `last_sn` is the SN of the batch's final record.
    OResp { token: Token, last_sn: SeqNum },
    /// Batched ordering responses: when one aggregation flush assigns SNs to
    /// several appends bound for the *same* shard, the leaf broadcasts one
    /// message carrying all of them (in assignment order) instead of one
    /// OResp per token — the sequencer batch fast path. Semantically
    /// equivalent to the unrolled sequence of [`OrderMsg::OResp`]s.
    ORespBatch { resps: Vec<(Token, SeqNum)> },

    /// Leader → backups: replicate the epoch before serving (§5.2 Safety).
    ReplicateEpoch { epoch: Epoch },
    /// Backup → leader: epoch durably noted.
    EpochAck { epoch: Epoch },
    /// Leader → backups: liveness heartbeat.
    Heartbeat { epoch: Epoch },
    /// Backup → leader: heartbeat ack (the leader self-demotes without a
    /// majority of these within Δ).
    HeartbeatAck { epoch: Epoch },
    /// Backup → peer backups: candidacy in an election. The highest
    /// (epoch, node-id) wins (§5.2 "Sequencer replication").
    Candidacy { epoch: Epoch, id: NodeId },

    /// New leader → data-layer replicas: initialize against epoch `epoch`
    /// before the leader serves (§6.3 "Sequencer failures").
    InitSequencer { role: RoleId, epoch: Epoch },
    /// Replica → new leader: initialization complete.
    InitAck { epoch: Epoch },

    /// Control plane → sequencer: fence the current configuration. The
    /// sequencer advances its epoch, clears its per-color counters (fresh
    /// epoch ⇒ counters restart at 0, so every post-fence SN compares
    /// greater than every pre-fence SN), replicates the new epoch to its
    /// backups, and answers with [`OrderMsg::EpochIs`].
    /// Carries the controller generation `gen`: a sequencer that has seen
    /// a higher generation refuses with [`OrderMsg::BumpFenced`] instead
    /// of bumping (zombie-controller fencing).
    BumpEpoch { role: RoleId, gen: u64 },
    /// Sequencer → control plane: the epoch now in force at `role`.
    EpochIs { role: RoleId, epoch: Epoch },
    /// Sequencer → control plane: the bump was refused — the sender's
    /// controller generation is stale (`gen` is the highest seen here).
    BumpFenced { role: RoleId, gen: u64 },

    /// Orderly shutdown (test harness).
    Shutdown,
}

/// Embeds [`OrderMsg`] into an arbitrary network wire type, letting
/// sequencer nodes run on a cluster-wide message enum they do not know.
pub trait OrderWire: Send + Clone + 'static {
    fn from_order(m: OrderMsg) -> Self;
    fn into_order(self) -> Option<OrderMsg>;
}

impl OrderWire for OrderMsg {
    fn from_order(m: OrderMsg) -> Self {
        m
    }
    fn into_order(self) -> Option<OrderMsg> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_wire_roundtrips() {
        let m = OrderMsg::OResp {
            token: Token(7),
            last_sn: SeqNum(9),
        };
        let w = OrderMsg::from_order(m.clone());
        assert_eq!(w.into_order(), Some(m));
    }
}
