//! The sequencer node: leader logic of one position in the ordering tree.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flexlog_obs::{Counter, Histogram, ObsHandle, Stage};
use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_types::{ColorId, Epoch, SeqNum, Token};

use crate::msg::{OrderMsg, OrderWire};
use crate::{ColorRegistry, Directory, RoleId};

/// Static configuration of a sequencer position (shared with its backups,
/// which assume it on promotion).
#[derive(Clone, Debug)]
pub struct SequencerConfig {
    /// Logical role in the tree.
    pub role: RoleId,
    /// Colors this sequencer is the ordering root for.
    pub owned: HashSet<ColorId>,
    /// Parent role (None at the tree root).
    pub parent: Option<RoleId>,
    /// Backup nodes replicating this sequencer's epoch.
    pub backups: Vec<NodeId>,
    /// OReq aggregation window (paper default: 1 µs).
    pub batch_interval: Duration,
    /// Heartbeat period towards the backups.
    pub heartbeat_interval: Duration,
    /// Failure-detection bound Δ.
    pub delta: Duration,
    /// Resend window for unanswered upstream requests.
    pub resend_timeout: Duration,
    /// Dynamic color ownership (AddColor); consulted in addition to
    /// `owned`.
    pub registry: ColorRegistry,
    /// Shared observability surface (SeqAssign trace events, batch-wait
    /// histogram).
    pub obs: ObsHandle,
}

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig {
            role: RoleId(0),
            owned: HashSet::new(),
            parent: None,
            backups: Vec::new(),
            batch_interval: Duration::from_micros(1),
            heartbeat_interval: Duration::from_millis(20),
            delta: Duration::from_millis(150),
            resend_timeout: Duration::from_millis(300),
            registry: ColorRegistry::new(),
            obs: ObsHandle::default(),
        }
    }
}

/// Modelled per-message handling costs (ns) on the paper's testbed — a Go
/// gRPC server spends ~0.5–1.5 µs of CPU per message, plus per-record work
/// distributing assigned ranges. These feed the `busy_ns` capacity metric
/// used by the scalability experiments (Fig 9/11) where a single-CPU host
/// cannot express multi-node parallelism in wall time.
const HANDLE_OREQ_NS: u64 = 500;
const HANDLE_PER_RECORD_NS: u64 = 800;
const HANDLE_AGG_NS: u64 = 1_500;

/// Max messages drained from the inbox per run-loop pass. A whole burst is
/// processed before the aggregation buffers are flushed, so OReqs that
/// arrive together are assigned SNs with one counter bump and answered with
/// per-shard [`OrderMsg::ORespBatch`]es — the sequencer batch fast path.
const RECV_BURST: usize = 128;

/// Counters exposed to benchmarks (shared, updated by the node thread).
#[derive(Debug, Default)]
pub struct SequencerStats {
    /// Modelled busy time of this node (see the constants above).
    pub busy_ns: AtomicU64,
    /// Total sequence numbers issued by this node (only counts colors it
    /// owns).
    pub sns_issued: AtomicU64,
    /// OReqs received from replicas/clients.
    pub oreqs: AtomicU64,
    /// Aggregated batches flushed (locally assigned or forwarded).
    pub batches: AtomicU64,
    /// Requests forwarded to the parent.
    pub forwarded: AtomicU64,
}

/// A member of a pending batch, in arrival order.
enum Constituent {
    /// Direct OReq origin: reply goes to the shard's replicas.
    Origin {
        token: Token,
        nrecords: u32,
        shard: Vec<NodeId>,
    },
    /// A child sequencer's aggregated request.
    Child { from: NodeId, batch: u64, total: u32 },
}

impl Constituent {
    fn total(&self) -> u32 {
        match self {
            Constituent::Origin { nrecords, .. } => *nrecords,
            Constituent::Child { total, .. } => *total,
        }
    }
}

struct ColorBuffer {
    constituents: Vec<Constituent>,
    total: u32,
    opened_at: Instant,
}

struct PendingUp {
    color: ColorId,
    constituents: Vec<Constituent>,
    total: u32,
    sent_at: Instant,
}

/// Bounded memory for replayed child responses.
const RESPONDED_CAP: usize = 100_000;

/// Run-loop control flow after handling one message.
enum Flow {
    Continue,
    Stop,
}

/// See module docs.
pub struct SequencerNode {
    config: SequencerConfig,
    directory: Directory,
    epoch: Epoch,
    counters: HashMap<ColorId, u32>,
    seen_tokens: HashSet<Token>,
    /// Replay cache: tokens already answered → their SN, so OReq resends
    /// (e.g. from a replica that was partitioned during the OResp
    /// broadcast) get the same answer re-broadcast instead of being
    /// silently dropped.
    answered_tokens: HashMap<Token, SeqNum>,
    answered_order: VecDeque<Token>,
    buffers: HashMap<ColorId, ColorBuffer>,
    pending_up: HashMap<u64, PendingUp>,
    next_batch: u64,
    /// Replay cache: child batches already answered → their SN, so child
    /// resends get the same answer instead of a new range.
    responded: HashMap<(NodeId, u64), SeqNum>,
    responded_order: VecDeque<(NodeId, u64)>,
    stats: Arc<SequencerStats>,
    /// Time each color batch spent open in the aggregation window before
    /// it was flushed (assigned or forwarded).
    batch_wait_hist: Histogram,
    /// OReqs dropped because no one above this node owns the color (stale
    /// routing during a reconfiguration; the replica's resend tick retries
    /// against the new route).
    misrouted_dropped: Counter,
    /// Per-node modelled busy time (`node.busy_ns.seq.<role>`): the obs
    /// mirror of [`SequencerStats::busy_ns`], so capacity benchmarks can
    /// read every node's modelled load from one snapshot.
    busy_counter: Counter,
    /// Per-color SNs issued (`seq.color_sns.<id>`), the autoscaler's
    /// per-color append-rate signal. Cached so a flush does not re-register
    /// the counter.
    color_sn_counters: HashMap<ColorId, Counter>,
    /// Highest controller generation seen on a `BumpEpoch` — the zombie
    /// fence. Volatile (NOT replicated to backups): a promoted backup
    /// starts at 0, so a zombie could in principle bump a freshly promoted
    /// leaf once — harmless, as a stray epoch bump only fences harder (SNs
    /// stay monotonic) and cannot cut a color over. Documented in DESIGN.md.
    ctrl_gen: u64,
}

impl SequencerNode {
    /// Creates the initial sequencer of a role at epoch 1.
    pub fn new(config: SequencerConfig, directory: Directory) -> Self {
        Self::with_epoch(config, directory, Epoch(1))
    }

    /// Creates a sequencer resuming at a given epoch (promotion path).
    pub fn with_epoch(config: SequencerConfig, directory: Directory, epoch: Epoch) -> Self {
        let batch_wait_hist = config.obs.histogram("seq.batch_wait_ns");
        let misrouted_dropped = config.obs.counter("seq.misrouted_dropped");
        let busy_counter = config
            .obs
            .counter(&format!("node.busy_ns.seq.{}", config.role.0));
        SequencerNode {
            config,
            directory,
            epoch,
            counters: HashMap::new(),
            seen_tokens: HashSet::new(),
            answered_tokens: HashMap::new(),
            answered_order: VecDeque::new(),
            buffers: HashMap::new(),
            pending_up: HashMap::new(),
            next_batch: 1,
            responded: HashMap::new(),
            responded_order: VecDeque::new(),
            stats: Arc::new(SequencerStats::default()),
            batch_wait_hist,
            misrouted_dropped,
            busy_counter,
            color_sn_counters: HashMap::new(),
            ctrl_gen: 0,
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<SequencerStats> {
        Arc::clone(&self.stats)
    }

    /// The epoch this node issues SNs in.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Runs the sequencer loop until shutdown, crash, or self-demotion.
    /// Installs itself in the directory on entry.
    pub fn run<W: OrderWire>(mut self, ep: Endpoint<W>) {
        self.directory.set(self.config.role, ep.id());
        let mut hb_last_sent = Instant::now() - self.config.heartbeat_interval;
        let mut hb_acks: HashSet<NodeId> = HashSet::new();
        let mut hb_last_majority = Instant::now();
        let mut burst: Vec<(NodeId, W)> = Vec::new();

        loop {
            // Only poll at the (microsecond-scale) batching interval while
            // work is actually buffered or in flight; otherwise block for a
            // coarse tick so an idle sequencer does not busy-spin a core.
            // (pending_up progress is driven by incoming AggResps, which
            // wake the recv — no need to poll for it.)
            let busy = !self.buffers.is_empty();
            let idle_tick = if self.config.backups.is_empty() {
                Duration::from_millis(50)
            } else {
                self.config.heartbeat_interval / 2
            };
            let wait = if busy {
                self.config.batch_interval.max(Duration::from_micros(1))
            } else {
                idle_tick.max(Duration::from_millis(1))
            };
            // Drain a whole burst, handle every message, and only then run
            // the flush: co-arriving OReqs land in the same color buffers
            // and are answered by a single assignment pass.
            burst.clear();
            match ep.recv_batch(wait, RECV_BURST, &mut burst) {
                Ok(_) => {
                    for (from, wire) in burst.drain(..) {
                        let Some(msg) = wire.into_order() else { continue };
                        match self.handle(&ep, from, msg, &mut hb_acks, &mut hb_last_majority) {
                            Flow::Continue => {}
                            Flow::Stop => return,
                        }
                    }
                }
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => return,
            }

            self.flush_due(&ep);
            self.resend_stale(&ep);

            // Heartbeats + split-brain self-demotion (only with backups).
            if !self.config.backups.is_empty() {
                let now = Instant::now();
                if now - hb_last_sent >= self.config.heartbeat_interval {
                    let _ = ep.broadcast(
                        &self.config.backups,
                        W::from_order(OrderMsg::Heartbeat { epoch: self.epoch }),
                    );
                    hb_last_sent = now;
                }
                if now - hb_last_majority > self.config.delta * 3 {
                    // Lost contact with a majority of backups: shut down so
                    // two sequencers can never both serve (§5.2).
                    self.directory.clear_if(self.config.role, ep.id());
                    return;
                }
            }
        }
    }

    /// Handles one inbound message; [`Flow::Stop`] terminates the run loop.
    fn handle<W: OrderWire>(
        &mut self,
        ep: &Endpoint<W>,
        from: NodeId,
        msg: OrderMsg,
        hb_acks: &mut HashSet<NodeId>,
        hb_last_majority: &mut Instant,
    ) -> Flow {
        match msg {
            OrderMsg::Shutdown => return Flow::Stop,
            OrderMsg::OReq {
                color,
                token,
                nrecords,
                shard,
            } => {
                self.stats.oreqs.fetch_add(1, Ordering::Relaxed);
                let cost = HANDLE_OREQ_NS + HANDLE_PER_RECORD_NS * nrecords as u64;
                self.stats.busy_ns.fetch_add(cost, Ordering::Relaxed);
                self.busy_counter.add(cost);
                if !self.seen_tokens.insert(token) {
                    // Idempotence (Alg 1 line 31) — but if this token was
                    // already assigned, replay the response so
                    // late/partitioned replicas can still commit.
                    if let Some(&sn) = self.answered_tokens.get(&token) {
                        let _ = ep.broadcast(
                            &shard,
                            W::from_order(OrderMsg::OResp {
                                token,
                                last_sn: sn,
                            }),
                        );
                    }
                    return Flow::Continue;
                }
                self.buffer(
                    color,
                    Constituent::Origin {
                        token,
                        nrecords,
                        shard,
                    },
                );
            }
            OrderMsg::AggReq { color, batch, total } => {
                self.stats.busy_ns.fetch_add(HANDLE_AGG_NS, Ordering::Relaxed);
                self.busy_counter.add(HANDLE_AGG_NS);
                if let Some(&sn) = self.responded.get(&(from, batch)) {
                    // Child resend of an answered batch.
                    let _ = ep.send(from, W::from_order(OrderMsg::AggResp { batch, last_sn: sn }));
                    return Flow::Continue;
                }
                self.buffer(color, Constituent::Child { from, batch, total });
            }
            OrderMsg::AggResp { batch, last_sn } => {
                self.stats.busy_ns.fetch_add(HANDLE_AGG_NS, Ordering::Relaxed);
                self.busy_counter.add(HANDLE_AGG_NS);
                if let Some(p) = self.pending_up.remove(&batch) {
                    self.distribute(ep, p.color, p.constituents, last_sn, p.total);
                }
            }
            OrderMsg::HeartbeatAck { epoch } if epoch == self.epoch => {
                hb_acks.insert(from);
                if hb_acks.len() >= majority(self.config.backups.len()) {
                    *hb_last_majority = Instant::now();
                    hb_acks.clear();
                }
            }
            OrderMsg::BumpEpoch { role, gen } if role == self.config.role => {
                // Zombie-controller fence: refuse bumps from a generation
                // lower than any we have obeyed.
                if gen < self.ctrl_gen {
                    let _ = ep.send(
                        from,
                        W::from_order(OrderMsg::BumpFenced {
                            role: self.config.role,
                            gen: self.ctrl_gen,
                        }),
                    );
                    return Flow::Continue;
                }
                self.ctrl_gen = gen;
                // Reconfiguration fence: everything ordered so far belongs
                // to the old epoch; the counters restart so every SN issued
                // from here on compares greater (epoch is the high half of
                // the SN). Replicate before answering so a later backup
                // promotion resumes past us.
                self.epoch = self.epoch.next();
                self.counters.clear();
                if !self.config.backups.is_empty() {
                    let _ = ep.broadcast(
                        &self.config.backups,
                        W::from_order(OrderMsg::ReplicateEpoch { epoch: self.epoch }),
                    );
                }
                let _ = ep.send(
                    from,
                    W::from_order(OrderMsg::EpochIs {
                        role: self.config.role,
                        epoch: self.epoch,
                    }),
                );
            }
            // A backup (or old peer) probing with other control traffic — a
            // live leader ignores it; demotion only ever happens through
            // lost heartbeat majorities.
            _ => {}
        }
        Flow::Continue
    }

    fn buffer(&mut self, color: ColorId, c: Constituent) {
        let total = c.total();
        let buf = self.buffers.entry(color).or_insert_with(|| ColorBuffer {
            constituents: Vec::new(),
            total: 0,
            opened_at: Instant::now(),
        });
        buf.constituents.push(c);
        buf.total += total;
    }

    fn flush_due<W: OrderWire>(&mut self, ep: &Endpoint<W>) {
        let now = Instant::now();
        let due: Vec<ColorId> = self
            .buffers
            .iter()
            .filter(|(_, b)| now - b.opened_at >= self.config.batch_interval)
            .map(|(&c, _)| c)
            .collect();
        for color in due {
            let Some(buf) = self.buffers.remove(&color) else { continue };
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.batch_wait_hist
                .record_ns(now.saturating_duration_since(buf.opened_at));
            // The registry is authoritative when it knows the color: after a
            // leaf split re-homes a color, the old leaf must stop assigning
            // for it even though its static `owned` set still lists it. The
            // static set only decides for colors the registry never saw.
            let owned = match self.config.registry.owner(color) {
                Some(r) => r == self.config.role,
                None => self.config.owned.contains(&color),
            };
            if owned {
                // This node is the ordering root for the color: assign the
                // whole range with one counter bump.
                let counter = self.counters.entry(color).or_insert(0);
                *counter += buf.total;
                let last_sn = SeqNum::new(self.epoch, *counter);
                self.stats
                    .sns_issued
                    .fetch_add(buf.total as u64, Ordering::Relaxed);
                let obs = &self.config.obs;
                self.color_sn_counters
                    .entry(color)
                    .or_insert_with(|| obs.counter(&format!("seq.color_sns.{}", color.0)))
                    .add(buf.total as u64);
                self.distribute(ep, color, buf.constituents, last_sn, buf.total);
            } else {
                // Forward one merged request to the parent.
                let Some(parent_role) = self.config.parent else {
                    // Misrouted OReq for a color nobody above owns (stale
                    // routing during a reconfiguration): drop; the replica's
                    // staged-token resend retries against the new route.
                    self.misrouted_dropped.add(1);
                    continue;
                };
                let Some(parent) = self.directory.get(parent_role) else {
                    // Parent currently unknown (fail-over window): re-buffer.
                    self.buffers.insert(color, buf);
                    continue;
                };
                let batch = self.next_batch;
                self.next_batch += 1;
                let _ = ep.send(
                    parent,
                    W::from_order(OrderMsg::AggReq {
                        color,
                        batch,
                        total: buf.total,
                    }),
                );
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                self.pending_up.insert(
                    batch,
                    PendingUp {
                        color,
                        constituents: buf.constituents,
                        total: buf.total,
                        sent_at: now,
                    },
                );
            }
        }
    }

    /// Splits an assigned range `[last_sn - total + 1, last_sn]` across the
    /// batch constituents in arrival order.
    ///
    /// Origin replies bound for the same shard are coalesced into one
    /// [`OrderMsg::ORespBatch`] broadcast (singletons stay plain OResp), so
    /// a flush costs one message per destination shard instead of one per
    /// token — the emission half of the batch fast path.
    fn distribute<W: OrderWire>(
        &mut self,
        ep: &Endpoint<W>,
        color: ColorId,
        constituents: Vec<Constituent>,
        last_sn: SeqNum,
        total: u32,
    ) {
        // Order-preserving per-shard groups (shard sets are tiny and few per
        // flush; linear search beats hashing a Vec<NodeId> key).
        type ShardGroup = (Vec<NodeId>, Vec<(Token, SeqNum)>);
        let epoch = last_sn.epoch();
        let mut cursor = last_sn.counter() - total + 1;
        let mut groups: Vec<ShardGroup> = Vec::new();
        let mut spans: Vec<(Token, Stage, u64, u64)> = Vec::new();
        for c in constituents {
            match c {
                Constituent::Origin {
                    token,
                    nrecords,
                    shard,
                } => {
                    let sub_last = SeqNum::new(epoch, cursor + nrecords - 1);
                    // The SN now exists for this record: one SeqAssign per
                    // (token, color), stamped with the answering sequencer.
                    spans.push((token, Stage::SeqAssign, ep.id().0, color.0 as u64));
                    match groups.iter_mut().find(|(s, _)| *s == shard) {
                        Some((_, resps)) => resps.push((token, sub_last)),
                        None => groups.push((shard, vec![(token, sub_last)])),
                    }
                    self.remember_token(token, sub_last);
                    cursor += nrecords;
                }
                Constituent::Child { from, batch, total } => {
                    let sub_last = SeqNum::new(epoch, cursor + total - 1);
                    let _ = ep.send(
                        from,
                        W::from_order(OrderMsg::AggResp {
                            batch,
                            last_sn: sub_last,
                        }),
                    );
                    self.remember_response(from, batch, sub_last);
                    cursor += total;
                }
            }
        }
        self.config.obs.tracer().record_many(&spans);
        for (shard, resps) in groups {
            let msg = if resps.len() == 1 {
                let (token, last_sn) = resps[0];
                OrderMsg::OResp { token, last_sn }
            } else {
                OrderMsg::ORespBatch { resps }
            };
            let _ = ep.broadcast(&shard, W::from_order(msg));
        }
        debug_assert_eq!(cursor, last_sn.counter() + 1, "range fully distributed");
    }

    fn remember_token(&mut self, token: Token, sn: SeqNum) {
        self.answered_tokens.insert(token, sn);
        self.answered_order.push_back(token);
        while self.answered_order.len() > RESPONDED_CAP {
            if let Some(t) = self.answered_order.pop_front() {
                self.answered_tokens.remove(&t);
            }
        }
    }

    fn remember_response(&mut self, from: NodeId, batch: u64, sn: SeqNum) {
        self.responded.insert((from, batch), sn);
        self.responded_order.push_back((from, batch));
        while self.responded_order.len() > RESPONDED_CAP {
            if let Some(k) = self.responded_order.pop_front() {
                self.responded.remove(&k);
            }
        }
    }

    fn resend_stale<W: OrderWire>(&mut self, ep: &Endpoint<W>) {
        if self.pending_up.is_empty() {
            return;
        }
        let now = Instant::now();
        let Some(parent_role) = self.config.parent else { return };
        let Some(parent) = self.directory.get(parent_role) else { return };
        for (&batch, p) in self.pending_up.iter_mut() {
            if now - p.sent_at >= self.config.resend_timeout {
                let _ = ep.send(
                    parent,
                    W::from_order(OrderMsg::AggReq {
                        color: p.color,
                        batch,
                        total: p.total,
                    }),
                );
                p.sent_at = now;
            }
        }
    }
}

/// Majority of a backup set of size `n` (e.g. 2 backups → 2? no: 2 → 2/2+... ).
/// We require acknowledgements from ⌈n/2⌉ backups, which together with the
/// leader itself forms a strict majority of the (leader + backups) group.
fn majority(n: usize) -> usize {
    n.div_ceil(2)
}

impl Directory {
    /// Removes `role` only if `node` still holds it (demotion must not kick
    /// out a successor that already took over).
    pub fn clear_if(&self, role: RoleId, node: NodeId) {
        // Fine-grained compare-and-clear via the underlying map.
        if self.get(role) == Some(node) {
            self.clear(role);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_thresholds() {
        assert_eq!(majority(0), 0);
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 1);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 2);
    }
}
