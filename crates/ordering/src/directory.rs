//! Logical-role directory: which physical node currently plays each
//! sequencer role.
//!
//! The paper's nodes hold peer-to-peer TCP connections that are
//! re-established when a backup takes over a failed sequencer (§6.3). In the
//! simulation that connection management is modelled by this directory:
//! messages are addressed to a *role* (e.g. "leaf sequencer of color 2") and
//! resolved to the current physical [`NodeId`] at send time. A promoted
//! backup installs itself here, which is exactly the moment the rest of the
//! cluster can reach it.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use flexlog_simnet::NodeId;

/// Logical identity of a sequencer position in the tree (stable across
/// fail-overs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u32);

impl fmt::Debug for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role[{}]", self.0)
    }
}

/// Shared role → node mapping. Cheap to clone (Arc inside).
#[derive(Clone, Default)]
pub struct Directory {
    map: Arc<RwLock<HashMap<RoleId, NodeId>>>,
}

impl Directory {
    pub fn new() -> Self {
        Directory::default()
    }

    /// Current holder of `role`, if any.
    pub fn get(&self, role: RoleId) -> Option<NodeId> {
        self.map.read().get(&role).copied()
    }

    /// Installs `node` as the holder of `role` (promotion / initial wiring).
    pub fn set(&self, role: RoleId, node: NodeId) {
        self.map.write().insert(role, node);
    }

    /// Removes the holder of `role` (used in tests to simulate a window
    /// with no elected sequencer).
    pub fn clear(&self, role: RoleId) {
        self.map.write().remove(&role);
    }
}

/// Dynamic color → owning-role registry (shared across the cluster).
///
/// The tree spec's static `owned` sets seed it; `AddColor` (Table 2)
/// extends it at runtime: the new color is ordered by the sequencer that
/// owns its parent color. Sequencers consult the registry on every flush,
/// so new colors are orderable immediately.
#[derive(Clone, Default)]
pub struct ColorRegistry {
    map: Arc<RwLock<HashMap<flexlog_types::ColorId, RoleId>>>,
}

impl std::fmt::Debug for ColorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.map.read();
        f.debug_map().entries(map.iter()).finish()
    }
}

impl ColorRegistry {
    pub fn new() -> Self {
        ColorRegistry::default()
    }

    /// The role that is the ordering root for `color`.
    pub fn owner(&self, color: flexlog_types::ColorId) -> Option<RoleId> {
        self.map.read().get(&color).copied()
    }

    /// Registers (or re-homes) a color.
    pub fn set(&self, color: flexlog_types::ColorId, role: RoleId) {
        self.map.write().insert(color, role);
    }

    /// All colors owned by `role`.
    pub fn owned_by(&self, role: RoleId) -> Vec<flexlog_types::ColorId> {
        let mut v: Vec<_> = self
            .map
            .read()
            .iter()
            .filter(|&(_, &r)| r == role)
            .map(|(&c, _)| c)
            .collect();
        v.sort();
        v
    }

    /// True if the color is registered anywhere.
    pub fn contains(&self, color: flexlog_types::ColorId) -> bool {
        self.map.read().contains_key(&color)
    }

    /// Unregisters a color (runtime color destroy). Returns the previous
    /// owner, if any.
    pub fn remove(&self, color: flexlog_types::ColorId) -> Option<RoleId> {
        self.map.write().remove(&color)
    }
}

/// Per-color OReq routing overrides, layered over the shard's static
/// `leaf_role`. After a leaf-sequencer split re-homes a color, replicas
/// must send that color's order requests to the *new* leaf even though
/// their shard still hangs under the old one; the control plane installs
/// the override here and every delegate consults it at send time.
#[derive(Clone, Default)]
pub struct RouteTable {
    map: Arc<RwLock<HashMap<flexlog_types::ColorId, RoleId>>>,
}

impl RouteTable {
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// The role OReqs for `color` should go to, if overridden.
    pub fn route(&self, color: flexlog_types::ColorId) -> Option<RoleId> {
        self.map.read().get(&color).copied()
    }

    /// Installs (or replaces) an override.
    pub fn set_route(&self, color: flexlog_types::ColorId, role: RoleId) {
        self.map.write().insert(color, role);
    }

    /// Drops an override; OReqs fall back to the shard's leaf role.
    pub fn clear_route(&self, color: flexlog_types::ColorId) {
        self.map.write().remove(&color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexlog_types::ColorId;

    #[test]
    fn registry_owner_lookup() {
        let r = ColorRegistry::new();
        assert_eq!(r.owner(ColorId(1)), None);
        r.set(ColorId(1), RoleId(2));
        assert_eq!(r.owner(ColorId(1)), Some(RoleId(2)));
        r.set(ColorId(3), RoleId(2));
        assert_eq!(r.owned_by(RoleId(2)), vec![ColorId(1), ColorId(3)]);
        assert!(r.contains(ColorId(3)));
    }

    #[test]
    fn set_get_clear() {
        let d = Directory::new();
        assert_eq!(d.get(RoleId(1)), None);
        d.set(RoleId(1), NodeId(42));
        assert_eq!(d.get(RoleId(1)), Some(NodeId(42)));
        d.set(RoleId(1), NodeId(43)); // takeover
        assert_eq!(d.get(RoleId(1)), Some(NodeId(43)));
        d.clear(RoleId(1));
        assert_eq!(d.get(RoleId(1)), None);
    }

    #[test]
    fn clones_share_state() {
        let d = Directory::new();
        let d2 = d.clone();
        d.set(RoleId(7), NodeId(1));
        assert_eq!(d2.get(RoleId(7)), Some(NodeId(1)));
    }
}
