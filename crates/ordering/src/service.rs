//! Assembly of a whole ordering layer: spawns the sequencer tree plus its
//! backups as threads on a simulated network and hands back a control
//! handle. Also provides the client-side helper used by benchmarks and the
//! replication layer to obtain sequence numbers.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use flexlog_simnet::{Endpoint, Network, NodeId, RecvError};
use flexlog_types::{ColorId, Epoch, SeqNum, Token};

use crate::msg::{OrderMsg, OrderWire};
use crate::{BackupConfig, BackupNode, ColorRegistry, Directory, RoleId, SequencerConfig, SequencerNode, SequencerStats};

/// One sequencer position in the tree.
#[derive(Clone, Debug)]
pub struct PositionSpec {
    pub role: RoleId,
    /// Colors this position is the ordering root for.
    pub owned: Vec<ColorId>,
    pub parent: Option<RoleId>,
}

/// Specification of an ordering layer.
#[derive(Clone, Debug)]
pub struct TreeSpec {
    pub positions: Vec<PositionSpec>,
    /// Shared dynamic color registry (seeded from the positions' `owned`
    /// lists at start; extended by AddColor afterwards).
    pub registry: ColorRegistry,
    /// Backups per sequencer position (the paper's 2f).
    pub backups_per_position: usize,
    pub batch_interval: Duration,
    pub heartbeat_interval: Duration,
    pub delta: Duration,
    pub resend_timeout: Duration,
    pub election_window: Duration,
    /// Shared observability surface handed to every sequencer (and its
    /// promoted backups, via the cloned `SequencerConfig`).
    pub obs: flexlog_obs::ObsHandle,
}

impl Default for TreeSpec {
    fn default() -> Self {
        TreeSpec {
            positions: Vec::new(),
            registry: ColorRegistry::new(),
            backups_per_position: 0,
            batch_interval: Duration::from_micros(1),
            heartbeat_interval: Duration::from_millis(20),
            delta: Duration::from_millis(150),
            resend_timeout: Duration::from_millis(300),
            election_window: Duration::from_millis(60),
            obs: flexlog_obs::ObsHandle::default(),
        }
    }
}

impl TreeSpec {
    /// A single root sequencer owning all `colors`.
    pub fn single(colors: &[ColorId]) -> Self {
        TreeSpec {
            positions: vec![PositionSpec {
                role: RoleId(0),
                owned: colors.to_vec(),
                parent: None,
            }],
            ..Default::default()
        }
    }

    /// A root (owning `root_colors`, typically the master region) plus one
    /// leaf per entry of `leaf_colors`; each leaf owns its own colors and
    /// forwards the rest to the root. This is the paper's standard
    /// root + leaf-aggregator topology (Fig 2, §9.3).
    pub fn root_and_leaves(root_colors: &[ColorId], leaf_colors: &[Vec<ColorId>]) -> Self {
        let mut positions = vec![PositionSpec {
            role: RoleId(0),
            owned: root_colors.to_vec(),
            parent: None,
        }];
        for (i, owned) in leaf_colors.iter().enumerate() {
            positions.push(PositionSpec {
                role: RoleId(1 + i as u32),
                owned: owned.clone(),
                parent: Some(RoleId(0)),
            });
        }
        TreeSpec {
            positions,
            ..Default::default()
        }
    }

    /// A root–middle–…–leaf chain of `depth` sequencers where only the root
    /// owns `colors` (the "tree of 3 sequencers (root-middle-leaf)" setup of
    /// §9.1). Requests enter at the leaf (highest role id).
    pub fn chain(colors: &[ColorId], depth: usize) -> Self {
        assert!(depth >= 1);
        let positions = (0..depth)
            .map(|i| PositionSpec {
                role: RoleId(i as u32),
                owned: if i == 0 { colors.to_vec() } else { Vec::new() },
                parent: if i == 0 { None } else { Some(RoleId(i as u32 - 1)) },
            })
            .collect();
        TreeSpec {
            positions,
            ..Default::default()
        }
    }

    /// Role of the deepest position (entry point of [`TreeSpec::chain`]).
    pub fn leaf_role(&self) -> RoleId {
        self.positions
            .iter()
            .map(|p| p.role)
            .max()
            .expect("non-empty tree")
    }

    fn sequencer_config(&self, pos: &PositionSpec, backups: Vec<NodeId>) -> SequencerConfig {
        SequencerConfig {
            role: pos.role,
            owned: pos.owned.iter().copied().collect(),
            parent: pos.parent,
            backups,
            batch_interval: self.batch_interval,
            heartbeat_interval: self.heartbeat_interval,
            delta: self.delta,
            resend_timeout: self.resend_timeout,
            registry: self.registry.clone(),
            obs: self.obs.clone(),
        }
    }
}

/// Running ordering layer. Interior mutability on the role maps lets the
/// control plane spawn new leaf sequencers into a live tree
/// ([`OrderingHandle::spawn_leaf`]).
pub struct OrderingHandle<W: OrderWire> {
    pub directory: Directory,
    /// The spec the layer was started from; dynamic leaves inherit its
    /// timing parameters, registry, and obs surface.
    spec: TreeSpec,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Initial leader node per role.
    leaders: Mutex<HashMap<RoleId, NodeId>>,
    backups: Mutex<HashMap<RoleId, Vec<NodeId>>>,
    stats: Mutex<HashMap<RoleId, Arc<SequencerStats>>>,
    control: Endpoint<W>,
}

/// Spawner for ordering layers.
pub struct OrderingService;

impl OrderingService {
    /// Spawns every sequencer and backup of `spec` on `net`. Replicas to be
    /// initialized by promoted sequencers are given per role in
    /// `replicas_by_role` (empty for ordering-only deployments).
    pub fn start<W: OrderWire>(
        net: &Network<W>,
        spec: &TreeSpec,
        replicas_by_role: &HashMap<RoleId, Vec<NodeId>>,
    ) -> OrderingHandle<W> {
        Self::start_with_directory(net, spec, replicas_by_role, Directory::new())
    }

    /// Like [`OrderingService::start`] but using an externally created
    /// directory — required when the data layer (which also resolves leaf
    /// sequencers through the directory) is spawned first.
    pub fn start_with_directory<W: OrderWire>(
        net: &Network<W>,
        spec: &TreeSpec,
        replicas_by_role: &HashMap<RoleId, Vec<NodeId>>,
        directory: Directory,
    ) -> OrderingHandle<W> {
        let mut threads = Vec::new();
        let mut leaders = HashMap::new();
        let mut backups_map = HashMap::new();
        let mut stats = HashMap::new();

        for pos in &spec.positions {
            let leader_id = NodeId::named(NodeId::CLASS_SEQUENCER, pos.role.0 as u64);
            let backup_ids: Vec<NodeId> = (0..spec.backups_per_position)
                .map(|i| {
                    NodeId::named(
                        NodeId::CLASS_BACKUP,
                        (pos.role.0 as u64) * 64 + i as u64,
                    )
                })
                .collect();

            let seq_cfg = spec.sequencer_config(pos, backup_ids.clone());
            let node = SequencerNode::new(seq_cfg.clone(), directory.clone());
            stats.insert(pos.role, node.stats());
            directory.set(pos.role, leader_id);
            let ep = net.register(leader_id);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("seq-{}", pos.role.0))
                    .spawn(move || node.run(ep))
                    .expect("spawn sequencer"),
            );

            let replicas = replicas_by_role.get(&pos.role).cloned().unwrap_or_default();
            for (i, &bid) in backup_ids.iter().enumerate() {
                let peers: Vec<NodeId> = backup_ids
                    .iter()
                    .copied()
                    .filter(|&p| p != bid)
                    .collect();
                let cfg = BackupConfig {
                    sequencer: seq_cfg.clone(),
                    peers,
                    replicas_to_init: replicas.clone(),
                    election_window: spec.election_window,
                };
                let node = BackupNode::new(cfg, directory.clone());
                let ep = net.register(bid);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("backup-{}-{}", pos.role.0, i))
                        .spawn(move || node.run(ep))
                        .expect("spawn backup"),
                );
            }
            leaders.insert(pos.role, leader_id);
            backups_map.insert(pos.role, backup_ids);
        }

        let control = net.register(NodeId::named(0, u64::MAX >> 4));
        OrderingHandle {
            directory,
            spec: spec.clone(),
            threads: Mutex::new(threads),
            leaders: Mutex::new(leaders),
            backups: Mutex::new(backups_map),
            stats: Mutex::new(stats),
            control,
        }
    }
}

impl<W: OrderWire> OrderingHandle<W> {
    /// Current node serving `role` (follows fail-overs).
    pub fn node_for(&self, role: RoleId) -> Option<NodeId> {
        self.directory.get(role)
    }

    /// The node that initially led `role`.
    pub fn initial_leader(&self, role: RoleId) -> NodeId {
        self.leaders.lock().unwrap()[&role]
    }

    /// The backup nodes of `role`.
    pub fn backup_nodes(&self, role: RoleId) -> Vec<NodeId> {
        self.backups
            .lock()
            .unwrap()
            .get(&role)
            .cloned()
            .unwrap_or_default()
    }

    /// Stats of the *initial* sequencer of `role`.
    pub fn stats(&self, role: RoleId) -> Arc<SequencerStats> {
        Arc::clone(&self.stats.lock().unwrap()[&role])
    }

    /// All roles currently known to the layer, sorted.
    pub fn roles(&self) -> Vec<RoleId> {
        let mut v: Vec<RoleId> = self.leaders.lock().unwrap().keys().copied().collect();
        v.sort();
        v
    }

    /// Spawns a brand-new leaf sequencer into the live tree (no backups —
    /// a dynamically added leaf can be re-spawned by the control plane).
    /// `epoch` must exceed every epoch its colors were previously ordered
    /// under, so re-homed colors keep SN monotonicity. The leaf owns
    /// nothing statically; ownership arrives via the shared registry.
    pub fn spawn_leaf(&self, net: &Network<W>, role: RoleId, parent: RoleId, epoch: Epoch) -> NodeId {
        let node_id = NodeId::named(NodeId::CLASS_SEQUENCER, role.0 as u64);
        let cfg = SequencerConfig {
            role,
            owned: std::collections::HashSet::new(),
            parent: Some(parent),
            backups: Vec::new(),
            batch_interval: self.spec.batch_interval,
            heartbeat_interval: self.spec.heartbeat_interval,
            delta: self.spec.delta,
            resend_timeout: self.spec.resend_timeout,
            registry: self.spec.registry.clone(),
            obs: self.spec.obs.clone(),
        };
        let node = SequencerNode::with_epoch(cfg, self.directory.clone(), epoch);
        self.stats.lock().unwrap().insert(role, node.stats());
        self.directory.set(role, node_id);
        let ep = net.register(node_id);
        self.threads.lock().unwrap().push(
            std::thread::Builder::new()
                .name(format!("seq-{}", role.0))
                .spawn(move || node.run(ep))
                .expect("spawn sequencer"),
        );
        self.leaders.lock().unwrap().insert(role, node_id);
        self.backups.lock().unwrap().insert(role, Vec::new());
        node_id
    }

    /// Crashes the node currently serving `role`.
    pub fn crash_leader(&self, net: &Network<W>, role: RoleId) {
        if let Some(node) = self.directory.get(role) {
            net.crash(node);
        }
    }

    /// Sends shutdown to every ordering node and joins the threads.
    pub fn shutdown(self, net: &Network<W>) {
        let leaders = self.leaders.into_inner().unwrap();
        let backups = self.backups.into_inner().unwrap();
        for (&role, &leader) in &leaders {
            // The current leader might be a promoted backup.
            if let Some(current) = self.directory.get(role) {
                let _ = self.control.send(current, W::from_order(OrderMsg::Shutdown));
            }
            let _ = self.control.send(leader, W::from_order(OrderMsg::Shutdown));
            for &b in &backups[&role] {
                let _ = self.control.send(b, W::from_order(OrderMsg::Shutdown));
            }
        }
        for t in self.threads.into_inner().unwrap() {
            // Crashed nodes' threads exit via Disconnected.
            let _ = t.join();
        }
        let _ = net;
    }
}

/// Client-side helper: requests `nrecords` SNs in `color` from the leaf
/// currently serving `leaf_role`, blocking until the OResp arrives.
/// Re-sends after `retry` (fail-over handling); `token` must be fresh.
pub fn request_order<W: OrderWire>(
    ep: &Endpoint<W>,
    directory: &Directory,
    leaf_role: RoleId,
    color: ColorId,
    token: Token,
    nrecords: u32,
    retry: Duration,
) -> Result<SeqNum, RecvError> {
    loop {
        if let Some(leaf) = directory.get(leaf_role) {
            let _ = ep.send(
                leaf,
                W::from_order(OrderMsg::OReq {
                    color,
                    token,
                    nrecords,
                    shard: vec![ep.id()],
                }),
            );
        }
        let deadline = std::time::Instant::now() + retry;
        while std::time::Instant::now() < deadline {
            match ep.recv_timeout(retry) {
                Ok((_, wire)) => match wire.into_order() {
                    Some(OrderMsg::OResp { token: t, last_sn }) if t == token => {
                        return Ok(last_sn);
                    }
                    Some(OrderMsg::ORespBatch { resps }) => {
                        if let Some(&(_, last_sn)) =
                            resps.iter().find(|&&(t, _)| t == token)
                        {
                            return Ok(last_sn);
                        }
                    }
                    _ => {}
                },
                Err(RecvError::Timeout) => break,
                Err(e @ RecvError::Disconnected) => return Err(e),
            }
        }
    }
}
