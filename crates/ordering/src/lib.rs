//! # flexlog-ordering
//!
//! FlexLog's ordering layer (paper §5.2, §6.3): a scalable, fault-tolerant
//! **tree of sequencers** that assigns 64-bit sequence numbers to order
//! requests per *color* (log region).
//!
//! * Each sequencer owns a set of colors: it is the source of total order
//!   for those regions ("is_root(SID, c)", Algorithm 1). An order request
//!   (OReq) enters at a leaf and climbs the tree until it reaches the owning
//!   sequencer, whose reply descends the same path.
//! * Sequencers **aggregate**: OReqs of the same color arriving within the
//!   batching interval (default 1 µs) merge into a single ranged request;
//!   the owner assigns the whole range `[s, s+n)` with one counter bump and
//!   the range is split back across the constituents on the way down —
//!   this is why root throughput depends on the branching factor, not the
//!   tree height (§9.3).
//! * SNs are `epoch << 32 | counter`. Fault tolerance comes from 2f
//!   **backup nodes** per sequencer that replicate only the epoch:
//!   heartbeats detect a dead leader, the backup with the highest
//!   (epoch, node-id) promotes itself, replicates the bumped epoch to a
//!   majority of backups, initializes the data-layer replicas (§6.3), and
//!   only then serves requests. The old leader self-demotes when it loses a
//!   majority of heartbeat acks (split-brain avoidance).
//!
//! The crate is generic over the network wire type through [`OrderWire`], so
//! the replication layer can carry these messages inside its own envelope.

mod backup;
mod directory;
mod msg;
mod sequencer;
mod service;

pub use backup::{BackupConfig, BackupNode};
pub use directory::{ColorRegistry, Directory, RoleId, RouteTable};
pub use msg::{OrderMsg, OrderWire};
pub use sequencer::{SequencerConfig, SequencerNode, SequencerStats};
pub use service::{request_order, OrderingHandle, OrderingService, PositionSpec, TreeSpec};

#[cfg(test)]
mod tests;
