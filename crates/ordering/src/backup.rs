//! Sequencer backup nodes and the election/promotion protocol (§5.2
//! "Sequencer replication", §6.3 "Sequencer failures").
//!
//! Backups are **stateless** with respect to ordering: they replicate only
//! the current epoch, never see OReqs, and add zero latency in normal
//! operation. When heartbeats stop for Δ:
//!
//! 1. every live backup broadcasts a candidacy carrying its known epoch;
//! 2. after an election window the highest (epoch, node-id) wins;
//! 3. the winner bumps the epoch, replicates it to a majority of backups,
//! 4. initializes all data-layer replicas of its region and waits for every
//!    ack (guaranteeing the old leader's interrupted broadcasts are resolved
//!    by the replicas' sync-phase before new SNs appear), and
//! 5. installs itself in the directory and runs the sequencer loop.
//!
//! Losers go back to monitoring; if the winner dies mid-promotion the next
//! timeout triggers a fresh election at a higher epoch.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use flexlog_simnet::{Endpoint, NodeId, RecvError};
use flexlog_types::Epoch;

use crate::msg::{OrderMsg, OrderWire};
use crate::{Directory, SequencerConfig, SequencerNode};

/// Configuration of a backup node.
#[derive(Clone, Debug)]
pub struct BackupConfig {
    /// The sequencer position this backup protects — assumed on promotion.
    pub sequencer: SequencerConfig,
    /// The *other* backups of the same position.
    pub peers: Vec<NodeId>,
    /// Data-layer replicas that must acknowledge a new sequencer before it
    /// serves (all replicas of the shards attached to this position).
    pub replicas_to_init: Vec<NodeId>,
    /// How long to collect candidacies before deciding.
    pub election_window: Duration,
}

/// See module docs.
pub struct BackupNode {
    config: BackupConfig,
    directory: Directory,
    known_epoch: Epoch,
    /// Live peer backups. A peer that becomes the leader (observed through
    /// its heartbeats / epoch replication) leaves this set — it is no longer
    /// part of the backup group, so later elections do not wait for it.
    peers: Vec<NodeId>,
}

enum Phase {
    Monitoring,
    Electing { bids: Vec<(Epoch, NodeId)>, deadline: Instant },
}

impl BackupNode {
    pub fn new(config: BackupConfig, directory: Directory) -> Self {
        let peers = config.peers.clone();
        BackupNode {
            config,
            directory,
            known_epoch: Epoch(1),
            peers,
        }
    }

    fn note_leader(&mut self, leader: NodeId) {
        self.peers.retain(|&p| p != leader);
    }

    /// Runs the backup loop. If this node wins an election it *becomes* the
    /// sequencer on the same endpoint and only returns when that sequencer
    /// stops.
    pub fn run<W: OrderWire>(mut self, ep: Endpoint<W>) {
        let delta = self.config.sequencer.delta;
        let mut last_leader_sign = Instant::now();
        let mut phase = Phase::Monitoring;

        loop {
            match ep.recv_timeout(delta / 4) {
                Ok((from, wire)) => {
                    let Some(msg) = wire.into_order() else { continue };
                    match msg {
                        OrderMsg::Shutdown => return,
                        OrderMsg::Heartbeat { epoch } if epoch >= self.known_epoch => {
                            self.note_leader(from);
                            self.known_epoch = epoch;
                            last_leader_sign = Instant::now();
                            phase = Phase::Monitoring;
                            let _ = ep.send(
                                from,
                                W::from_order(OrderMsg::HeartbeatAck { epoch }),
                            );
                        }
                        // Stale-epoch heartbeats get no ack: the old
                        // leader starves of majorities and self-demotes.
                        OrderMsg::Heartbeat { .. } => {}
                        OrderMsg::ReplicateEpoch { epoch } => {
                            if epoch > self.known_epoch {
                                self.known_epoch = epoch;
                            }
                            self.note_leader(from);
                            last_leader_sign = Instant::now();
                            let _ = ep.send(from, W::from_order(OrderMsg::EpochAck { epoch }));
                        }
                        OrderMsg::Candidacy { epoch, id } => {
                            match &mut phase {
                                Phase::Electing { bids, .. } => bids.push((epoch, id)),
                                Phase::Monitoring => {
                                    // A peer detected the failure first:
                                    // join the election immediately.
                                    let deadline =
                                        Instant::now() + self.config.election_window;
                                    let mut bids = vec![(self.known_epoch, ep.id()), (epoch, id)];
                                    let _ = ep.broadcast(
                                        &self.peers,
                                        W::from_order(OrderMsg::Candidacy {
                                            epoch: self.known_epoch,
                                            id: ep.id(),
                                        }),
                                    );
                                    bids.sort();
                                    phase = Phase::Electing { bids, deadline };
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => return,
            }

            match &mut phase {
                Phase::Monitoring => {
                    if Instant::now() - last_leader_sign > delta {
                        // Leader presumed dead: open an election.
                        let _ = ep.broadcast(
                            &self.peers,
                            W::from_order(OrderMsg::Candidacy {
                                epoch: self.known_epoch,
                                id: ep.id(),
                            }),
                        );
                        phase = Phase::Electing {
                            bids: vec![(self.known_epoch, ep.id())],
                            deadline: Instant::now() + self.config.election_window,
                        };
                    }
                }
                Phase::Electing { bids, deadline } => {
                    if Instant::now() >= *deadline {
                        // Highest (epoch, node-id) wins (§5.2).
                        let winner = bids.iter().max().copied().expect("own bid present");
                        let max_epoch = bids.iter().map(|&(e, _)| e).max().unwrap();
                        if self.known_epoch < max_epoch {
                            self.known_epoch = max_epoch;
                        }
                        if winner.1 == ep.id() {
                            match self.promote(&ep) {
                                Promotion::Became(seq) => {
                                    // Transition in place: same node id, new
                                    // role. Returns when the sequencer stops.
                                    return (*seq).run(ep);
                                }
                                Promotion::Aborted => {
                                    // Could not reach a majority: back to
                                    // monitoring (maybe partitioned away).
                                    last_leader_sign = Instant::now();
                                    phase = Phase::Monitoring;
                                }
                                Promotion::Stop => return,
                            }
                        } else {
                            // Give the winner time to promote; re-elect on
                            // silence.
                            last_leader_sign = Instant::now();
                            phase = Phase::Monitoring;
                        }
                    }
                }
            }
        }
    }

    /// Promotion: epoch bump → replicate to majority → init replicas →
    /// serve. Returns `Aborted` if a majority of backups is unreachable.
    fn promote<W: OrderWire>(&mut self, ep: &Endpoint<W>) -> Promotion {
        let new_epoch = self.known_epoch.next();
        let total_backups = self.peers.len() + 1; // peers + self
        let acks_needed = (total_backups / 2 + 1).saturating_sub(1); // self counts

        // Phase 1: replicate the epoch to a majority of backups.
        if acks_needed > 0 {
            let mut acked: HashSet<NodeId> = HashSet::new();
            let mut attempts = 0;
            'replicate: loop {
                attempts += 1;
                if attempts > 5 {
                    return Promotion::Aborted;
                }
                let _ = ep.broadcast(
                    &self.peers,
                    W::from_order(OrderMsg::ReplicateEpoch { epoch: new_epoch }),
                );
                let deadline = Instant::now() + self.config.sequencer.delta;
                while Instant::now() < deadline {
                    match ep.recv_timeout(self.config.sequencer.delta / 4) {
                        Ok((from, wire)) => match wire.into_order() {
                            Some(OrderMsg::EpochAck { epoch }) if epoch == new_epoch => {
                                acked.insert(from);
                                if acked.len() >= acks_needed {
                                    break 'replicate;
                                }
                            }
                            Some(OrderMsg::Candidacy { .. }) => {
                                // A competing election: our ReplicateEpoch
                                // broadcast will settle it; ignore.
                            }
                            Some(OrderMsg::Shutdown) => return Promotion::Stop,
                            _ => {}
                        },
                        Err(RecvError::Timeout) => {}
                        Err(RecvError::Disconnected) => return Promotion::Stop,
                    }
                }
            }
        }
        self.known_epoch = new_epoch;

        // Phase 2: initialize the data-layer replicas and wait for *all*
        // acks (§6.3 — guarantees a single active sequencer and that the
        // replicas have completed the previous epoch's messages).
        if !self.config.replicas_to_init.is_empty() {
            let mut acked: HashSet<NodeId> = HashSet::new();
            loop {
                let _ = ep.broadcast(
                    &self.config.replicas_to_init,
                    W::from_order(OrderMsg::InitSequencer {
                        role: self.config.sequencer.role,
                        epoch: new_epoch,
                    }),
                );
                let deadline = Instant::now() + self.config.sequencer.delta * 2;
                while Instant::now() < deadline {
                    match ep.recv_timeout(self.config.sequencer.delta / 4) {
                        Ok((from, wire)) => match wire.into_order() {
                            Some(OrderMsg::InitAck { epoch }) if epoch == new_epoch => {
                                acked.insert(from);
                            }
                            Some(OrderMsg::Shutdown) => return Promotion::Stop,
                            _ => {}
                        },
                        Err(RecvError::Timeout) => {}
                        Err(RecvError::Disconnected) => return Promotion::Stop,
                    }
                    if acked.len() == self.config.replicas_to_init.len() {
                        break;
                    }
                }
                if acked.len() == self.config.replicas_to_init.len() {
                    break;
                }
                // Replica failures block the new sequencer — availability is
                // sacrificed for consistency (§4 fault model). Keep retrying.
            }
        }

        // The promoted node leaves the backup group: the remaining peers are
        // the new backup set it heartbeats.
        let mut cfg = self.config.sequencer.clone();
        cfg.backups = self.peers.clone();
        let seq = SequencerNode::with_epoch(cfg, self.directory.clone(), new_epoch);
        Promotion::Became(Box::new(seq))
    }
}

enum Promotion {
    Became(Box<SequencerNode>),
    Aborted,
    Stop,
}
