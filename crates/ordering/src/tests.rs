//! End-to-end tests of the ordering layer: aggregation, tree routing,
//! multi-color independence, fail-over.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

use flexlog_simnet::{Network, NodeId};
use flexlog_types::{ColorId, Epoch, FunctionId, SeqNum, Token};

use crate::msg::OrderMsg;
use crate::service::request_order;
use crate::{OrderingService, RoleId, TreeSpec};

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

fn client(net: &Network<OrderMsg>, i: u64) -> flexlog_simnet::Endpoint<OrderMsg> {
    net.register(NodeId::named(NodeId::CLASS_CLIENT, i))
}

fn tok(fid: u32, c: u32) -> Token {
    Token::new(FunctionId(fid), c)
}

const RETRY: Duration = Duration::from_millis(500);

#[test]
fn single_sequencer_assigns_monotonic_sns() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let mut last = SeqNum::ZERO;
    for i in 0..50 {
        let sn = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, i), 1, RETRY).unwrap();
        assert!(sn > last, "SNs must strictly increase: {sn:?} after {last:?}");
        last = sn;
    }
    assert_eq!(last.epoch(), Epoch(1));
    h.shutdown(&net);
}

#[test]
fn range_requests_reserve_ranges() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let a = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 1), 5, RETRY).unwrap();
    let b = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 2), 3, RETRY).unwrap();
    assert_eq!(b.counter() - a.counter(), 3, "second batch starts after the first");
    assert_eq!(a.counter(), 5, "first batch ends at its size");
    h.shutdown(&net);
}

#[test]
fn colors_have_independent_counters() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED, GREEN]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let r1 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 1), 1, RETRY).unwrap();
    let g1 = request_order(&ep, &h.directory, RoleId(0), GREEN, tok(1, 2), 1, RETRY).unwrap();
    let r2 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 3), 1, RETRY).unwrap();
    assert_eq!(r1.counter(), 1);
    assert_eq!(g1.counter(), 1, "green has its own counter");
    assert_eq!(r2.counter(), 2);
    h.shutdown(&net);
}

#[test]
fn concurrent_clients_get_disjoint_dense_sns() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());

    let mut handles = Vec::new();
    for c in 0..8u64 {
        let ep = client(&net, c);
        let dir = h.directory.clone();
        handles.push(std::thread::spawn(move || {
            let mut sns = Vec::new();
            for i in 0..25 {
                let sn = request_order(&ep, &dir, RoleId(0), RED, tok(c as u32, i), 1, RETRY)
                    .unwrap();
                sns.push(sn);
            }
            sns
        }));
    }
    let mut all: Vec<SeqNum> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort();
    // 200 requests of 1 record each: SNs are exactly 1..=200, no overlap,
    // no gap (single sequencer, no failures).
    assert_eq!(all.len(), 200);
    for (i, sn) in all.iter().enumerate() {
        assert_eq!(sn.counter() as usize, i + 1);
        assert_eq!(sn.epoch(), Epoch(1));
    }
    h.shutdown(&net);
}

#[test]
fn two_level_tree_routes_to_root() {
    // Two leaves forwarding to a root that owns the color: global total
    // order across both entry points.
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::root_and_leaves(&[RED], &[vec![], vec![]]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());

    let mut handles = Vec::new();
    for (c, leaf) in [(0u64, RoleId(1)), (1u64, RoleId(2))] {
        let ep = client(&net, c);
        let dir = h.directory.clone();
        handles.push(std::thread::spawn(move || {
            (0..30)
                .map(|i| {
                    request_order(&ep, &dir, leaf, RED, tok(c as u32, i), 1, RETRY).unwrap()
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut all: Vec<SeqNum> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 60, "all SNs distinct");
    assert_eq!(all.last().unwrap().counter(), 60, "dense range from the root");
    // Root issued everything; leaves issued nothing themselves.
    assert_eq!(h.stats(RoleId(0)).sns_issued.load(Ordering::Relaxed), 60);
    assert_eq!(h.stats(RoleId(1)).sns_issued.load(Ordering::Relaxed), 0);
    h.shutdown(&net);
}

#[test]
fn leaf_owned_color_is_ordered_locally() {
    // FlexLog-P mode: the leaf owns its color, so the root is never
    // consulted (§9.1's partial-ordering configuration).
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::root_and_leaves(&[ColorId(0)], &[vec![RED]]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    for i in 0..20 {
        request_order(&ep, &h.directory, RoleId(1), RED, tok(1, i), 1, RETRY).unwrap();
    }
    assert_eq!(h.stats(RoleId(1)).sns_issued.load(Ordering::Relaxed), 20);
    assert_eq!(h.stats(RoleId(0)).sns_issued.load(Ordering::Relaxed), 0);
    assert_eq!(h.stats(RoleId(0)).oreqs.load(Ordering::Relaxed), 0);
    h.shutdown(&net);
}

#[test]
fn three_level_chain_works() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::chain(&[RED], 3);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);
    let leaf = spec.leaf_role();
    assert_eq!(leaf, RoleId(2));

    let mut last = SeqNum::ZERO;
    for i in 0..30 {
        let sn = request_order(&ep, &h.directory, leaf, RED, tok(1, i), 1, RETRY).unwrap();
        assert!(sn > last);
        last = sn;
    }
    assert_eq!(last.counter(), 30);
    // Aggregation means the root saw at most as many batches as requests.
    assert!(h.stats(RoleId(2)).forwarded.load(Ordering::Relaxed) <= 30);
    h.shutdown(&net);
}

#[test]
fn aggregation_merges_same_color_oreqs() {
    // With a large batching interval, concurrent OReqs must merge into few
    // upstream batches (the §5.2 aggregation mechanism).
    let net: Network<OrderMsg> = Network::instant();
    let mut spec = TreeSpec::root_and_leaves(&[RED], &[vec![]]);
    spec.batch_interval = Duration::from_millis(30);
    let h = OrderingService::start(&net, &spec, &HashMap::new());

    let mut handles = Vec::new();
    for c in 0..6u64 {
        let ep = client(&net, c);
        let dir = h.directory.clone();
        handles.push(std::thread::spawn(move || {
            request_order(&ep, &dir, RoleId(1), RED, tok(c as u32, 0), 1, RETRY).unwrap()
        }));
    }
    let mut sns: Vec<SeqNum> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    sns.sort();
    sns.dedup();
    assert_eq!(sns.len(), 6, "every client got a distinct SN");
    let forwarded = h.stats(RoleId(1)).forwarded.load(Ordering::Relaxed);
    assert!(
        forwarded < 6,
        "6 concurrent OReqs should merge into fewer upstream batches, got {forwarded}"
    );
    h.shutdown(&net);
}

#[test]
fn duplicate_oreq_is_ignored() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);
    let leaf = h.node_for(RoleId(0)).unwrap();

    // Send the same token three times; then a fresh request. The counter
    // must only have advanced by 2 (one per unique token).
    for _ in 0..3 {
        ep.send(
            leaf,
            OrderMsg::OReq {
                color: RED,
                token: tok(1, 1),
                nrecords: 1,
                shard: vec![ep.id()],
            },
        )
        .unwrap();
    }
    // First response.
    let first = loop {
        if let (_, OrderMsg::OResp { token, last_sn }) =
            ep.recv_timeout(Duration::from_secs(2)).unwrap()
        {
            if token == tok(1, 1) {
                break last_sn;
            }
        }
    };
    let second =
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 2), 1, RETRY).unwrap();
    assert_eq!(first.counter(), 1);
    assert_eq!(second.counter(), 2, "duplicates must not burn SNs");
    h.shutdown(&net);
}

#[test]
fn failover_elects_backup_and_bumps_epoch() {
    let net: Network<OrderMsg> = Network::instant();
    let mut spec = TreeSpec::single(&[RED]);
    spec.backups_per_position = 2;
    spec.heartbeat_interval = Duration::from_millis(10);
    spec.delta = Duration::from_millis(60);
    spec.election_window = Duration::from_millis(30);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let before =
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 1), 1, RETRY).unwrap();
    assert_eq!(before.epoch(), Epoch(1));

    let old_leader = h.node_for(RoleId(0)).unwrap();
    h.crash_leader(&net, RoleId(0));

    // The client keeps retrying; a backup must take over.
    let after =
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 2), 1, RETRY).unwrap();
    assert!(after.epoch() > Epoch(1), "epoch must bump on fail-over: {after:?}");
    assert!(after > before, "SNs keep increasing across fail-over");
    let new_leader = h.node_for(RoleId(0)).unwrap();
    assert_ne!(new_leader, old_leader);
    assert_eq!(new_leader.class(), NodeId::CLASS_BACKUP);

    // And the new sequencer keeps serving.
    let again =
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 3), 1, RETRY).unwrap();
    assert!(again > after);
    h.shutdown(&net);
}

#[test]
fn epoch_bump_resets_per_color_counters_exactly_once() {
    // After a fail-over the promoted sequencer starts a fresh epoch and
    // fresh per-color counters (SN = epoch << 32 | counter, so uniqueness
    // survives the reset). The reset must happen exactly once: the first
    // post-fail-over SN of each color restarts at 1, and subsequent SNs
    // keep counting within the same epoch rather than resetting again.
    let net: Network<OrderMsg> = Network::instant();
    let mut spec = TreeSpec::single(&[RED, GREEN]);
    spec.backups_per_position = 2;
    spec.heartbeat_interval = Duration::from_millis(10);
    spec.delta = Duration::from_millis(60);
    spec.election_window = Duration::from_millis(30);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    // Advance both colors past 1 in the first epoch.
    for i in 0..3 {
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, i), 1, RETRY).unwrap();
    }
    for i in 10..12 {
        request_order(&ep, &h.directory, RoleId(0), GREEN, tok(1, i), 1, RETRY).unwrap();
    }

    h.crash_leader(&net, RoleId(0));

    let red1 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 20), 1, RETRY).unwrap();
    assert!(red1.epoch() > Epoch(1), "fail-over must bump the epoch");
    assert_eq!(red1.counter(), 1, "RED counter resets with the new epoch");
    let green1 =
        request_order(&ep, &h.directory, RoleId(0), GREEN, tok(1, 21), 1, RETRY).unwrap();
    assert_eq!(green1.epoch(), red1.epoch(), "one epoch bump serves both colors");
    assert_eq!(green1.counter(), 1, "GREEN counter resets too");

    // Exactly once: the next SNs of the same epoch continue, not reset.
    let red2 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 22), 1, RETRY).unwrap();
    assert_eq!(red2.epoch(), red1.epoch());
    assert_eq!(red2.counter(), 2, "no second reset within the epoch");
    let green2 =
        request_order(&ep, &h.directory, RoleId(0), GREEN, tok(1, 23), 1, RETRY).unwrap();
    assert_eq!(green2.counter(), 2);

    // And the new-epoch SNs still sort after every old-epoch SN.
    assert!(red1 > SeqNum::new(Epoch(1), u32::MAX - 1) || red1.epoch() > Epoch(1));
    h.shutdown(&net);
}

#[test]
fn double_failover_keeps_increasing_epochs() {
    let net: Network<OrderMsg> = Network::instant();
    let mut spec = TreeSpec::single(&[RED]);
    spec.backups_per_position = 2;
    spec.heartbeat_interval = Duration::from_millis(10);
    spec.delta = Duration::from_millis(60);
    spec.election_window = Duration::from_millis(30);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let e1 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 1), 1, RETRY)
        .unwrap()
        .epoch();
    h.crash_leader(&net, RoleId(0));
    let sn2 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 2), 1, RETRY).unwrap();
    h.crash_leader(&net, RoleId(0));
    let sn3 = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 3), 1, RETRY).unwrap();
    assert!(sn2.epoch() > e1);
    assert!(sn3.epoch() > sn2.epoch());
    assert!(sn3 > sn2);
    h.shutdown(&net);
}

#[test]
fn partitioned_leader_self_demotes() {
    let net: Network<OrderMsg> = Network::instant();
    let mut spec = TreeSpec::single(&[RED]);
    spec.backups_per_position = 2;
    spec.heartbeat_interval = Duration::from_millis(10);
    spec.delta = Duration::from_millis(50);
    spec.election_window = Duration::from_millis(25);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let old_leader = h.node_for(RoleId(0)).unwrap();
    // Cut the leader off from its backups (but not from clients).
    let backups = h.backup_nodes(RoleId(0)).to_vec();
    let group_b: Vec<NodeId> = backups.clone();
    net.partition(&[&[old_leader], &group_b]);

    // Backups elect a replacement; old leader (losing heartbeat majority)
    // shuts down. Wait for the takeover.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let current = h.node_for(RoleId(0));
        if current.is_some() && current != Some(old_leader) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no backup took over; directory still {current:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    net.heal();
    let sn = request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 9), 1, RETRY).unwrap();
    assert!(sn.epoch() > Epoch(1));
    h.shutdown(&net);
}

#[test]
fn stats_track_oreqs_and_batches() {
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);
    for i in 0..10 {
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, i), 2, RETRY).unwrap();
    }
    let stats = h.stats(RoleId(0));
    assert_eq!(stats.oreqs.load(Ordering::Relaxed), 10);
    assert_eq!(stats.sns_issued.load(Ordering::Relaxed), 20);
    assert!(stats.batches.load(Ordering::Relaxed) >= 1);
    h.shutdown(&net);
}

#[test]
fn dynamically_registered_color_is_ordered_by_its_owner() {
    // AddColor's ordering-layer half: a color registered in the shared
    // ColorRegistry after start-up is immediately orderable, by exactly
    // the sequencer the registry names.
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::root_and_leaves(&[RED], &[vec![]]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);

    let dynamic = ColorId(42);
    // Not registered yet: an OReq for it entering the leaf climbs to the
    // root, which does not own it either → dropped; the client would spin.
    spec.registry.set(dynamic, RoleId(1)); // leaf-owned (FlexLog-P style)
    let sn = request_order(&ep, &h.directory, RoleId(1), dynamic, tok(1, 1), 1, RETRY).unwrap();
    assert_eq!(sn.counter(), 1);
    // The leaf (not the root) issued it.
    assert_eq!(
        h.stats(RoleId(1)).sns_issued.load(Ordering::Relaxed),
        1
    );
    assert_eq!(h.stats(RoleId(0)).sns_issued.load(Ordering::Relaxed), 0);

    // Re-homing to the root moves the serialization point but counters are
    // per-(sequencer,color): the root starts its own counter for the color
    // in the same epoch — still unique because tokens dedup and the paper
    // only re-homes colors under a new epoch in practice.
    spec.registry.set(ColorId(43), RoleId(0));
    let sn2 = request_order(&ep, &h.directory, RoleId(1), ColorId(43), tok(1, 2), 1, RETRY)
        .unwrap();
    assert_eq!(sn2.counter(), 1);
    assert_eq!(h.stats(RoleId(0)).sns_issued.load(Ordering::Relaxed), 1);
    h.shutdown(&net);
}

#[test]
fn oreq_resend_after_answer_replays_same_sn() {
    // A replica that missed the OResp broadcast re-sends its OReq; the
    // sequencer must replay the *same* SN rather than assigning a new one.
    let net: Network<OrderMsg> = Network::instant();
    let spec = TreeSpec::single(&[RED]);
    let h = OrderingService::start(&net, &spec, &HashMap::new());
    let ep = client(&net, 1);
    let leaf = h.node_for(RoleId(0)).unwrap();

    let first =
        request_order(&ep, &h.directory, RoleId(0), RED, tok(1, 1), 2, RETRY).unwrap();
    // Re-send the identical OReq (as a recovered replica would).
    ep.send(
        leaf,
        OrderMsg::OReq {
            color: RED,
            token: tok(1, 1),
            nrecords: 2,
            shard: vec![ep.id()],
        },
    )
    .unwrap();
    let replay = loop {
        if let (_, OrderMsg::OResp { token, last_sn }) =
            ep.recv_timeout(Duration::from_secs(2)).unwrap()
        {
            if token == tok(1, 1) {
                break last_sn;
            }
        }
    };
    assert_eq!(replay, first, "replayed OResp must carry the original SN");
    h.shutdown(&net);
}
