//! Model-based property tests of the tiered storage server: random
//! stage/commit/get/scan/trim sequences with power failures, against a
//! simple in-memory model of the committed log. Uses a tiny configuration
//! so the SSD spill path is constantly exercised.

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;

use flexlog_storage::{StorageConfig, StorageServer};
use flexlog_types::{ColorId, Epoch, FunctionId, Payload, SeqNum, Token};

const COLORS: [ColorId; 2] = [ColorId(1), ColorId(2)];

#[derive(Clone, Debug)]
enum Op {
    /// Stage a batch of `n` records under a fresh token for color c.
    Stage { color: u8, n: u8 },
    /// Commit the i-th oldest staged token at the next counter.
    CommitOldest,
    Get { color: u8, counter: u16 },
    Scan { color: u8 },
    Trim { color: u8, upto: u16 },
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..2, 1u8..4).prop_map(|(color, n)| Op::Stage { color, n }),
        4 => Just(Op::CommitOldest),
        3 => (0u8..2, any::<u16>()).prop_map(|(color, counter)| Op::Get { color, counter }),
        1 => (0u8..2).prop_map(|color| Op::Scan { color }),
        1 => (0u8..2, any::<u16>()).prop_map(|(color, upto)| Op::Trim { color, upto }),
        1 => Just(Op::CrashRecover),
    ]
}

fn tiny() -> StorageConfig {
    StorageConfig {
        pm_capacity: 512 << 10,
        cache_capacity: 2 << 10,
        pm_watermark: 24 << 10,
        spill_batch: 4,
        ..Default::default()
    }
}

struct Model {
    /// Committed: (color idx) → counter → payload.
    committed: [BTreeMap<u32, Vec<u8>>; 2],
    heads: [u32; 2],
    /// Staged tokens in order: (token, color idx, payload count).
    staged: Vec<(Token, usize, u8)>,
    next_counter: [u32; 2],
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn storage_matches_model_across_crashes(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut server = StorageServer::new(tiny());
        let mut model = Model {
            committed: [BTreeMap::new(), BTreeMap::new()],
            heads: [0, 0],
            staged: Vec::new(),
            next_counter: [0, 0],
        };
        let mut token_counter = 0u32;
        let payload_of = |tok: Token, i: u8| format!("{:x}-{i}", tok.0).into_bytes();

        for op in ops {
            match op {
                Op::Stage { color, n } => {
                    token_counter += 1;
                    let tok = Token::new(FunctionId(1), token_counter);
                    let payloads: Vec<Payload> =
                        (0..n).map(|i| Payload::from(payload_of(tok, i))).collect();
                    assert!(server.stage(tok, COLORS[color as usize], &payloads).unwrap());
                    model.staged.push((tok, color as usize, n));
                }
                Op::CommitOldest => {
                    let Some((tok, c, n)) = model.staged.first().copied() else { continue };
                    model.staged.remove(0);
                    // Assign the next n counters of the color.
                    let last = model.next_counter[c] + n as u32;
                    model.next_counter[c] = last;
                    server.commit(tok, SeqNum::new(Epoch(1), last)).unwrap();
                    for i in 0..n {
                        model.committed[c]
                            .insert(last - (n - 1 - i) as u32, payload_of(tok, i));
                    }
                }
                Op::Get { color, counter } => {
                    let c = color as usize;
                    let counter = if model.next_counter[c] == 0 {
                        1
                    } else {
                        (counter as u32 % (model.next_counter[c] + 2)).max(1)
                    };
                    let got = server
                        .get(COLORS[c], SeqNum::new(Epoch(1), counter))
                        .map(|p| p.to_vec());
                    let want = if counter <= model.heads[c] {
                        None
                    } else {
                        model.committed[c].get(&counter).cloned()
                    };
                    prop_assert_eq!(got, want, "get({}, {}) diverged", c, counter);
                }
                Op::Scan { color } => {
                    let c = color as usize;
                    let got = server.scan(COLORS[c], SeqNum::ZERO).unwrap();
                    let want: Vec<(u32, &Vec<u8>)> = model.committed[c]
                        .iter()
                        .filter(|(&k, _)| k > model.heads[c])
                        .map(|(&k, v)| (k, v))
                        .collect();
                    prop_assert_eq!(got.len(), want.len(), "scan length diverged");
                    for (g, (k, v)) in got.iter().zip(&want) {
                        prop_assert_eq!(g.sn.counter(), *k);
                        prop_assert_eq!(g.payload.as_slice(), v.as_slice());
                    }
                }
                Op::Trim { color, upto } => {
                    let c = color as usize;
                    if model.next_counter[c] == 0 {
                        continue;
                    }
                    let upto = (upto as u32 % model.next_counter[c]).max(1);
                    server.trim(COLORS[c], SeqNum::new(Epoch(1), upto)).unwrap();
                    model.heads[c] = model.heads[c].max(upto);
                }
                Op::CrashRecover => {
                    let (pm, ssd) = server.devices();
                    pm.crash();
                    ssd.crash();
                    drop(server);
                    server = StorageServer::recover(pm, ssd, tiny());
                    // Committed + staged state must have survived.
                    let staged_now: HashMap<Token, (ColorId, usize)> = server
                        .staged_tokens()
                        .into_iter()
                        .map(|(t, c, n)| (t, (c, n)))
                        .collect();
                    prop_assert_eq!(staged_now.len(), model.staged.len(),
                        "staged set diverged after crash");
                    for (tok, c, n) in &model.staged {
                        prop_assert_eq!(
                            staged_now.get(tok).copied(),
                            Some((COLORS[*c], *n as usize)),
                            "staged token {:?} diverged", tok
                        );
                    }
                }
            }
        }

        // Final sweep: every committed live record readable, trimmed gone.
        for (c, &color) in COLORS.iter().enumerate() {
            for (&k, v) in &model.committed[c] {
                let got = server
                    .get(color, SeqNum::new(Epoch(1), k))
                    .map(|p| p.to_vec());
                if k <= model.heads[c] {
                    prop_assert_eq!(got, None, "trimmed {} visible", k);
                } else {
                    prop_assert_eq!(got.as_ref(), Some(v), "final get({}) diverged", k);
                }
            }
        }
    }
}
