//! Byte-bounded LRU cache — the DRAM tier of a replica's storage stack.
//!
//! The paper's read path consults this volatile cache before PM and SSD
//! (§5.2). Eviction is strict LRU on access order; capacity is counted in
//! payload bytes so large records displace proportionally more entries,
//! matching a real DRAM budget. A DRAM access cost (~80 ns) is charged via
//! the owning server's clock by the caller; the cache itself is pure data
//! structure.
//!
//! Values are zero-copy [`Payload`]s: a cache fill stores an `Arc` clone of
//! the committed record's buffer and a hit hands the same buffer back, so
//! the DRAM tier never duplicates record bytes (the byte budget counts the
//! shared buffer once per entry).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use flexlog_obs::Counter;
use flexlog_types::Payload;

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A strict-LRU cache bounded by total value bytes.
pub struct LruCache<K> {
    capacity_bytes: usize,
    used_bytes: usize,
    /// key → (value, lru stamp)
    map: HashMap<K, (Payload, u64)>,
    /// lru stamp → key (oldest first)
    order: BTreeMap<u64, K>,
    next_stamp: u64,
    stats: CacheStats,
    /// Optional registry-backed mirror of `stats.evictions`, so eviction
    /// pressure shows up on the cluster metrics surface.
    evictions: Option<Counter>,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache bounded to `capacity_bytes` of values.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
            evictions: None,
        }
    }

    /// Mirrors eviction counts into a registry counter.
    pub fn set_eviction_counter(&mut self, counter: Counter) {
        self.evictions = Some(counter);
    }

    /// Inserts (or refreshes) `key`, evicting LRU entries as needed. Values
    /// larger than the whole capacity are not cached at all.
    pub fn put(&mut self, key: K, value: impl Into<Payload>) {
        let value = value.into();
        if value.len() > self.capacity_bytes {
            // Would immediately evict everything for a single uncacheable
            // record; skip (mirrors real caches bypassing huge objects).
            return;
        }
        self.remove(&key);
        while self.used_bytes + value.len() > self.capacity_bytes {
            let Some((&stamp, _)) = self.order.iter().next() else {
                break;
            };
            let old_key = self.order.remove(&stamp).expect("stamp present");
            if let Some((old_val, _)) = self.map.remove(&old_key) {
                self.used_bytes -= old_val.len();
                self.stats.evictions += 1;
                if let Some(c) = &self.evictions {
                    c.inc();
                }
            }
        }
        let stamp = self.bump();
        self.used_bytes += value.len();
        self.order.insert(stamp, key.clone());
        self.map.insert(key, (value, stamp));
    }

    /// Looks up `key`, refreshing its recency on hit. A hit returns an `Arc`
    /// clone of the cached buffer — no byte copy.
    pub fn get(&mut self, key: &K) -> Option<Payload> {
        let stamp = self.bump();
        match self.map.get_mut(key) {
            Some((value, old_stamp)) => {
                self.order.remove(old_stamp);
                self.order.insert(stamp, key.clone());
                *old_stamp = stamp;
                self.stats.hits += 1;
                Some(value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Removes `key` if present.
    pub fn remove(&mut self, key: &K) {
        if let Some((value, stamp)) = self.map.remove(key) {
            self.order.remove(&stamp);
            self.used_bytes -= value.len();
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used_bytes = 0;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of cached values.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut c = LruCache::new(1024);
        c.put("a", b"alpha".to_vec());
        assert_eq!(c.get(&"a").unwrap(), b"alpha");
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn hit_shares_the_cached_buffer() {
        let mut c = LruCache::new(1024);
        c.put(1, Payload::from(vec![9u8; 16]));
        let a = c.get(&1).unwrap();
        let b = c.get(&1).unwrap();
        assert!(
            std::ptr::eq(a.as_slice(), b.as_slice()),
            "hits must return the same shared buffer"
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(10);
        c.put(1, vec![0; 4]);
        c.put(2, vec![0; 4]);
        // Touch 1 so 2 becomes LRU.
        c.get(&1);
        c.put(3, vec![0; 4]); // forces eviction of 2
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none());
        assert!(c.get(&3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let mut c = LruCache::new(100);
        for i in 0..20u32 {
            c.put(i, vec![0; 30]);
        }
        assert!(c.used_bytes() <= 100);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let mut c = LruCache::new(10);
        c.put(1, vec![0; 5]);
        c.put(2, vec![0; 100]);
        assert!(c.get(&2).is_none());
        assert!(c.get(&1).is_some(), "existing entries must survive");
    }

    #[test]
    fn overwrite_updates_bytes() {
        let mut c = LruCache::new(100);
        c.put(1, vec![0; 50]);
        c.put(1, vec![0; 20]);
        assert_eq!(c.used_bytes(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(100);
        c.put(1, vec![0; 10]);
        c.put(2, vec![0; 10]);
        c.remove(&1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn lru_order_many_operations() {
        let mut c = LruCache::new(5 * 8);
        for i in 0..5u32 {
            c.put(i, vec![0; 8]);
        }
        // Refresh 0 and 1; inserting two more must evict 2 and 3.
        c.get(&0);
        c.get(&1);
        c.put(5, vec![0; 8]);
        c.put(6, vec![0; 8]);
        assert!(c.get(&0).is_some());
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none());
        assert!(c.get(&3).is_none());
        assert!(c.get(&4).is_some());
    }
}
