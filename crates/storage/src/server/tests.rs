use super::*;
use flexlog_types::{Epoch, FunctionId};

fn sn(c: u32) -> SeqNum {
    SeqNum::new(Epoch(1), c)
}

fn tok(c: u32) -> Token {
    Token::new(FunctionId(1), c)
}

/// Shorthand: build a [`Payload`] from anything byte-like.
fn pl(bytes: impl Into<Payload>) -> Payload {
    bytes.into()
}

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

fn server() -> StorageServer {
    StorageServer::new(StorageConfig::default())
}

#[test]
fn stage_then_commit_makes_record_readable() {
    let s = server();
    assert!(s.stage(tok(1), RED, &[pl(b"hello")]).unwrap());
    // Staged but uncommitted: not discoverable.
    assert_eq!(s.get(RED, sn(5)), None);
    assert!(s.commit(tok(1), sn(5)).unwrap());
    assert_eq!(s.get(RED, sn(5)).unwrap(), b"hello");
}

#[test]
fn stage_is_idempotent() {
    let s = server();
    assert!(s.stage(tok(1), RED, &[pl(b"a")]).unwrap());
    assert!(!s.stage(tok(1), RED, &[pl(b"a")]).unwrap());
    s.commit(tok(1), sn(1)).unwrap();
    // Re-staging a committed token is also a no-op.
    assert!(!s.stage(tok(1), RED, &[pl(b"a")]).unwrap());
}

#[test]
fn commit_is_idempotent() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"a")]).unwrap();
    assert!(s.commit(tok(1), sn(1)).unwrap());
    assert!(!s.commit(tok(1), sn(1)).unwrap());
    assert_eq!(s.committed_sn(tok(1)), Some(sn(1)));
}

#[test]
fn commit_unknown_token_errors() {
    let s = server();
    assert_eq!(
        s.commit(tok(9), sn(1)),
        Err(StorageError::UnknownToken(tok(9)))
    );
}

#[test]
fn commit_many_coalesces_batches() {
    let s = server();
    for i in 1..=5u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
    }
    let items: Vec<(Token, SeqNum)> = (1..=5u32).map(|i| (tok(i), sn(i))).collect();
    let results = s.commit_many(&items);
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| *r == Ok(true)));
    for i in 1..=5u32 {
        assert_eq!(s.get(RED, sn(i)).unwrap(), vec![i as u8]);
        assert_eq!(s.committed_sn(tok(i)), Some(sn(i)));
    }
    assert_eq!(s.stats.commits.load(Ordering::Relaxed), 5);
}

#[test]
fn commit_many_mixes_valid_duplicate_and_unknown() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"a")]).unwrap();
    s.stage(tok(2), GREEN, &[pl(b"b")]).unwrap();
    s.commit(tok(2), sn(1)).unwrap();
    let results = s.commit_many(&[
        (tok(1), sn(1)), // valid
        (tok(2), sn(1)), // already committed
        (tok(3), sn(2)), // never staged
        (tok(1), sn(1)), // duplicate of a valid item in the same call
    ]);
    assert_eq!(results[0], Ok(true));
    assert_eq!(results[1], Ok(false));
    assert_eq!(results[2], Err(StorageError::UnknownToken(tok(3))));
    assert_eq!(results[3], Ok(false));
    assert_eq!(s.get(RED, sn(1)).unwrap(), b"a");
}

#[test]
fn batch_commit_assigns_consecutive_sns() {
    let s = server();
    let batch = vec![pl(b"r0"), pl(b"r1"), pl(b"r2")];
    s.stage(tok(1), RED, &batch).unwrap();
    // Sequencer assigned the range ending at counter 10.
    s.commit(tok(1), sn(10)).unwrap();
    assert_eq!(s.get(RED, sn(8)).unwrap(), b"r0");
    assert_eq!(s.get(RED, sn(9)).unwrap(), b"r1");
    assert_eq!(s.get(RED, sn(10)).unwrap(), b"r2");
    assert_eq!(s.record_count(RED), 3);
}

#[test]
fn colors_are_disjoint() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"red")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.stage(tok(2), GREEN, &[pl(b"green")]).unwrap();
    s.commit(tok(2), sn(1)).unwrap();
    assert_eq!(s.get(RED, sn(1)).unwrap(), b"red");
    assert_eq!(s.get(GREEN, sn(1)).unwrap(), b"green");
}

#[test]
fn get_missing_sn_is_none() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"x")]).unwrap();
    s.commit(tok(1), sn(3)).unwrap();
    assert_eq!(s.get(RED, sn(2)), None, "hole before the record");
    assert_eq!(s.get(RED, sn(4)), None, "past the tail");
    assert_eq!(s.get(GREEN, sn(3)), None, "wrong color");
}

#[test]
fn read_path_hits_cache_then_pm() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"warm")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    // Commit primes the cache.
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Cache);
    // Evict by filling the cache with other records.
    for i in 2..2000u32 {
        s.stage(tok(i), RED, &[pl(vec![0u8; 1024])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let (v, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(v, b"warm");
    assert_eq!(hit, TierHit::Pm);
    // And now it is cached again.
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Cache);
}

#[test]
fn cache_hits_share_one_buffer() {
    // The zero-copy contract of the DRAM tier: repeated cache hits hand out
    // the same underlying allocation, not fresh copies.
    let s = server();
    s.stage(tok(1), RED, &[pl(vec![7u8; 64])]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    let a = s.get(RED, sn(1)).unwrap();
    let b = s.get(RED, sn(1)).unwrap();
    assert!(
        std::ptr::eq(a.as_slice(), b.as_slice()),
        "cache hits must share the cached allocation"
    );
}

#[test]
fn watermark_spills_oldest_to_ssd() {
    let s = StorageServer::new(StorageConfig::tiny());
    // Write well past the 32 KiB watermark with 1 KiB records.
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8; 1024])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    assert!(s.ssd_resident(RED) > 0, "spill must have happened");
    assert!(s.stats.spilled_records.load(Ordering::Relaxed) > 0);
    // Every record is still readable, wherever it lives.
    for i in 1..=100u32 {
        assert_eq!(s.get(RED, sn(i)).unwrap(), vec![i as u8; 1024], "sn {i}");
    }
    // The oldest record must be on SSD (cache was evicted long ago for it).
    s.clear_cache();
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Ssd);
}

#[test]
fn trim_deletes_prefix_and_reports_head_tail() {
    let s = server();
    for i in 1..=10u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let (head, tail) = s.trim(RED, sn(4)).unwrap();
    assert_eq!(head, Some(sn(4)));
    assert_eq!(tail, Some(sn(10)));
    assert_eq!(s.get(RED, sn(4)), None);
    assert_eq!(s.get(RED, sn(3)), None);
    assert_eq!(s.get(RED, sn(5)).unwrap(), vec![5u8]);
    assert_eq!(s.record_count(RED), 6);
}

#[test]
fn trim_prunes_committed_token_map() {
    // The idempotence map must track the live log, not its whole history —
    // otherwise every append ever made stays resident forever.
    let s = server();
    for i in 1..=10u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    s.stage(tok(100), GREEN, &[pl(b"other-color")]).unwrap();
    s.commit(tok(100), sn(2)).unwrap();
    assert_eq!(s.committed_token_count(), 11);
    s.trim(RED, sn(6)).unwrap();
    // Tokens 1..=6 fell behind RED's head; GREEN's token is untouched.
    assert_eq!(s.committed_token_count(), 5);
    for i in 1..=6u32 {
        assert_eq!(s.committed_sn(tok(i)), None, "token {i} must be pruned");
    }
    for i in 7..=10u32 {
        assert_eq!(s.committed_sn(tok(i)), Some(sn(i)));
    }
    assert_eq!(s.committed_sn(tok(100)), Some(sn(2)));
    // Trimming everything empties the map.
    s.trim(RED, sn(10)).unwrap();
    s.trim(GREEN, sn(2)).unwrap();
    assert_eq!(s.committed_token_count(), 0);
}

#[test]
fn trim_prunes_only_fully_trimmed_batches() {
    // A multi-record batch's token maps to its *last* SN; the token must
    // survive until the whole batch is behind the head.
    let s = server();
    s.stage(tok(1), RED, &[pl(b"a"), pl(b"b"), pl(b"c")]).unwrap();
    s.commit(tok(1), sn(3)).unwrap();
    s.trim(RED, sn(2)).unwrap();
    assert_eq!(s.committed_sn(tok(1)), Some(sn(3)), "batch tail still live");
    s.trim(RED, sn(3)).unwrap();
    assert_eq!(s.committed_sn(tok(1)), None);
}

#[test]
fn trim_covers_ssd_resident_records() {
    let s = StorageServer::new(StorageConfig::tiny());
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[pl(vec![0u8; 1024])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    assert!(s.ssd_resident(RED) > 0);
    s.trim(RED, sn(90)).unwrap();
    assert_eq!(s.record_count(RED), 10);
    for i in 1..=90u32 {
        assert_eq!(s.get(RED, sn(i)), None, "sn {i} must be trimmed");
    }
}

#[test]
fn trim_of_never_appended_color_is_a_noop() {
    let s = server();
    // RED has never seen an append: trimming it must not fabricate a head.
    let (head, tail) = s.trim(RED, sn(100)).unwrap();
    assert_eq!((head, tail), (None, None));
    assert_eq!(s.head(RED), None, "no phantom trim-head entry");
    assert_eq!(s.tail(RED), None);
    // The no-op is per color: a real color is unaffected.
    s.stage(tok(1), GREEN, &[pl(b"g")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.trim(RED, sn(100)).unwrap();
    assert_eq!(s.head(RED), None);
    // And a first append after the bogus trim is fully readable (an
    // installed phantom head at sn(100) would have hidden it).
    s.stage(tok(2), RED, &[pl(b"r")]).unwrap();
    s.commit(tok(2), sn(7)).unwrap();
    assert_eq!(s.get(RED, sn(7)).unwrap(), b"r");
    // Once the color exists, trim works and stays monotonic as before.
    let (head, _) = s.trim(RED, sn(7)).unwrap();
    assert_eq!(head, Some(sn(7)));
}

#[test]
fn install_head_is_durable_and_monotonic() {
    let s = server();
    for i in 1..=5u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    // Migration-import path: adopt the source's trim head without deleting.
    s.install_head(RED, sn(2)).unwrap();
    assert_eq!(s.head(RED), Some(sn(2)));
    assert_eq!(s.get(RED, sn(2)), None, "head filters reads");
    assert_eq!(s.get(RED, sn(3)).unwrap(), vec![3u8]);
    // Never backwards.
    s.install_head(RED, sn(1)).unwrap();
    assert_eq!(s.head(RED), Some(sn(2)));
}

#[test]
fn trim_is_monotonic() {
    let s = server();
    for i in 1..=5u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    s.trim(RED, sn(3)).unwrap();
    // A smaller trim must not move the head backwards.
    let (head, _) = s.trim(RED, sn(1)).unwrap();
    assert_eq!(head, Some(sn(3)));
}

#[test]
fn scan_returns_ordered_records() {
    let s = server();
    for i in [5u32, 1, 9, 3].iter() {
        s.stage(tok(*i), RED, &[pl(vec![*i as u8])]).unwrap();
        s.commit(tok(*i), sn(*i)).unwrap();
    }
    let all = s.scan(RED, SeqNum::ZERO).unwrap();
    let sns: Vec<u32> = all.iter().map(|r| r.sn.counter()).collect();
    assert_eq!(sns, vec![1, 3, 5, 9]);
    let from = s.scan(RED, sn(3)).unwrap();
    assert_eq!(from.len(), 2);
    assert_eq!(from[0].sn, sn(5));
}

#[test]
fn tail_and_max_committed() {
    let s = server();
    assert_eq!(s.tail(RED), None);
    s.stage(tok(1), RED, &[pl(b"a")]).unwrap();
    s.commit(tok(1), sn(7)).unwrap();
    s.stage(tok(2), GREEN, &[pl(b"b")]).unwrap();
    s.commit(tok(2), sn(3)).unwrap();
    assert_eq!(s.tail(RED), Some(sn(7)));
    assert_eq!(s.tail(GREEN), Some(sn(3)));
    assert_eq!(s.max_committed_sn(), Some(sn(7)));
}

#[test]
fn staged_tokens_lists_uncommitted() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"a"), pl(b"b")]).unwrap();
    s.stage(tok(2), GREEN, &[pl(b"c")]).unwrap();
    s.commit(tok(2), sn(1)).unwrap();
    let staged = s.staged_tokens();
    assert_eq!(staged.len(), 1);
    assert_eq!(staged[0], (tok(1), RED, 2));
}

#[test]
fn recovery_preserves_committed_and_staged() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"committed")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.stage(tok(2), RED, &[pl(b"staged-only")]).unwrap();
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.get(RED, sn(1)).unwrap(), b"committed");
    assert_eq!(s2.committed_sn(tok(1)), Some(sn(1)));
    let staged = s2.staged_tokens();
    assert_eq!(staged, vec![(tok(2), RED, 1)]);
    // The staged batch can still be committed after recovery.
    s2.commit(tok(2), sn(2)).unwrap();
    assert_eq!(s2.get(RED, sn(2)).unwrap(), b"staged-only");
}

#[test]
fn recovery_preserves_trim_head() {
    let s = server();
    for i in 1..=6u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    s.trim(RED, sn(3)).unwrap();
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.head(RED), Some(sn(3)));
    assert_eq!(s2.get(RED, sn(2)), None);
    assert_eq!(s2.get(RED, sn(4)).unwrap(), vec![4u8]);
}

#[test]
fn recovery_finds_ssd_resident_records() {
    let s = StorageServer::new(StorageConfig::tiny());
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[pl(vec![i as u8; 1024])]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let spilled = s.ssd_resident(RED);
    assert!(spilled > 0);
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::tiny());
    assert_eq!(s2.record_count(RED), 100);
    assert_eq!(s2.ssd_resident(RED), spilled);
    for i in 1..=100u32 {
        assert_eq!(s2.get(RED, sn(i)).unwrap(), vec![i as u8; 1024]);
    }
}

#[test]
fn crash_before_commit_record_loses_nothing_committed() {
    // A staged-but-uncommitted batch must reappear as staged; committed
    // batches must survive byte-for-byte.
    let s = server();
    for i in 1..=20u32 {
        s.stage(tok(i), RED, &[pl(format!("rec{i}"))]).unwrap();
        if i <= 15 {
            s.commit(tok(i), sn(i)).unwrap();
        }
    }
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    for i in 1..=15u32 {
        assert_eq!(s2.get(RED, sn(i)).unwrap(), format!("rec{i}").into_bytes());
    }
    assert_eq!(s2.staged_tokens().len(), 5);
}

#[test]
fn multi_record_staged_value_roundtrip() {
    let payloads = vec![pl(b""), pl(b"x"), pl(vec![7u8; 300])];
    let enc = encode_staged(ColorId(9), &payloads);
    let dec = decode_staged(&enc);
    assert_eq!(dec.color, ColorId(9));
    assert_eq!(dec.payloads, payloads);
}

#[test]
fn stats_count_tier_hits_and_bytes() {
    let s = server();
    s.stage(tok(1), RED, &[pl(vec![1u8; 100])]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    assert_eq!(s.stats.bytes_appended.load(Ordering::Relaxed), 100);
    s.get(RED, sn(1)); // cache
    s.clear_cache();
    s.get(RED, sn(1)); // pm
    assert_eq!(s.stats.cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(s.stats.cache_misses.load(Ordering::Relaxed), 1);
    assert_eq!(s.stats.pm_hits.load(Ordering::Relaxed), 1);
    assert_eq!(s.stats.bytes_read.load(Ordering::Relaxed), 200);
    assert!((s.stats.cache_hit_rate() - 0.5).abs() < 1e-9);
}

#[test]
fn cache_hit_rate_is_zero_before_any_read() {
    // Regression: with no reads the rate must be 0.0, not NaN/panic from
    // a 0/0 division (guard preserved across the Counter migration).
    let s = server();
    assert_eq!(s.stats.cache_hit_rate(), 0.0);
    // Still 0.0 after writes that never read.
    s.stage(tok(1), RED, &[pl(b"x")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    assert_eq!(s.stats.cache_hit_rate(), 0.0);
    assert!(s.stats.cache_hit_rate().is_finite());
}

#[test]
fn stats_feed_the_shared_registry() {
    // The same counters the server bumps must be visible, aggregated,
    // through the obs registry snapshot.
    let s = server();
    s.stage(tok(1), RED, &[pl(b"abc")]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.get(RED, sn(1));
    let snap = s.obs().snapshot();
    assert_eq!(snap.counter("storage.stages"), 1);
    assert_eq!(snap.counter("storage.commits"), 1);
    assert_eq!(snap.counter("storage.cache_hits"), 1);
    assert_eq!(snap.counter("storage.bytes_appended"), 3);
    let commit = snap.histogram("storage.commit_ns").expect("commit histogram");
    assert_eq!(commit.count, 1);
    assert!(commit.max > 0, "a PM transaction takes nonzero time");
}

#[test]
fn commit_records_storage_commit_trace_events() {
    let s = server();
    s.set_node(0x1234);
    s.stage(tok(5), RED, &[pl(b"p")]).unwrap();
    s.commit(tok(5), sn(1)).unwrap();
    let trace = s.obs().trace(tok(5));
    let ev = trace
        .events
        .iter()
        .find(|e| e.stage == flexlog_obs::Stage::StorageCommit)
        .expect("StorageCommit event traced");
    assert_eq!(ev.node, 0x1234);
    assert_eq!(ev.detail, RED.0 as u64);
}

#[test]
fn scan_with_tokens_returns_tokens() {
    let s = server();
    s.stage(tok(7), RED, &[pl(b"a"), pl(b"b")]).unwrap();
    s.commit(tok(7), sn(2)).unwrap();
    let recs = s.scan_with_tokens(RED, SeqNum::ZERO);
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0], (tok(7), sn(1), pl(b"a")));
    assert_eq!(recs[1], (tok(7), sn(2), pl(b"b")));
}

#[test]
fn import_installs_and_is_idempotent() {
    let s = server();
    assert!(s.import(RED, sn(4), tok(9), &pl(b"synced")).unwrap());
    assert!(!s.import(RED, sn(4), tok(9), &pl(b"synced")).unwrap());
    assert_eq!(s.get(RED, sn(4)).unwrap(), b"synced");
    assert_eq!(s.committed_sn(tok(9)), Some(sn(4)));
    // Imports survive crash.
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.get(RED, sn(4)).unwrap(), b"synced");
}

#[test]
fn import_respects_trim_head() {
    let s = server();
    s.stage(tok(1), RED, &[pl(b"x")]).unwrap();
    s.commit(tok(1), sn(5)).unwrap();
    s.trim(RED, sn(5)).unwrap();
    assert!(!s.import(RED, sn(3), tok(2), &pl(b"old")).unwrap());
    assert_eq!(s.get(RED, sn(3)), None);
}

#[test]
fn concurrent_multi_color_append_read_trim_stress() {
    // Hammer the sharded locks from many threads over many colors: no
    // deadlock, no cross-color index corruption, every committed record
    // readable with the right bytes for its color.
    use std::sync::Barrier;

    const THREADS: u32 = 8;
    const OPS: u32 = 200;

    let s = Arc::new(server());
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // Each thread owns one color and a disjoint token range; other
            // threads' colors are read concurrently.
            let color = ColorId(t + 1);
            barrier.wait();
            for i in 1..=OPS {
                let token = Token::new(FunctionId(t), i);
                let payload = pl(vec![t as u8; 32]);
                assert!(s.stage(token, color, &[payload]).unwrap());
                assert!(s.commit(token, sn(i)).unwrap());
                // Read own history and a neighbour's.
                let got = s.get(color, sn(i)).unwrap();
                assert_eq!(got, vec![t as u8; 32], "own color bytes");
                let other = ColorId((t + 1) % THREADS + 1);
                if let Some(v) = s.get(other, sn(i.saturating_sub(3).max(1))) {
                    assert!(
                        v.iter().all(|&b| b == (other.0 - 1) as u8),
                        "cross-color read must see the other color's bytes"
                    );
                }
                if i % 64 == 0 {
                    s.trim(color, sn(i / 2)).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread must not panic or deadlock");
    }
    for t in 0..THREADS {
        let color = ColorId(t + 1);
        let head = s.head(color).map_or(0, |h| h.counter());
        for i in (head + 1)..=OPS {
            assert_eq!(s.get(color, sn(i)).unwrap(), vec![t as u8; 32]);
        }
    }
}

#[test]
fn concurrent_commit_many_batches_from_many_threads() {
    // Several threads each stage a run of batches and commit them through
    // one commit_many call; all must land exactly once.
    use std::sync::Barrier;

    const THREADS: u32 = 4;
    const BATCHES: u32 = 50;

    let s = Arc::new(server());
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let color = ColorId(t + 1);
            let mut items = Vec::new();
            for i in 1..=BATCHES {
                let token = Token::new(FunctionId(t), i);
                s.stage(token, color, &[pl(vec![t as u8; 16])]).unwrap();
                items.push((token, sn(i)));
            }
            barrier.wait();
            let results = s.commit_many(&items);
            assert!(results.iter().all(|r| *r == Ok(true)));
        }));
    }
    for h in handles {
        h.join().expect("commit thread");
    }
    for t in 0..THREADS {
        assert_eq!(s.record_count(ColorId(t + 1)), BATCHES as usize);
    }
}

mod cold_tier {
    use super::*;
    use flexlog_tier::SimObjectStore;

    fn tiered(segment_records: usize) -> (StorageServer, Arc<SimObjectStore>) {
        let store = Arc::new(SimObjectStore::new(DeviceClock::new(ClockMode::Off)));
        let mut tier = TierConfig::new(store.clone());
        tier.segment_records = segment_records;
        let s = StorageServer::new(StorageConfig {
            tier: Some(tier),
            ..Default::default()
        });
        (s, store)
    }

    /// Commits `n` records into `color` as sn 1..=n with payload `[i; 16]`.
    /// `base` keeps tokens unique across colors within one test.
    fn fill(s: &StorageServer, color: ColorId, n: u32, base: u32) {
        for i in 1..=n {
            s.stage(tok(base + i), color, &[pl(vec![i as u8; 16])]).unwrap();
            s.commit(tok(base + i), sn(i)).unwrap();
        }
    }

    #[test]
    fn trim_archives_then_serves_reads_through() {
        let (s, _store) = tiered(4);
        fill(&s, RED, 10, 0);
        s.trim(RED, sn(8)).unwrap();

        // The prefix left the live tiers but not the log.
        assert_eq!(s.record_count(RED), 2);
        assert_eq!(s.head(RED), Some(sn(8)));
        assert_eq!(s.get(RED, sn(3)).unwrap(), vec![3u8; 16]);
        assert!(s.stats.archive_hits.load(Ordering::Relaxed) > 0);
        assert!(s.stats.archived_records.load(Ordering::Relaxed) >= 8);

        // Replay from genesis: all ten, in order, byte-identical.
        let all = s.scan(RED, SeqNum::ZERO).unwrap();
        assert_eq!(all.len(), 10);
        for (i, rec) in all.iter().enumerate() {
            assert_eq!(rec.sn, sn(i as u32 + 1));
            assert_eq!(rec.payload.as_slice(), &vec![i as u8 + 1; 16][..]);
        }
    }

    #[test]
    fn trim_holds_records_until_upload_is_durable() {
        let (s, store) = tiered(4);
        fill(&s, RED, 10, 0);

        // Store dark: the trim round cannot make anything durable, so the
        // trim must drop nothing — the live tiers are the only copy.
        store.set_outage(true);
        s.trim(RED, sn(8)).unwrap();
        assert_eq!(s.record_count(RED), 10, "outage trim must not drop records");
        assert_eq!(s.head(RED), None);
        assert_eq!(s.get(RED, sn(1)).unwrap(), vec![1u8; 16]);

        // Healed: the retried trim archives, then drops.
        store.set_outage(false);
        s.trim(RED, sn(8)).unwrap();
        assert_eq!(s.record_count(RED), 2);
        assert_eq!(s.get(RED, sn(1)).unwrap(), vec![1u8; 16], "read-through");
    }

    #[test]
    fn partial_round_drops_only_the_durable_prefix() {
        let (s, store) = tiered(4);
        fill(&s, RED, 12, 0);

        // Policy round: archive all but the newest 8 → sn 1..=4 durable.
        assert_eq!(s.archive_prefix(RED, 8, u64::MAX).unwrap(), 4);
        assert_eq!(s.record_count(RED), 8);
        assert_eq!(s.head(RED), Some(sn(4)));

        // A full trim during an outage may only drop what the earlier
        // round already made durable — nothing, since sn 4 is the head.
        store.set_outage(true);
        s.trim(RED, sn(12)).unwrap();
        assert_eq!(s.record_count(RED), 8, "unarchived records must survive");
        assert_eq!(s.head(RED), Some(sn(4)));
        assert_eq!(s.get(RED, sn(6)).unwrap(), vec![6u8; 16], "still live");

        store.set_outage(false);
        s.trim(RED, sn(12)).unwrap();
        assert_eq!(s.record_count(RED), 0);
        let all = s.scan(RED, SeqNum::ZERO).unwrap();
        assert_eq!(all.len(), 12, "fully archived log replays from genesis");
    }

    #[test]
    fn trim_below_archive_boundary_is_a_noop_round() {
        let (s, _store) = tiered(4);
        fill(&s, RED, 12, 0);
        assert_eq!(s.archive_prefix(RED, 4, u64::MAX).unwrap(), 8);
        assert_eq!(s.head(RED), Some(sn(8)));

        // A client trim below (or at) the archived boundary must not panic
        // or regress the head — everything it names is already durable.
        let (head, _) = s.trim(RED, sn(5)).unwrap();
        assert_eq!(head, Some(sn(8)));
        assert_eq!(s.record_count(RED), 4);
    }

    #[test]
    fn archive_reads_bypass_the_dram_cache() {
        let (s, _store) = tiered(4);
        fill(&s, RED, 12, 0);
        fill(&s, GREEN, 4, 100);
        s.trim(RED, sn(12)).unwrap();

        // Warm the hot color, then baseline the cache counters.
        for i in 1..=4u32 {
            assert_eq!(s.get(GREEN, sn(i)).unwrap(), vec![i as u8; 16]);
        }
        let h0 = s.stats.cache_hits.load(Ordering::Relaxed);
        let m0 = s.stats.cache_misses.load(Ordering::Relaxed);

        // Interleave cold replays with hot reads: the replay streams
        // through the archive buffer, never the cache stripes.
        for _ in 0..10 {
            assert_eq!(s.scan(RED, SeqNum::ZERO).unwrap().len(), 12);
            for i in 1..=4u32 {
                assert_eq!(s.get(GREEN, sn(i)).unwrap(), vec![i as u8; 16]);
            }
        }
        let dh = s.stats.cache_hits.load(Ordering::Relaxed) - h0;
        let dm = s.stats.cache_misses.load(Ordering::Relaxed) - m0;
        assert!(dh >= 40, "hot reads must keep hitting DRAM: {dh}");
        assert_eq!(dm, 0, "archive replay must not evict or miss the cache");
        assert!(s.stats.archive_hits.load(Ordering::Relaxed) >= 120);
    }
}

mod tier_roundtrip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Append → read byte-equality through every tier. The same batches
        /// are written to a tiny server (spills to SSD) and read back three
        /// ways: warm cache, cold cache (PM), and after enough volume that
        /// the oldest records live on SSD.
        #[test]
        fn append_read_roundtrip_across_tiers(
            batches in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..600),
                1..12,
            ),
        ) {
            let s = StorageServer::new(StorageConfig::tiny());
            let mut expected: Vec<(SeqNum, Vec<u8>)> = Vec::new();
            for (i, bytes) in batches.iter().enumerate() {
                let c = i as u32 + 1;
                let payload = Payload::from(bytes.clone());
                s.stage(tok(c), RED, &[payload]).unwrap();
                s.commit(tok(c), sn(c)).unwrap();
                expected.push((sn(c), bytes.clone()));
            }
            // Warm: commit primed the cache (unless evicted by volume).
            for (sn, bytes) in &expected {
                prop_assert_eq!(s.get(RED, *sn).unwrap().as_slice(), &bytes[..]);
            }
            // Cold: force PM/SSD reads.
            s.clear_cache();
            for (sn, bytes) in &expected {
                let (v, hit) = s.get_traced(RED, *sn).unwrap();
                prop_assert_eq!(v.as_slice(), &bytes[..]);
                prop_assert!(hit != TierHit::Cache, "cache was cleared");
            }
            // Push the earliest records onto SSD, then re-verify everything.
            for i in 0..64u32 {
                let c = 1000 + i;
                s.stage(tok(c), GREEN, &[pl(vec![0xEE; 1024])]).unwrap();
                s.commit(tok(c), sn(c)).unwrap();
            }
            s.clear_cache();
            for (sn, bytes) in &expected {
                prop_assert_eq!(s.get(RED, *sn).unwrap().as_slice(), &bytes[..]);
            }
        }
    }
}
