use super::*;
use flexlog_types::{Epoch, FunctionId};

fn sn(c: u32) -> SeqNum {
    SeqNum::new(Epoch(1), c)
}

fn tok(c: u32) -> Token {
    Token::new(FunctionId(1), c)
}

const RED: ColorId = ColorId(1);
const GREEN: ColorId = ColorId(2);

fn server() -> StorageServer {
    StorageServer::new(StorageConfig::default())
}

#[test]
fn stage_then_commit_makes_record_readable() {
    let s = server();
    assert!(s.stage(tok(1), RED, &[b"hello".to_vec()]).unwrap());
    // Staged but uncommitted: not discoverable.
    assert_eq!(s.get(RED, sn(5)), None);
    assert!(s.commit(tok(1), sn(5)).unwrap());
    assert_eq!(s.get(RED, sn(5)).unwrap(), b"hello");
}

#[test]
fn stage_is_idempotent() {
    let s = server();
    assert!(s.stage(tok(1), RED, &[b"a".to_vec()]).unwrap());
    assert!(!s.stage(tok(1), RED, &[b"a".to_vec()]).unwrap());
    s.commit(tok(1), sn(1)).unwrap();
    // Re-staging a committed token is also a no-op.
    assert!(!s.stage(tok(1), RED, &[b"a".to_vec()]).unwrap());
}

#[test]
fn commit_is_idempotent() {
    let s = server();
    s.stage(tok(1), RED, &[b"a".to_vec()]).unwrap();
    assert!(s.commit(tok(1), sn(1)).unwrap());
    assert!(!s.commit(tok(1), sn(1)).unwrap());
    assert_eq!(s.committed_sn(tok(1)), Some(sn(1)));
}

#[test]
fn commit_unknown_token_errors() {
    let s = server();
    assert_eq!(
        s.commit(tok(9), sn(1)),
        Err(StorageError::UnknownToken(tok(9)))
    );
}

#[test]
fn batch_commit_assigns_consecutive_sns() {
    let s = server();
    let batch = vec![b"r0".to_vec(), b"r1".to_vec(), b"r2".to_vec()];
    s.stage(tok(1), RED, &batch).unwrap();
    // Sequencer assigned the range ending at counter 10.
    s.commit(tok(1), sn(10)).unwrap();
    assert_eq!(s.get(RED, sn(8)).unwrap(), b"r0");
    assert_eq!(s.get(RED, sn(9)).unwrap(), b"r1");
    assert_eq!(s.get(RED, sn(10)).unwrap(), b"r2");
    assert_eq!(s.record_count(RED), 3);
}

#[test]
fn colors_are_disjoint() {
    let s = server();
    s.stage(tok(1), RED, &[b"red".to_vec()]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.stage(tok(2), GREEN, &[b"green".to_vec()]).unwrap();
    s.commit(tok(2), sn(1)).unwrap();
    assert_eq!(s.get(RED, sn(1)).unwrap(), b"red");
    assert_eq!(s.get(GREEN, sn(1)).unwrap(), b"green");
}

#[test]
fn get_missing_sn_is_none() {
    let s = server();
    s.stage(tok(1), RED, &[b"x".to_vec()]).unwrap();
    s.commit(tok(1), sn(3)).unwrap();
    assert_eq!(s.get(RED, sn(2)), None, "hole before the record");
    assert_eq!(s.get(RED, sn(4)), None, "past the tail");
    assert_eq!(s.get(GREEN, sn(3)), None, "wrong color");
}

#[test]
fn read_path_hits_cache_then_pm() {
    let s = server();
    s.stage(tok(1), RED, &[b"warm".to_vec()]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    // Commit primes the cache.
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Cache);
    // Evict by filling the cache with other records.
    for i in 2..2000u32 {
        s.stage(tok(i), RED, &[vec![0u8; 1024]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let (v, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(v, b"warm");
    assert_eq!(hit, TierHit::Pm);
    // And now it is cached again.
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Cache);
}

#[test]
fn watermark_spills_oldest_to_ssd() {
    let s = StorageServer::new(StorageConfig::tiny());
    // Write well past the 32 KiB watermark with 1 KiB records.
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[vec![i as u8; 1024]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    assert!(s.ssd_resident(RED) > 0, "spill must have happened");
    assert!(s.stats.spilled_records.load(Ordering::Relaxed) > 0);
    // Every record is still readable, wherever it lives.
    for i in 1..=100u32 {
        assert_eq!(s.get(RED, sn(i)).unwrap(), vec![i as u8; 1024], "sn {i}");
    }
    // The oldest record must be on SSD (cache was evicted long ago for it).
    s.cache.lock().clear();
    let (_, hit) = s.get_traced(RED, sn(1)).unwrap();
    assert_eq!(hit, TierHit::Ssd);
}

#[test]
fn trim_deletes_prefix_and_reports_head_tail() {
    let s = server();
    for i in 1..=10u32 {
        s.stage(tok(i), RED, &[vec![i as u8]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let (head, tail) = s.trim(RED, sn(4)).unwrap();
    assert_eq!(head, Some(sn(4)));
    assert_eq!(tail, Some(sn(10)));
    assert_eq!(s.get(RED, sn(4)), None);
    assert_eq!(s.get(RED, sn(3)), None);
    assert_eq!(s.get(RED, sn(5)).unwrap(), vec![5u8]);
    assert_eq!(s.record_count(RED), 6);
}

#[test]
fn trim_covers_ssd_resident_records() {
    let s = StorageServer::new(StorageConfig::tiny());
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[vec![0u8; 1024]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    assert!(s.ssd_resident(RED) > 0);
    s.trim(RED, sn(90)).unwrap();
    assert_eq!(s.record_count(RED), 10);
    for i in 1..=90u32 {
        assert_eq!(s.get(RED, sn(i)), None, "sn {i} must be trimmed");
    }
}

#[test]
fn trim_is_monotonic() {
    let s = server();
    for i in 1..=5u32 {
        s.stage(tok(i), RED, &[vec![i as u8]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    s.trim(RED, sn(3)).unwrap();
    // A smaller trim must not move the head backwards.
    let (head, _) = s.trim(RED, sn(1)).unwrap();
    assert_eq!(head, Some(sn(3)));
}

#[test]
fn scan_returns_ordered_records() {
    let s = server();
    for i in [5u32, 1, 9, 3].iter() {
        s.stage(tok(*i), RED, &[vec![*i as u8]]).unwrap();
        s.commit(tok(*i), sn(*i)).unwrap();
    }
    let all = s.scan(RED, SeqNum::ZERO);
    let sns: Vec<u32> = all.iter().map(|r| r.sn.counter()).collect();
    assert_eq!(sns, vec![1, 3, 5, 9]);
    let from = s.scan(RED, sn(3));
    assert_eq!(from.len(), 2);
    assert_eq!(from[0].sn, sn(5));
}

#[test]
fn tail_and_max_committed() {
    let s = server();
    assert_eq!(s.tail(RED), None);
    s.stage(tok(1), RED, &[b"a".to_vec()]).unwrap();
    s.commit(tok(1), sn(7)).unwrap();
    s.stage(tok(2), GREEN, &[b"b".to_vec()]).unwrap();
    s.commit(tok(2), sn(3)).unwrap();
    assert_eq!(s.tail(RED), Some(sn(7)));
    assert_eq!(s.tail(GREEN), Some(sn(3)));
    assert_eq!(s.max_committed_sn(), Some(sn(7)));
}

#[test]
fn staged_tokens_lists_uncommitted() {
    let s = server();
    s.stage(tok(1), RED, &[b"a".to_vec(), b"b".to_vec()]).unwrap();
    s.stage(tok(2), GREEN, &[b"c".to_vec()]).unwrap();
    s.commit(tok(2), sn(1)).unwrap();
    let staged = s.staged_tokens();
    assert_eq!(staged.len(), 1);
    assert_eq!(staged[0], (tok(1), RED, 2));
}

#[test]
fn recovery_preserves_committed_and_staged() {
    let s = server();
    s.stage(tok(1), RED, &[b"committed".to_vec()]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.stage(tok(2), RED, &[b"staged-only".to_vec()]).unwrap();
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.get(RED, sn(1)).unwrap(), b"committed");
    assert_eq!(s2.committed_sn(tok(1)), Some(sn(1)));
    let staged = s2.staged_tokens();
    assert_eq!(staged, vec![(tok(2), RED, 1)]);
    // The staged batch can still be committed after recovery.
    s2.commit(tok(2), sn(2)).unwrap();
    assert_eq!(s2.get(RED, sn(2)).unwrap(), b"staged-only");
}

#[test]
fn recovery_preserves_trim_head() {
    let s = server();
    for i in 1..=6u32 {
        s.stage(tok(i), RED, &[vec![i as u8]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    s.trim(RED, sn(3)).unwrap();
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.head(RED), Some(sn(3)));
    assert_eq!(s2.get(RED, sn(2)), None);
    assert_eq!(s2.get(RED, sn(4)).unwrap(), vec![4u8]);
}

#[test]
fn recovery_finds_ssd_resident_records() {
    let s = StorageServer::new(StorageConfig::tiny());
    for i in 1..=100u32 {
        s.stage(tok(i), RED, &[vec![i as u8; 1024]]).unwrap();
        s.commit(tok(i), sn(i)).unwrap();
    }
    let spilled = s.ssd_resident(RED);
    assert!(spilled > 0);
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::tiny());
    assert_eq!(s2.record_count(RED), 100);
    assert_eq!(s2.ssd_resident(RED), spilled);
    for i in 1..=100u32 {
        assert_eq!(s2.get(RED, sn(i)).unwrap(), vec![i as u8; 1024]);
    }
}

#[test]
fn crash_before_commit_record_loses_nothing_committed() {
    // A staged-but-uncommitted batch must reappear as staged; committed
    // batches must survive byte-for-byte.
    let s = server();
    for i in 1..=20u32 {
        s.stage(tok(i), RED, &[format!("rec{i}").into_bytes()]).unwrap();
        if i <= 15 {
            s.commit(tok(i), sn(i)).unwrap();
        }
    }
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    for i in 1..=15u32 {
        assert_eq!(s2.get(RED, sn(i)).unwrap(), format!("rec{i}").into_bytes());
    }
    assert_eq!(s2.staged_tokens().len(), 5);
}

#[test]
fn multi_record_staged_value_roundtrip() {
    let payloads = vec![b"".to_vec(), b"x".to_vec(), vec![7u8; 300]];
    let enc = encode_staged(ColorId(9), &payloads);
    let dec = decode_staged(&enc);
    assert_eq!(dec.color, ColorId(9));
    assert_eq!(dec.payloads, payloads);
}

#[test]
fn stats_count_tier_hits() {
    let s = server();
    s.stage(tok(1), RED, &[b"x".to_vec()]).unwrap();
    s.commit(tok(1), sn(1)).unwrap();
    s.get(RED, sn(1)); // cache
    s.cache.lock().clear();
    s.get(RED, sn(1)); // pm
    assert_eq!(s.stats.cache_hits.load(Ordering::Relaxed), 1);
    assert_eq!(s.stats.pm_hits.load(Ordering::Relaxed), 1);
}

#[test]
fn scan_with_tokens_returns_tokens() {
    let s = server();
    s.stage(tok(7), RED, &[b"a".to_vec(), b"b".to_vec()]).unwrap();
    s.commit(tok(7), sn(2)).unwrap();
    let recs = s.scan_with_tokens(RED, SeqNum::ZERO);
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0], (tok(7), sn(1), b"a".to_vec()));
    assert_eq!(recs[1], (tok(7), sn(2), b"b".to_vec()));
}

#[test]
fn import_installs_and_is_idempotent() {
    let s = server();
    assert!(s.import(RED, sn(4), tok(9), b"synced").unwrap());
    assert!(!s.import(RED, sn(4), tok(9), b"synced").unwrap());
    assert_eq!(s.get(RED, sn(4)).unwrap(), b"synced");
    assert_eq!(s.committed_sn(tok(9)), Some(sn(4)));
    // Imports survive crash.
    let (pm, ssd) = s.devices();
    pm.crash();
    ssd.crash();
    drop(s);
    let s2 = StorageServer::recover(pm, ssd, StorageConfig::default());
    assert_eq!(s2.get(RED, sn(4)).unwrap(), b"synced");
}

#[test]
fn import_respects_trim_head() {
    let s = server();
    s.stage(tok(1), RED, &[b"x".to_vec()]).unwrap();
    s.commit(tok(1), sn(5)).unwrap();
    s.trim(RED, sn(5)).unwrap();
    assert!(!s.import(RED, sn(3), tok(2), b"old").unwrap());
    assert_eq!(s.get(RED, sn(3)), None);
}
