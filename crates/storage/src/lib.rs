//! # flexlog-storage
//!
//! The storage stack of a FlexLog replica (paper §5.2, "Storage layer"):
//! a three-tier server combining
//!
//! 1. an in-memory volatile **DRAM cache** for recently accessed records;
//! 2. the **stateful log in PM**, kept crash-consistent through the
//!    transactional [`flexlog_pm::PmPool`];
//! 3. a **secondary SSD tier** that old contiguous portions of the log are
//!    flushed to when the PM high-watermark is reached.
//!
//! Appends go to PM (and the cache); reads probe cache → PM → SSD. The
//! server also implements the *staging area* of the append protocol
//! (Algorithm 1): a record arrives with a client token, is persisted
//! immediately, and is only moved to the committed index — discoverable by
//! sequence number — once the ordering layer assigns its SN.
//!
//! An optional fourth tier — the cold **object-store archive** from
//! `flexlog-tier` — hangs below the SSD (see [`TierConfig`]). With it
//! configured, `trim` becomes archive-then-drop and reads probe
//! cache → PM → SSD → archive, so trimmed history stays readable.

mod cache;
mod server;

pub use cache::{CacheStats, LruCache};
pub use server::{StorageConfig, StorageServer, StorageStats, TierConfig, TierHit};
